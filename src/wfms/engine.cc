#include "wfms/engine.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/strings.h"
#include "wfms/condition.h"
#include "wfms/container.h"
#include "wfms/helpers.h"

namespace fedflow::wfms {

namespace {

/// Lifecycle of one activity within an instance.
enum class AState { kWaiting, kScheduled, kFinished, kDead, kFailed };

struct ActState {
  AState state = AState::kWaiting;
  int incoming = 0;    ///< number of incoming control connectors
  int unresolved = 0;  ///< incoming connectors not yet evaluated
  int true_in = 0;     ///< incoming connectors that evaluated to true
  VTime ready = 0;     ///< max resolution time over incoming connectors
  VTime end = 0;       ///< completion time (finished activities)
};

}  // namespace

/// Navigates one process instance. Pool mode executes ready activities on the
/// engine's thread pool (real parallelism); inline mode (used for nested
/// block sub-processes) drains a ready-queue on the calling thread. Virtual
/// token timestamps are identical in both modes.
class InstanceRunner {
 public:
  InstanceRunner(Engine* engine, const ProcessDefinition& def,
                 const std::vector<Value>& args, ProgramInvoker* invoker,
                 bool use_pool, InstanceCheckpoint* ckpt = nullptr,
                 obs::TraceHandle trace = {})
      : engine_(engine),
        def_(def),
        invoker_(invoker),
        use_pool_(use_pool),
        ckpt_(ckpt),
        trace_(trace),
        raw_args_(args) {}

  Result<ProcessResult> Run();

 private:
  struct Work {
    size_t idx;
    VTime start;
  };

  // Must hold mu_.
  void Schedule(size_t idx, VTime start);
  void MarkDead(size_t idx, VTime t);
  void ResolveOutgoing(size_t idx, VTime t, bool source_ran);
  void Fail(const Status& status, size_t idx, VTime t);

  /// Task body; acquires mu_ internally.
  void ExecuteActivity(size_t idx, VTime start);

  /// Resolves one input source. Must hold mu_.
  Result<Table> ResolveInput(const InputSource& in) const;
  Result<Value> ResolveInputScalar(const InputSource& in) const;

  /// Condition resolver over instance data. Must hold mu_.
  Result<Value> ResolveRef(const std::string& qualifier,
                           const std::string& name) const;

  /// Runs the external work of an activity. Must NOT hold mu_; `inputs`
  /// were resolved under the lock beforehand.
  Result<InvokeResult> DoProgram(const ActivityDef& a,
                                 const std::vector<Value>& args,
                                 obs::SpanId span, VTime start);
  Result<InvokeResult> DoHelper(const ActivityDef& a,
                                const std::vector<Table>& inputs);
  Result<InvokeResult> DoBlock(const ActivityDef& a,
                               const std::vector<Value>& args, size_t idx,
                               obs::SpanId span, VTime start);

  /// The instance's virtual time `t` (tokens start at 0) on the session
  /// timeline.
  VTime TraceTime(VTime t) const { return trace_.base_us + t; }

  Engine* engine_;
  const ProcessDefinition& def_;
  ProgramInvoker* invoker_;
  const bool use_pool_;
  InstanceCheckpoint* ckpt_;  ///< null = run without forward recovery
  obs::TraceHandle trace_;
  obs::SpanId proc_span_ = 0;  ///< process span; 0 when tracing is off
  const std::vector<Value>& raw_args_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ActState> states_;
  std::vector<std::vector<const ControlConnector*>> outgoing_;
  std::vector<std::pair<std::string, Value>> inputs_;  // process input fields
  Container data_;                                     // activity outputs
  std::deque<Work> inline_queue_;
  int outstanding_ = 0;
  Status error_;
  /// (virtual failure time, activity index) of the failure error_ reports;
  /// earliest wins so the surfaced error does not depend on which pool
  /// thread reported first when several activities fail in one attempt.
  std::pair<VTime, size_t> error_rank_{0, 0};
  AuditTrail audit_;
  TimeBreakdown breakdown_;
};

Result<ProcessResult> InstanceRunner::Run() {
  const size_t n = def_.activities.size();

  // Bind and coerce process inputs.
  if (raw_args_.size() != def_.input_params.size()) {
    return Status::InvalidArgument(
        "process " + def_.name + " expects " +
        std::to_string(def_.input_params.size()) + " argument(s), got " +
        std::to_string(raw_args_.size()));
  }
  for (size_t i = 0; i < raw_args_.size(); ++i) {
    FEDFLOW_ASSIGN_OR_RETURN(Value v,
                             raw_args_[i].CastTo(def_.input_params[i].type));
    inputs_.emplace_back(def_.input_params[i].name, std::move(v));
  }

  // Process-level span; every executed activity hangs a child span under it.
  // Ends on every exit path at the instance's final virtual time.
  struct ProcSpanGuard {
    obs::Tracer* tracer = nullptr;
    obs::SpanId id = 0;
    VTime end_us = 0;
    ~ProcSpanGuard() {
      if (tracer != nullptr && id != 0) tracer->EndSpan(id, end_us);
    }
  } proc_guard;
  if (trace_.active()) {
    proc_span_ = trace_.tracer->StartSpan("wf:" + def_.name, obs::Layer::kWfms,
                                          trace_.parent, TraceTime(0));
    proc_guard.tracer = trace_.tracer;
    proc_guard.id = proc_span_;
    proc_guard.end_us = TraceTime(0);
  }

  states_.resize(n);
  outgoing_.resize(n);
  for (const ControlConnector& c : def_.connectors) {
    FEDFLOW_ASSIGN_OR_RETURN(size_t from, def_.ActivityIndex(c.from));
    FEDFLOW_ASSIGN_OR_RETURN(size_t to, def_.ActivityIndex(c.to));
    outgoing_[from].push_back(&c);
    states_[to].incoming += 1;
    states_[to].unresolved += 1;
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<size_t> restored;
    const bool resuming = ckpt_ != nullptr && ckpt_->valid;
    if (resuming) {
      // Restore persisted state: completed activities keep their outputs and
      // finish times and are never re-executed.
      audit_ = ckpt_->audit;
      for (const InstanceCheckpoint::CompletedActivity& c : ckpt_->completed) {
        Result<size_t> idx = def_.ActivityIndex(c.activity);
        if (!idx.ok()) {
          return Status::InvalidArgument(
              "checkpoint names unknown activity " + c.activity +
              " of process " + def_.name);
        }
        states_[*idx].state = AState::kFinished;
        states_[*idx].end = c.end_us;
        data_.Set(c.activity, c.output);
        restored.push_back(*idx);
      }
      audit_.Record(ckpt_->failed_at_us, AuditEvent::kProcessResumed, "",
                    def_.name);
      if (proc_span_ != 0) {
        trace_.tracer->AddEvent(proc_span_, TraceTime(ckpt_->failed_at_us),
                                AuditEventName(AuditEvent::kProcessResumed),
                                def_.name);
      }
      if (engine_->options_.metrics != nullptr) {
        engine_->options_.metrics->Inc("wfms.resumes");
      }
    } else {
      audit_.Record(0, AuditEvent::kProcessStarted, "", def_.name);
      if (proc_span_ != 0) {
        trace_.tracer->AddEvent(proc_span_, TraceTime(0),
                                AuditEventName(AuditEvent::kProcessStarted),
                                def_.name);
      }
      if (ckpt_ != nullptr) {
        ckpt_->process = def_.name;
        ckpt_->args = raw_args_;
        ckpt_->completed.clear();
        ckpt_->audit = AuditTrail();
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (states_[i].incoming == 0 && states_[i].state == AState::kWaiting) {
        Schedule(i, 0);
      }
    }
    // Re-fire the restored activities' outgoing connectors: conditions
    // re-evaluate identically over the restored containers, so dead paths
    // die again and only genuinely unfinished successors get scheduled
    // (restored targets are kFinished and skip the scheduling branch).
    for (size_t idx : restored) {
      ResolveOutgoing(idx, states_[idx].end, /*source_ran=*/true);
    }
    if (use_pool_) {
      cv_.wait(lock, [this] { return outstanding_ == 0; });
    } else {
      while (true) {
        if (inline_queue_.empty()) {
          if (outstanding_ == 0) break;
          // Inline mode is single-threaded; outstanding without queued work
          // cannot happen.
          return Status::Internal("inline navigator stalled");
        }
        Work w = inline_queue_.front();
        inline_queue_.pop_front();
        lock.unlock();
        ExecuteActivity(w.idx, w.start);
        lock.lock();
      }
    }
  }

  // Assemble the result (single-threaded again from here).
  VTime end_time = 0;
  for (const ActState& s : states_) {
    end_time = std::max(end_time, std::max(s.end, s.ready));
  }
  proc_guard.end_us = TraceTime(end_time);
  if (!error_.ok() && proc_span_ != 0) {
    trace_.tracer->SetStatus(proc_span_, error_);
  }
  if (!error_.ok()) {
    if (ckpt_ != nullptr) {
      // Persist the failed instance: everything that completed stays
      // completed; a later run with this checkpoint resumes from here.
      ckpt_->valid = true;
      ckpt_->failed_at_us = end_time;
      ckpt_->attempt_work = breakdown_;
      ckpt_->audit = audit_;
      ckpt_->audit.Normalize();
    }
    return error_;
  }
  if (ckpt_ != nullptr) {
    ckpt_->valid = false;
    ckpt_->completed.clear();
  }
  audit_.Record(end_time, AuditEvent::kProcessFinished, "", def_.name);
  if (proc_span_ != 0) {
    trace_.tracer->AddEvent(proc_span_, TraceTime(end_time),
                            AuditEventName(AuditEvent::kProcessFinished),
                            def_.name);
  }
  audit_.Normalize();

  FEDFLOW_ASSIGN_OR_RETURN(size_t out_idx,
                           def_.ActivityIndex(def_.output_activity));
  if (states_[out_idx].state == AState::kDead) {
    return Status::ExecutionError("output activity " + def_.output_activity +
                                  " was removed by dead-path elimination");
  }
  if (states_[out_idx].state != AState::kFinished) {
    return Status::Internal("output activity " + def_.output_activity +
                            " did not finish");
  }
  FEDFLOW_ASSIGN_OR_RETURN(const Table* out, data_.Get(def_.output_activity));

  ProcessResult result;
  result.output = *out;
  result.elapsed_us = end_time;
  result.breakdown = std::move(breakdown_);
  result.audit = std::move(audit_);
  return result;
}

void InstanceRunner::Schedule(size_t idx, VTime start) {
  states_[idx].state = AState::kScheduled;
  ++outstanding_;
  if (use_pool_) {
    engine_->pool_->Submit([this, idx, start] { ExecuteActivity(idx, start); });
  } else {
    inline_queue_.push_back(Work{idx, start});
  }
}

void InstanceRunner::MarkDead(size_t idx, VTime t) {
  states_[idx].state = AState::kDead;
  audit_.Record(t, AuditEvent::kActivityDead, def_.activities[idx].name, "",
                static_cast<int>(idx));
  if (proc_span_ != 0) {
    trace_.tracer->AddEvent(proc_span_, TraceTime(t),
                            AuditEventName(AuditEvent::kActivityDead),
                            def_.activities[idx].name);
  }
  ResolveOutgoing(idx, t, /*source_ran=*/false);
}

void InstanceRunner::ResolveOutgoing(size_t idx, VTime t, bool source_ran) {
  for (const ControlConnector* c : outgoing_[idx]) {
    bool truth = false;
    if (source_ran) {
      if (c->condition == nullptr) {
        truth = true;
      } else {
        Result<bool> eval = EvalConditionBool(
            *c->condition, [this](const std::string& q, const std::string& n) {
              return ResolveRef(q, n);
            });
        if (!eval.ok()) {
          const std::pair<VTime, size_t> rank{t, idx};
          if (error_.ok() || rank < error_rank_) {
            error_ = eval.status().WithContext(
                "evaluating transition condition " + c->from + " -> " + c->to);
            error_rank_ = rank;
          }
          return;
        }
        truth = *eval;
      }
    }
    size_t to = *def_.ActivityIndex(c->to);
    ActState& st = states_[to];
    st.unresolved -= 1;
    st.ready = std::max(st.ready, t);
    if (truth) st.true_in += 1;
    // Scheduling deliberately ignores error_: independently-ready activities
    // always run to completion even after a sibling failed, so the set of
    // completed (checkpointable) activities is deterministic instead of
    // depending on how far the pool got before the failure. Only the failed
    // activity's successors stall (Fail never resolves outgoing connectors).
    if (st.unresolved == 0 && st.state == AState::kWaiting) {
      const JoinKind join = def_.activities[to].join;
      const bool should_run = join == JoinKind::kAnd
                                  ? st.true_in == st.incoming
                                  : st.true_in > 0;
      if (should_run) {
        Schedule(to, st.ready);
      } else {
        MarkDead(to, st.ready);
      }
    }
  }
}

void InstanceRunner::Fail(const Status& status, size_t idx, VTime t) {
  states_[idx].state = AState::kFailed;
  audit_.Record(t, AuditEvent::kActivityFailed, def_.activities[idx].name,
                status.ToString(), static_cast<int>(idx));
  const std::pair<VTime, size_t> rank{t, idx};
  if (error_.ok() || rank < error_rank_) {
    error_ = status.WithContext("activity " + def_.activities[idx].name +
                                " in process " + def_.name);
    error_rank_ = rank;
  }
}

Result<Table> InstanceRunner::ResolveInput(const InputSource& in) const {
  switch (in.kind) {
    case InputSource::Kind::kConstant:
      return Container::WrapScalar("value", in.constant);
    case InputSource::Kind::kProcessInput: {
      for (const auto& [name, value] : inputs_) {
        if (EqualsIgnoreCase(name, in.param)) {
          return Container::WrapScalar(name, value);
        }
      }
      return Status::NotFound("process input not found: " + in.param);
    }
    case InputSource::Kind::kActivityOutput: {
      if (!data_.Has(in.activity)) {
        // A dead-path-eliminated source supplies no data: its consumers see
        // an empty table (helpers like union_all skip it; scalar consumers
        // fail with a clear message).
        auto idx = def_.ActivityIndex(in.activity);
        if (idx.ok() && states_[*idx].state == AState::kDead) {
          return Table();
        }
      }
      FEDFLOW_ASSIGN_OR_RETURN(const Table* t, data_.Get(in.activity));
      if (in.column.empty()) return *t;
      FEDFLOW_ASSIGN_OR_RETURN(size_t idx, t->schema().FindColumn(in.column));
      Schema schema;
      schema.AddColumn(t->schema().column(idx).name,
                       t->schema().column(idx).type);
      Table out(schema);
      for (const Row& r : t->rows()) out.AppendRowUnchecked({r[idx]});
      return out;
    }
  }
  return Status::Internal("bad input source kind");
}

Result<Value> InstanceRunner::ResolveInputScalar(const InputSource& in) const {
  FEDFLOW_ASSIGN_OR_RETURN(Table t, ResolveInput(in));
  if (t.schema().num_columns() != 1) {
    return Status::ExecutionError(
        "scalar input requires a single-column source; specify a column");
  }
  if (t.num_rows() != 1) {
    return Status::ExecutionError(
        "scalar input requires exactly one row, got " +
        std::to_string(t.num_rows()));
  }
  return t.rows()[0][0];
}

Result<Value> InstanceRunner::ResolveRef(const std::string& qualifier,
                                         const std::string& name) const {
  if (qualifier.empty() || EqualsIgnoreCase(qualifier, "INPUT")) {
    for (const auto& [pname, value] : inputs_) {
      if (EqualsIgnoreCase(pname, name)) return value;
    }
    if (!qualifier.empty()) {
      return Status::NotFound("process input not found: " + name);
    }
  }
  if (!qualifier.empty()) {
    FEDFLOW_ASSIGN_OR_RETURN(const Table* t, data_.Get(qualifier));
    if (t->num_rows() == 0) return Value::Null();
    FEDFLOW_ASSIGN_OR_RETURN(size_t idx, t->schema().FindColumn(name));
    return t->rows()[0][idx];
  }
  // Unqualified, not a process input: search completed activity outputs.
  for (const std::string& slot : data_.Names()) {
    const Table* t = *data_.Get(slot);
    if (t->schema().IndexOf(name).has_value()) {
      if (t->num_rows() == 0) return Value::Null();
      return t->rows()[0][*t->schema().IndexOf(name)];
    }
  }
  return Status::NotFound("condition reference not found: " + name);
}

void InstanceRunner::ExecuteActivity(size_t idx, VTime start) {
  const ActivityDef& a = def_.activities[idx];

  // Resolve inputs under the lock (reads shared instance data).
  std::vector<Value> scalar_args;
  std::vector<Table> table_args;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status st = Status::OK();
    for (const InputSource& in : a.inputs) {
      if (a.kind == ActivityKind::kHelper) {
        Result<Table> t = ResolveInput(in);
        if (!t.ok()) {
          st = t.status();
          break;
        }
        table_args.push_back(std::move(*t));
      } else {
        Result<Value> v = ResolveInputScalar(in);
        if (!v.ok()) {
          st = v.status();
          break;
        }
        scalar_args.push_back(std::move(*v));
      }
    }
    if (!st.ok()) {
      Fail(st.WithContext("resolving inputs"), idx, start);
      if (--outstanding_ == 0) cv_.notify_all();
      return;
    }
    audit_.Record(start, AuditEvent::kActivityStarted, a.name, "",
                  static_cast<int>(idx));
  }

  // Per-activity span: token start/end times on the session timeline, audit
  // records mirrored as span events. The tracer is internally synchronized,
  // so span creation needs no instance lock.
  obs::SpanId act_span = 0;
  if (trace_.active() && proc_span_ != 0) {
    act_span = trace_.tracer->StartSpan("activity:" + a.name, obs::Layer::kWfms,
                                        proc_span_, TraceTime(start));
    trace_.tracer->AddEvent(act_span, TraceTime(start),
                            AuditEventName(AuditEvent::kActivityStarted),
                            a.name);
  }
  if (engine_->options_.metrics != nullptr) {
    engine_->options_.metrics->Inc("wfms.activities");
  }

  // External work, outside the lock.
  Result<InvokeResult> work = [&]() -> Result<InvokeResult> {
    switch (a.kind) {
      case ActivityKind::kProgram:
        return DoProgram(a, scalar_args, act_span, start);
      case ActivityKind::kHelper:
        return DoHelper(a, table_args);
      case ActivityKind::kBlock:
        return DoBlock(a, scalar_args, idx, act_span, start);
    }
    return Status::Internal("bad activity kind");
  }();

  std::lock_guard<std::mutex> lock(mu_);
  if (!work.ok()) {
    Fail(work.status(), idx, start);
    if (act_span != 0) {
      trace_.tracer->AddEvent(act_span, TraceTime(start),
                              AuditEventName(AuditEvent::kActivityFailed),
                              work.status().ToString());
      trace_.tracer->SetStatus(act_span, work.status());
      trace_.tracer->EndSpan(act_span, TraceTime(start));
    }
  } else {
    const EngineOptions& opts = engine_->options_;
    VDuration dur =
        opts.navigation_cost_us + opts.container_cost_us + work->duration;
    VTime end = start + dur;
    states_[idx].state = AState::kFinished;
    states_[idx].end = end;
    if (ckpt_ != nullptr) {
      // Persist the completion before the output is moved into the instance
      // container — the paper's WfMS keeps exactly this on stable storage.
      ckpt_->completed.push_back(
          InstanceCheckpoint::CompletedActivity{a.name, work->output, end});
      audit_.Record(end, AuditEvent::kActivityCheckpointed, a.name, "",
                    static_cast<int>(idx));
      if (act_span != 0) {
        trace_.tracer->AddEvent(
            act_span, TraceTime(end),
            AuditEventName(AuditEvent::kActivityCheckpointed), a.name);
      }
      if (opts.metrics != nullptr) opts.metrics->Inc("wfms.checkpoints");
    }
    data_.Set(a.name, std::move(work->output));
    if (opts.navigation_cost_us > 0) {
      breakdown_.Add(steps::kWorkflowNavigation, opts.navigation_cost_us);
    }
    if (opts.container_cost_us > 0) {
      breakdown_.Add(steps::kProcessActivities, opts.container_cost_us);
    }
    breakdown_.Merge(work->steps);
    audit_.Record(end, AuditEvent::kActivityFinished, a.name, "",
                  static_cast<int>(idx));
    if (act_span != 0) {
      trace_.tracer->AddEvent(act_span, TraceTime(end),
                              AuditEventName(AuditEvent::kActivityFinished),
                              a.name);
      trace_.tracer->EndSpan(act_span, TraceTime(end));
    }
    ResolveOutgoing(idx, end, /*source_ran=*/true);
  }
  if (--outstanding_ == 0) cv_.notify_all();
}

Result<InvokeResult> InstanceRunner::DoProgram(const ActivityDef& a,
                                               const std::vector<Value>& args,
                                               obs::SpanId span, VTime start) {
  if (invoker_ == nullptr) {
    return Status::InvalidArgument(
        "process contains program activities but no invoker was supplied");
  }
  return invoker_->InvokeTraced(
      a.system, a.function, args,
      obs::TraceHandle{trace_.tracer, span, TraceTime(start)});
}

Result<InvokeResult> InstanceRunner::DoHelper(const ActivityDef& a,
                                              const std::vector<Table>& inputs) {
  HelperFn fn;
  {
    auto it = engine_->helpers_.find(ToUpper(a.helper));
    if (it == engine_->helpers_.end()) {
      return Status::NotFound("helper not registered: " + a.helper);
    }
    fn = it->second;
  }
  FEDFLOW_ASSIGN_OR_RETURN(Table out, fn(inputs));
  InvokeResult result;
  result.output = std::move(out);
  result.duration = engine_->options_.helper_cost_us;
  if (result.duration > 0) {
    result.steps.Add(steps::kProcessActivities, result.duration);
  }
  return result;
}

Result<InvokeResult> InstanceRunner::DoBlock(const ActivityDef& a,
                                             const std::vector<Value>& args,
                                             size_t idx, obs::SpanId span,
                                             VTime start) {
  InvokeResult result;
  // Union-all accumulation appends each iteration's rows in place (a batch
  // append), so the loop never re-copies the rows accumulated so far.
  Table accumulated;
  bool accumulated_init = false;
  Table last_output;
  VDuration total = 0;
  int iteration = 0;

  // Position of the implicit ITERATION parameter in the sub-process, if any.
  int iter_param = -1;
  for (size_t i = 0; i < a.sub->input_params.size(); ++i) {
    if (EqualsIgnoreCase(a.sub->input_params[i].name, "ITERATION")) {
      iter_param = static_cast<int>(i);
    }
  }

  while (true) {
    ++iteration;
    if (iteration > a.max_iterations) {
      return Status::ExecutionError(
          "block " + a.name + " exceeded max_iterations (" +
          std::to_string(a.max_iterations) + ")");
    }
    std::vector<Value> sub_args = args;
    if (iter_param >= 0) sub_args[iter_param] = Value::Int(iteration);

    InstanceRunner sub(engine_, *a.sub, sub_args, invoker_,
                       /*use_pool=*/false, /*ckpt=*/nullptr,
                       obs::TraceHandle{trace_.tracer, span,
                                        TraceTime(start) + total});
    FEDFLOW_ASSIGN_OR_RETURN(ProcessResult sub_result, sub.Run());
    total += sub_result.elapsed_us;
    result.steps.Merge(sub_result.breakdown);
    last_output = std::move(sub_result.output);
    {
      // Audit the iteration on the parent trail.
      std::lock_guard<std::mutex> lock(mu_);
      audit_.Record(total, AuditEvent::kLoopIteration, a.name,
                    "iteration " + std::to_string(iteration),
                    static_cast<int>(idx));
      if (span != 0) {
        trace_.tracer->AddEvent(span, TraceTime(start) + total,
                                AuditEventName(AuditEvent::kLoopIteration),
                                "iteration " + std::to_string(iteration));
      }
    }

    // Evaluate the exit condition while last_output is still whole (the
    // resolver reads it); only then move the rows into the accumulator.
    bool done = a.exit_condition == nullptr;
    auto resolver = [&](const std::string& qualifier,
                        const std::string& name) -> Result<Value> {
      if (qualifier.empty() || EqualsIgnoreCase(qualifier, "LOOP")) {
        if (EqualsIgnoreCase(name, "ITERATION")) return Value::Int(iteration);
        if (EqualsIgnoreCase(name, "ROWCOUNT")) {
          return Value::BigInt(static_cast<int64_t>(last_output.num_rows()));
        }
        // Block input parameters by name.
        for (size_t i = 0; i < a.sub->input_params.size(); ++i) {
          if (EqualsIgnoreCase(a.sub->input_params[i].name, name)) {
            return sub_args[i];
          }
        }
      }
      // Sub-process output columns (first row), qualified by the sub-process
      // name or unqualified.
      if (qualifier.empty() || EqualsIgnoreCase(qualifier, a.sub->name)) {
        auto idx = last_output.schema().IndexOf(name);
        if (idx.has_value()) {
          if (last_output.num_rows() == 0) return Value::Null();
          return last_output.rows()[0][*idx];
        }
      }
      return Status::NotFound("exit-condition reference not found: " + name);
    };
    if (!done) {
      FEDFLOW_ASSIGN_OR_RETURN(done,
                               EvalConditionBool(*a.exit_condition, resolver));
    }
    if (a.accumulate == BlockAccumulate::kUnionAll) {
      if (!accumulated_init) {
        accumulated = Table(last_output.schema());
        accumulated_init = true;
      }
      FEDFLOW_RETURN_NOT_OK(accumulated.AppendTableRows(std::move(last_output)));
    }
    if (done) break;
  }

  if (a.accumulate == BlockAccumulate::kUnionAll) {
    result.output = std::move(accumulated);
  } else {
    result.output = std::move(last_output);
  }
  result.duration = total;
  return result;
}

Engine::Engine(EngineOptions options) : options_(options) {
  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  helpers_.emplace("IDENTITY", MakeIdentityHelper());
  helpers_.emplace("CONCAT", MakeConcatHelper());
  helpers_.emplace("UNION_ALL", MakeUnionAllHelper());
}

Engine::~Engine() = default;

Status Engine::RegisterProcess(ProcessDefinition def) {
  FEDFLOW_RETURN_NOT_OK(ValidateProcess(def));
  std::string key = ToUpper(def.name);
  if (processes_.count(key) > 0) {
    return Status::AlreadyExists("process already registered: " + def.name);
  }
  processes_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

Result<const ProcessDefinition*> Engine::GetProcess(
    const std::string& name) const {
  auto it = processes_.find(ToUpper(name));
  if (it == processes_.end()) {
    return Status::NotFound("process not registered: " + name);
  }
  return &it->second;
}

std::vector<std::string> Engine::ProcessNames() const {
  std::vector<std::string> names;
  names.reserve(processes_.size());
  for (const auto& [key, def] : processes_) names.push_back(def.name);
  return names;
}

Status Engine::RegisterHelper(const std::string& name, HelperFn fn) {
  std::string key = ToUpper(name);
  if (helpers_.count(key) > 0) {
    return Status::AlreadyExists("helper already registered: " + name);
  }
  helpers_.emplace(std::move(key), std::move(fn));
  return Status::OK();
}

Result<ProcessResult> Engine::Run(const std::string& process,
                                  const std::vector<Value>& args,
                                  ProgramInvoker* invoker,
                                  const obs::TraceHandle& trace) {
  FEDFLOW_ASSIGN_OR_RETURN(const ProcessDefinition* def, GetProcess(process));
  InstanceRunner runner(this, *def, args, invoker, /*use_pool=*/true,
                        /*ckpt=*/nullptr, trace);
  return runner.Run();
}

Result<ProcessResult> Engine::RunDefinition(const ProcessDefinition& def,
                                            const std::vector<Value>& args,
                                            ProgramInvoker* invoker,
                                            const obs::TraceHandle& trace) {
  FEDFLOW_RETURN_NOT_OK(ValidateProcess(def));
  InstanceRunner runner(this, def, args, invoker, /*use_pool=*/true,
                        /*ckpt=*/nullptr, trace);
  return runner.Run();
}

Result<ProcessResult> Engine::RunRecoverable(const std::string& process,
                                             const std::vector<Value>& args,
                                             ProgramInvoker* invoker,
                                             InstanceCheckpoint* ckpt,
                                             const obs::TraceHandle& trace) {
  if (ckpt == nullptr) {
    return Status::InvalidArgument("RunRecoverable requires a checkpoint");
  }
  FEDFLOW_ASSIGN_OR_RETURN(const ProcessDefinition* def, GetProcess(process));
  if (ckpt->valid && !EqualsIgnoreCase(ckpt->process, def->name)) {
    return Status::InvalidArgument("checkpoint belongs to process " +
                                   ckpt->process + ", not " + def->name);
  }
  InstanceRunner runner(this, *def, args, invoker, /*use_pool=*/true, ckpt,
                        trace);
  return runner.Run();
}

Result<ProcessResult> Engine::ResumeFrom(InstanceCheckpoint& ckpt,
                                         ProgramInvoker* invoker,
                                         const obs::TraceHandle& trace) {
  if (!ckpt.valid) {
    return Status::InvalidArgument(
        "checkpoint does not hold a failed instance");
  }
  return RunRecoverable(ckpt.process, ckpt.args, invoker, &ckpt, trace);
}

}  // namespace fedflow::wfms
