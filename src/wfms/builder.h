// Fluent construction of process definitions. Conditions are given as SQL
// expression text and parsed at Build() time; Build() also validates.
#ifndef FEDFLOW_WFMS_BUILDER_H_
#define FEDFLOW_WFMS_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "wfms/model.h"

namespace fedflow::wfms {

/// Builds a ProcessDefinition step by step.
///
///   ProcessBuilder b("GetSuppQual");
///   b.Input("SupplierName", DataType::kVarchar);
///   b.Program("GetSupplierNo", "purchasing", "GetSupplierNo",
///             {InputSource::FromProcessInput("SupplierName")});
///   b.Program("GetQuality", "stock", "GetQuality",
///             {InputSource::FromActivity("GetSupplierNo", "SupplierNo")});
///   b.Connect("GetSupplierNo", "GetQuality");
///   b.Output("GetQuality");
///   auto def = b.Build();
class ProcessBuilder {
 public:
  explicit ProcessBuilder(std::string name);

  /// Declares a process input parameter.
  ProcessBuilder& Input(std::string name, DataType type);

  /// Adds a program activity calling `function` of application `system`.
  ProcessBuilder& Program(std::string name, std::string system,
                          std::string function,
                          std::vector<InputSource> inputs);

  /// Adds a helper activity running registered helper `helper`.
  ProcessBuilder& Helper(std::string name, std::string helper,
                         std::vector<InputSource> inputs);

  /// Adds a block activity running `sub` in a do-until loop. `exit_condition`
  /// is SQL expression text ("" = run once); it may reference ITERATION,
  /// block input parameters, and sub-process output columns.
  ProcessBuilder& Block(std::string name,
                        std::shared_ptr<ProcessDefinition> sub,
                        std::vector<InputSource> inputs,
                        std::string exit_condition = "",
                        BlockAccumulate accumulate =
                            BlockAccumulate::kLastIteration,
                        int max_iterations = 10000);

  /// Sets the join kind of the most recently added activity.
  ProcessBuilder& Join(JoinKind kind);

  /// Adds a control connector; `condition` is SQL expression text
  /// ("" = unconditional).
  ProcessBuilder& Connect(std::string from, std::string to,
                          std::string condition = "");

  /// Designates the activity whose output is the process result.
  ProcessBuilder& Output(std::string activity);

  /// Parses conditions, validates, and returns the definition.
  Result<ProcessDefinition> Build();

  /// Like Build(), wrapped in a shared_ptr (for use as a block sub-process).
  Result<std::shared_ptr<ProcessDefinition>> BuildShared();

 private:
  struct PendingConnector {
    std::string from;
    std::string to;
    std::string condition;
  };
  struct PendingExit {
    size_t activity_index;
    std::string condition;
  };

  ProcessDefinition def_;
  std::vector<PendingConnector> pending_connectors_;
  std::vector<PendingExit> pending_exits_;
};

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_BUILDER_H_
