// Audit trail: the engine's record of navigation events, in virtual time.
#ifndef FEDFLOW_WFMS_AUDIT_H_
#define FEDFLOW_WFMS_AUDIT_H_

#include <string>
#include <vector>

#include "common/vclock.h"

namespace fedflow::wfms {

/// Navigation event types.
enum class AuditEvent {
  kProcessStarted,
  kProcessFinished,
  kActivityStarted,
  kActivityFinished,
  kActivityDead,     ///< removed by dead-path elimination
  kActivityFailed,
  kLoopIteration,    ///< a block activity began another iteration
  kActivityCheckpointed,  ///< output persisted for forward recovery
  kProcessResumed,        ///< instance restarted from a checkpoint
};

/// Stable name of an audit event ("activity started", ...).
const char* AuditEventName(AuditEvent event);

/// One audit record.
struct AuditEntry {
  VTime time = 0;          ///< virtual time of the event
  AuditEvent event = AuditEvent::kProcessStarted;
  std::string activity;    ///< empty for process-level events
  std::string detail;      ///< free text (error message, iteration no., ...)
  /// Position of the activity in the process definition; -1 for
  /// process-level events. Ties on `time` order by this index — the same
  /// rule that ranks errors, so parallel forks produce one deterministic
  /// trail regardless of pool scheduling.
  int activity_index = -1;
};

/// Ordered audit trail of one process instance.
class AuditTrail {
 public:
  void Record(VTime time, AuditEvent event, std::string activity,
              std::string detail = "", int activity_index = -1);

  const std::vector<AuditEntry>& entries() const { return entries_; }

  /// Entries for one activity, in order.
  std::vector<AuditEntry> ForActivity(const std::string& activity) const;

  /// Sorts entries by (time, activity index): navigation under a thread pool
  /// can record concurrently-finishing events out of order, and same-time
  /// ties resolve by the activity's definition position (process-started
  /// first, process-finished last), matching the engine's error ranking.
  void Normalize();

  /// Multi-line human-readable rendering.
  std::string ToString() const;

 private:
  std::vector<AuditEntry> entries_;
};

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_AUDIT_H_
