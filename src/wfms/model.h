// The workflow process model: activities, control connectors with transition
// conditions, data flow (input sources), blocks (sub-workflows with do-until
// exit conditions). This is the production-workflow model of Leymann/Roller
// that the paper's MQSeries Workflow engine implements.
#ifndef FEDFLOW_WFMS_MODEL_H_
#define FEDFLOW_WFMS_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/table.h"
#include "sql/ast.h"

namespace fedflow::wfms {

/// Kinds of activities.
enum class ActivityKind {
  kProgram,  ///< invokes a local function of an application system
  kHelper,   ///< runs a registered helper (type casts, result merging)
  kBlock,    ///< runs a sub-workflow, optionally in a do-until loop
};

/// How an activity's input parameter is supplied (the model's data
/// connectors, normalized to per-parameter sources).
struct InputSource {
  enum class Kind {
    kConstant,        ///< a fixed value (the paper's "supply of constants")
    kProcessInput,    ///< field of the process input container
    kActivityOutput,  ///< column of another activity's output container
  };
  Kind kind = Kind::kConstant;
  Value constant;         ///< kConstant
  std::string param;      ///< kProcessInput: input field name
  std::string activity;   ///< kActivityOutput: source activity
  std::string column;     ///< kActivityOutput: column; empty = whole table
                          ///< (helpers may consume whole tables)

  static InputSource Constant(Value v) {
    InputSource s;
    s.kind = Kind::kConstant;
    s.constant = std::move(v);
    return s;
  }
  static InputSource FromProcessInput(std::string param) {
    InputSource s;
    s.kind = Kind::kProcessInput;
    s.param = std::move(param);
    return s;
  }
  static InputSource FromActivity(std::string activity, std::string column) {
    InputSource s;
    s.kind = Kind::kActivityOutput;
    s.activity = std::move(activity);
    s.column = std::move(column);
    return s;
  }
};

/// Start condition of an activity with multiple incoming control connectors.
enum class JoinKind {
  kAnd,  ///< runs only when every incoming connector evaluated to true
  kOr,   ///< runs when at least one incoming connector evaluated to true
};

/// What a block activity accumulates over its loop iterations.
enum class BlockAccumulate {
  kLastIteration,  ///< output container of the final iteration (MQSeries)
  kUnionAll,       ///< union of all iterations' outputs (result collection)
};

struct ProcessDefinition;

/// Helper function body: tables in, table out. Helpers implement the paper's
/// type conversions and the combination of parallel activity results.
using HelperFn =
    std::function<Result<Table>(const std::vector<Table>& inputs)>;

/// One node of the process graph.
struct ActivityDef {
  std::string name;  ///< unique within the process
  ActivityKind kind = ActivityKind::kProgram;

  /// kProgram: target application system and local function.
  std::string system;
  std::string function;

  /// kHelper: name of a registered helper.
  std::string helper;

  /// Ordered inputs (one per program-function parameter / helper argument /
  /// sub-process input parameter).
  std::vector<InputSource> inputs;

  /// Start condition when >1 incoming control connector.
  JoinKind join = JoinKind::kAnd;

  /// kBlock: the sub-workflow. Shared so definitions stay copyable.
  std::shared_ptr<ProcessDefinition> sub;
  /// kBlock: do-until exit condition, evaluated after each iteration over the
  /// sub-process output columns, the block's inputs (by parameter name) and
  /// the implicit ITERATION counter (1-based). Null = run exactly once.
  sql::ExprPtr exit_condition;
  /// kBlock: iteration guard.
  int max_iterations = 10000;
  BlockAccumulate accumulate = BlockAccumulate::kLastIteration;
};

/// Directed control connector with an optional transition condition
/// (evaluated over activity outputs and process inputs; null = always true).
struct ControlConnector {
  std::string from;
  std::string to;
  sql::ExprPtr condition;
};

/// A process template (the build-time entity the engine instantiates).
struct ProcessDefinition {
  std::string name;
  /// Process input container fields.
  std::vector<Column> input_params;
  /// The activity whose output container is the process result.
  std::string output_activity;

  std::vector<ActivityDef> activities;
  std::vector<ControlConnector> connectors;

  /// Finds an activity by name (case-insensitive); NotFound when absent.
  Result<const ActivityDef*> FindActivity(const std::string& name) const;

  /// Index of an activity; NotFound when absent.
  Result<size_t> ActivityIndex(const std::string& name) const;
};

/// Structural validation: unique names, known endpoints, data sources backed
/// by control paths, acyclic control flow, output activity exists, input
/// arity of blocks matches their sub-process. Returns the first violation.
Status ValidateProcess(const ProcessDefinition& def);

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_MODEL_H_
