// FDL — a small textual process-definition language in the spirit of
// MQSeries Workflow's Flow Definition Language. Line-oriented:
//
//   -- the paper's Fig. 1 process
//   PROCESS BuySuppComp (SupplierNo INT, CompName VARCHAR)
//     PROGRAM GetQuality SYSTEM stock FUNCTION GetQuality IN (INPUT.SupplierNo)
//     PROGRAM GetReliability SYSTEM purchasing FUNCTION GetReliability
//         IN (INPUT.SupplierNo)
//     PROGRAM GetGrade SYSTEM pdm FUNCTION GetGrade
//         IN (GetQuality.Qual, GetReliability.Relia)
//     CONNECT GetQuality -> GetGrade
//     CONNECT GetReliability -> GetGrade
//     OUTPUT GetGrade
//   END
//
// Statements (one per line; a trailing '\' continues on the next line):
//   PROCESS name (param TYPE, ...)
//   PROGRAM name SYSTEM sys FUNCTION fn [JOIN OR] [IN (src, ...)]
//   HELPER name USING helper [JOIN OR] [IN (src, ...)]
//   BLOCK name SUB process [JOIN OR] [IN (src, ...)] [UNION]
//       [MAXITER n] [UNTIL expr-to-end-of-line]
//   CONNECT from -> to [WHEN expr-to-end-of-line]
//   OUTPUT activity
//   END
//
// Input sources: INPUT.field | Activity.Column | Activity.* (whole table) |
// literal. BLOCK SUB references a PROCESS defined earlier in the document.
#ifndef FEDFLOW_WFMS_FDL_H_
#define FEDFLOW_WFMS_FDL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "wfms/model.h"

namespace fedflow::wfms {

/// Parses an FDL document into validated process definitions, in document
/// order. InvalidArgument (with a line number) on syntax or semantic errors.
Result<std::vector<ProcessDefinition>> ParseFdl(const std::string& text);

/// Renders a process definition back to FDL text (block sub-processes are
/// emitted as preceding PROCESS definitions).
std::string ToFdl(const ProcessDefinition& def);

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_FDL_H_
