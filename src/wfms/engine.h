// The workflow engine: registers process templates, instantiates them, and
// navigates instances — parallel forks on a real thread pool, transition
// conditions with dead-path elimination, do-until blocks — while computing
// deterministic virtual-time token timestamps (an activity starts at the max
// of its incoming tokens and ends at start + modeled work).
#ifndef FEDFLOW_WFMS_ENGINE_H_
#define FEDFLOW_WFMS_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "common/vclock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wfms/audit.h"
#include "wfms/model.h"
#include "wfms/program.h"

namespace fedflow::wfms {

/// Step names used in engine-produced time breakdowns (matching the paper's
/// Fig. 6 categories).
namespace steps {
inline constexpr char kProcessActivities[] = "Process activities";
inline constexpr char kWorkflowNavigation[] = "Workflow";
}  // namespace steps

/// Engine configuration. Costs are virtual microseconds; callers derive them
/// from the simulation latency model.
struct EngineOptions {
  /// Worker threads for parallel activity execution.
  size_t worker_threads = 4;
  /// Navigation overhead the engine charges per navigated activity
  /// (scheduling, connector evaluation) — attributed to "Workflow".
  VDuration navigation_cost_us = 0;
  /// Input/output container handling per activity — attributed to
  /// "Process activities" (the paper: activities have the additional task of
  /// handling the containers).
  VDuration container_cost_us = 0;
  /// Work charged for a helper activity's execution.
  VDuration helper_cost_us = 0;
  /// Optional metrics sink (not owned): activity executions, persisted
  /// checkpoints, and resumes are counted under "wfms.*".
  obs::MetricsRegistry* metrics = nullptr;
};

/// Result of one process instance.
struct ProcessResult {
  Table output;
  /// Virtual end-to-end time of the instance. Under parallel forks this is
  /// the max over branch completion times, not the sum of work.
  VDuration elapsed_us = 0;
  /// Work attributed per step category (sums can exceed elapsed_us when
  /// branches overlap).
  TimeBreakdown breakdown;
  AuditTrail audit;
};

/// Persistent state of a process instance for forward recovery: the output
/// containers and audit trail as of the last completed activity, exactly what
/// the paper credits the WfMS with keeping on persistent storage. Written by
/// RunRecoverable after every activity completion; consumed by ResumeFrom.
struct InstanceCheckpoint {
  /// True while a failed instance is waiting to be resumed. A successful run
  /// invalidates the checkpoint.
  bool valid = false;
  std::string process;
  std::vector<Value> args;

  /// One persisted activity completion (output container + finish time).
  struct CompletedActivity {
    std::string activity;
    Table output;
    VTime end_us = 0;
  };
  std::vector<CompletedActivity> completed;

  /// Audit trail up to (and including) the failure.
  AuditTrail audit;
  /// Virtual time at which the failed attempt stopped navigating.
  VTime failed_at_us = 0;
  /// Work the failed attempt performed (new work only, not restored work),
  /// so callers can still charge partial progress to the virtual clock.
  TimeBreakdown attempt_work;
};

/// A production-workflow engine (MQSeries Workflow stand-in).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validates and stores a process template.
  Status RegisterProcess(ProcessDefinition def);

  /// The registered template; NotFound when absent.
  Result<const ProcessDefinition*> GetProcess(const std::string& name) const;

  /// Names of registered templates (sorted).
  std::vector<std::string> ProcessNames() const;

  /// Registers a helper function under `name`.
  Status RegisterHelper(const std::string& name, HelperFn fn);

  /// Instantiates and runs a registered process. `args` bind positionally to
  /// the template's input parameters. `invoker` performs program activities
  /// (may be null for processes without program activities). `trace`
  /// (optional) hangs a process span — with one child span per executed
  /// activity, audit records mirrored as span events — under its parent;
  /// token times are offset by the handle's base.
  Result<ProcessResult> Run(const std::string& process,
                            const std::vector<Value>& args,
                            ProgramInvoker* invoker,
                            const obs::TraceHandle& trace = {});

  /// Runs an unregistered definition (validates first). For tests and
  /// one-shot compositions.
  Result<ProcessResult> RunDefinition(const ProcessDefinition& def,
                                      const std::vector<Value>& args,
                                      ProgramInvoker* invoker,
                                      const obs::TraceHandle& trace = {});

  /// Like Run, but with forward recovery through `ckpt` (must not be null):
  /// after every completed activity the instance's container/audit state is
  /// persisted into the checkpoint. On failure `ckpt->valid` becomes true and
  /// a subsequent RunRecoverable with the same checkpoint resumes from the
  /// last completed activity — finished activities are restored, not
  /// re-executed; only the failed activity and its not-yet-run successors
  /// navigate again. On success the checkpoint is invalidated. A resumed
  /// result's breakdown holds the new work only, while elapsed_us spans the
  /// whole instance timeline.
  Result<ProcessResult> RunRecoverable(const std::string& process,
                                       const std::vector<Value>& args,
                                       ProgramInvoker* invoker,
                                       InstanceCheckpoint* ckpt,
                                       const obs::TraceHandle& trace = {});

  /// Resumes the failed instance persisted in `ckpt` (whose audit trail and
  /// containers name the completed activities) with the checkpointed
  /// arguments. InvalidArgument when the checkpoint holds no failed instance.
  Result<ProcessResult> ResumeFrom(InstanceCheckpoint& ckpt,
                                   ProgramInvoker* invoker,
                                   const obs::TraceHandle& trace = {});

  const EngineOptions& options() const { return options_; }

 private:
  friend class InstanceRunner;

  EngineOptions options_;
  std::map<std::string, ProcessDefinition> processes_;
  std::map<std::string, HelperFn> helpers_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_ENGINE_H_
