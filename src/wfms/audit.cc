#include "wfms/audit.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace fedflow::wfms {

const char* AuditEventName(AuditEvent event) {
  switch (event) {
    case AuditEvent::kProcessStarted:
      return "process started";
    case AuditEvent::kProcessFinished:
      return "process finished";
    case AuditEvent::kActivityStarted:
      return "activity started";
    case AuditEvent::kActivityFinished:
      return "activity finished";
    case AuditEvent::kActivityDead:
      return "activity dead";
    case AuditEvent::kActivityFailed:
      return "activity failed";
    case AuditEvent::kLoopIteration:
      return "loop iteration";
    case AuditEvent::kActivityCheckpointed:
      return "activity checkpointed";
    case AuditEvent::kProcessResumed:
      return "process resumed";
  }
  return "unknown";
}

void AuditTrail::Record(VTime time, AuditEvent event, std::string activity,
                        std::string detail, int activity_index) {
  entries_.push_back(AuditEntry{time, event, std::move(activity),
                                std::move(detail), activity_index});
}

std::vector<AuditEntry> AuditTrail::ForActivity(
    const std::string& activity) const {
  std::vector<AuditEntry> out;
  for (const AuditEntry& e : entries_) {
    if (EqualsIgnoreCase(e.activity, activity)) out.push_back(e);
  }
  return out;
}

void AuditTrail::Normalize() {
  auto rank = [](const AuditEntry& e) {
    if (e.event == AuditEvent::kProcessStarted) return 0;
    if (e.event == AuditEvent::kProcessFinished) return 2;
    return 1;
  };
  std::stable_sort(entries_.begin(), entries_.end(),
                   [&](const AuditEntry& a, const AuditEntry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     if (a.activity_index != b.activity_index) {
                       return a.activity_index < b.activity_index;
                     }
                     return a.activity < b.activity;
                   });
}

std::string AuditTrail::ToString() const {
  std::ostringstream os;
  for (const AuditEntry& e : entries_) {
    os << "[" << e.time << " us] " << AuditEventName(e.event);
    if (!e.activity.empty()) os << " " << e.activity;
    if (!e.detail.empty()) os << " (" << e.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fedflow::wfms
