// The engine's interface to the outside world: program activities invoke
// local functions of application systems through a ProgramInvoker (the
// paper's program-execution agents). The federation layer supplies an
// implementation that performs the real call and models its costs.
#ifndef FEDFLOW_WFMS_PROGRAM_H_
#define FEDFLOW_WFMS_PROGRAM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/table.h"
#include "common/vclock.h"
#include "obs/trace.h"

namespace fedflow::wfms {

/// Outcome of one program invocation.
struct InvokeResult {
  Table output;
  /// Virtual work time of the invocation, used for token timestamps.
  VDuration duration = 0;
  /// Step-attributed portions of `duration` (JVM start, marshalling, ...).
  TimeBreakdown steps;
};

/// Invokes local functions of application systems on behalf of the engine.
class ProgramInvoker {
 public:
  virtual ~ProgramInvoker() = default;

  /// Calls `function` of `system` with scalar `args`.
  virtual Result<InvokeResult> Invoke(const std::string& system,
                                      const std::string& function,
                                      const std::vector<Value>& args) = 0;

  /// Traced variant the engine calls for program activities: `trace` carries
  /// the activity span as parent (and the virtual-time base of the
  /// invocation) so invoker implementations can hang local-function spans
  /// under the right activity. The default ignores the handle and delegates
  /// to Invoke — existing invokers keep working unchanged.
  virtual Result<InvokeResult> InvokeTraced(const std::string& system,
                                            const std::string& function,
                                            const std::vector<Value>& args,
                                            const obs::TraceHandle& trace) {
    (void)trace;
    return Invoke(system, function, args);
  }
};

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_PROGRAM_H_
