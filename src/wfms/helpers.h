// Factories for common helper functions. Helpers are the paper's workflow
// answer to signature mismatches and result composition: type casts, constant
// supply, combining parallel activity outputs (concatenation, union, join).
#ifndef FEDFLOW_WFMS_HELPERS_H_
#define FEDFLOW_WFMS_HELPERS_H_

#include <string>

#include "common/value.h"
#include "wfms/model.h"

namespace fedflow::wfms {

/// Returns the single input unchanged (1 input).
HelperFn MakeIdentityHelper();

/// Casts column `column` of the single input to `target`, keeping all other
/// columns (the paper's simple-case INT -> BIGINT conversion).
HelperFn MakeCastHelper(std::string column, DataType target);

/// Renames the columns of the single input to `names` (arity must match).
HelperFn MakeRenameHelper(std::vector<std::string> names);

/// Concatenates all inputs column-wise; every input must have exactly one
/// row. Combines parallel scalar results into one row.
HelperFn MakeConcatHelper();

/// Unions the rows of all inputs; schemas must have equal arity (column
/// names are taken from the first input).
HelperFn MakeUnionAllHelper();

/// Hash-joins input 0 and input 1 on `left_column` = `right_column`,
/// emitting the columns of both inputs (the paper's independent-case
/// composition "join with selection").
HelperFn MakeJoinHelper(std::string left_column, std::string right_column);

/// Projects the single input to the named columns, in order.
HelperFn MakeProjectHelper(std::vector<std::string> columns);

/// Ignores inputs and emits a constant 1x1 table (column `name`).
HelperFn MakeConstHelper(std::string name, Value value);

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_HELPERS_H_
