// Transition/exit condition evaluation. Conditions reuse the SQL expression
// grammar (parsed with sql::ParseExpression) but are evaluated over workflow
// data: activity output columns, process input fields, loop counters.
#ifndef FEDFLOW_WFMS_CONDITION_H_
#define FEDFLOW_WFMS_CONDITION_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"

namespace fedflow::wfms {

/// Maps a (qualifier, name) reference to a value. Qualifiers are activity
/// names ("GetQuality.Qual"), empty for process inputs / loop counters.
using ConditionResolver = std::function<Result<Value>(
    const std::string& qualifier, const std::string& name)>;

/// Evaluates `expr` with `resolve`. Supports literals, references, arithmetic,
/// comparisons, AND/OR/NOT and IS [NOT] NULL with SQL three-valued logic;
/// function calls are rejected (conditions are data predicates only).
Result<Value> EvalCondition(const sql::Expr& expr,
                            const ConditionResolver& resolve);

/// Convenience: evaluates and collapses to bool (NULL/unknown => false, as a
/// transition condition that cannot be proven true does not fire).
Result<bool> EvalConditionBool(const sql::Expr& expr,
                               const ConditionResolver& resolve);

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_CONDITION_H_
