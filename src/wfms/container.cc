#include "wfms/container.h"

#include "common/strings.h"

namespace fedflow::wfms {

void Container::Set(const std::string& name, Table table) {
  for (auto& [slot_name, slot_table] : slots_) {
    if (EqualsIgnoreCase(slot_name, name)) {
      slot_table = std::move(table);
      return;
    }
  }
  slots_.emplace_back(name, std::move(table));
}

Status Container::Append(const std::string& name, Table batch) {
  for (auto& [slot_name, slot_table] : slots_) {
    if (EqualsIgnoreCase(slot_name, name)) {
      return slot_table.AppendTableRows(std::move(batch));
    }
  }
  slots_.emplace_back(name, std::move(batch));
  return Status::OK();
}

Result<const Table*> Container::Get(const std::string& name) const {
  for (const auto& [slot_name, slot_table] : slots_) {
    if (EqualsIgnoreCase(slot_name, name)) return &slot_table;
  }
  return Status::NotFound("container slot not found: " + name);
}

bool Container::Has(const std::string& name) const {
  for (const auto& [slot_name, slot_table] : slots_) {
    if (EqualsIgnoreCase(slot_name, name)) return true;
  }
  return false;
}

std::vector<std::string> Container::Names() const {
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [slot_name, slot_table] : slots_) {
    names.push_back(slot_name);
  }
  return names;
}

Table Container::WrapScalar(const std::string& column, const Value& value) {
  Schema schema;
  schema.AddColumn(column, value.is_null() ? DataType::kVarchar : value.type());
  Table t(schema);
  t.AppendRowUnchecked({value});
  return t;
}

Result<Value> Container::ExtractScalar(const Table& table,
                                       const std::string& column) {
  FEDFLOW_ASSIGN_OR_RETURN(size_t idx, table.schema().FindColumn(column));
  if (table.num_rows() != 1) {
    return Status::ExecutionError(
        "scalar input requires exactly one row, got " +
        std::to_string(table.num_rows()) + " (column " + column + ")");
  }
  return table.rows()[0][idx];
}

}  // namespace fedflow::wfms
