#include "wfms/condition.h"

#include "common/strings.h"

namespace fedflow::wfms {

using sql::BinaryExpr;
using sql::BinaryOp;
using sql::CaseExpr;
using sql::ColumnRefExpr;
using sql::Expr;
using sql::ExprKind;
using sql::LiteralExpr;
using sql::UnaryExpr;
using sql::UnaryOp;

namespace {

Result<Value> Truth(const Value& v) {
  if (v.is_null()) return Value::Null();
  if (v.type() == DataType::kBool) return v;
  FEDFLOW_ASSIGN_OR_RETURN(int64_t n, v.ToInt64());
  return Value::Bool(n != 0);
}

}  // namespace

Result<Value> EvalCondition(const Expr& expr,
                            const ConditionResolver& resolve) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      return resolve(ref.qualifier(), ref.name());
    }
    case ExprKind::kFunctionCall:
      return Status::Unsupported(
          "function calls are not allowed in workflow conditions");
    case ExprKind::kCase: {
      const auto& case_expr = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::Branch& b : case_expr.branches()) {
        FEDFLOW_ASSIGN_OR_RETURN(Value cond,
                                 EvalCondition(*b.condition, resolve));
        FEDFLOW_ASSIGN_OR_RETURN(Value truth, Truth(cond));
        if (!truth.is_null() && truth.AsBool()) {
          return EvalCondition(*b.value, resolve);
        }
      }
      if (case_expr.else_value() != nullptr) {
        return EvalCondition(*case_expr.else_value(), resolve);
      }
      return Value::Null();
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      FEDFLOW_ASSIGN_OR_RETURN(Value v, EvalCondition(*un.operand(), resolve));
      switch (un.op()) {
        case UnaryOp::kNeg: {
          if (v.is_null()) return Value::Null();
          if (v.type() == DataType::kDouble) return Value::Double(-v.AsDouble());
          FEDFLOW_ASSIGN_OR_RETURN(int64_t n, v.ToInt64());
          return Value::BigInt(-n);
        }
        case UnaryOp::kNot: {
          FEDFLOW_ASSIGN_OR_RETURN(Value t, Truth(v));
          if (t.is_null()) return Value::Null();
          return Value::Bool(!t.AsBool());
        }
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("bad unary op in condition");
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      const BinaryOp op = bin.op();
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        FEDFLOW_ASSIGN_OR_RETURN(Value lv, EvalCondition(*bin.left(), resolve));
        FEDFLOW_ASSIGN_OR_RETURN(Value lt, Truth(lv));
        if (op == BinaryOp::kAnd && !lt.is_null() && !lt.AsBool()) {
          return Value::Bool(false);
        }
        if (op == BinaryOp::kOr && !lt.is_null() && lt.AsBool()) {
          return Value::Bool(true);
        }
        FEDFLOW_ASSIGN_OR_RETURN(Value rv,
                                 EvalCondition(*bin.right(), resolve));
        FEDFLOW_ASSIGN_OR_RETURN(Value rt, Truth(rv));
        if (op == BinaryOp::kAnd) {
          if (!rt.is_null() && !rt.AsBool()) return Value::Bool(false);
          if (lt.is_null() || rt.is_null()) return Value::Null();
          return Value::Bool(true);
        }
        if (!rt.is_null() && rt.AsBool()) return Value::Bool(true);
        if (lt.is_null() || rt.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      FEDFLOW_ASSIGN_OR_RETURN(Value lv, EvalCondition(*bin.left(), resolve));
      FEDFLOW_ASSIGN_OR_RETURN(Value rv, EvalCondition(*bin.right(), resolve));
      switch (op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          if (lv.is_null() || rv.is_null()) return Value::Null();
          FEDFLOW_ASSIGN_OR_RETURN(int cmp, lv.Compare(rv));
          if (op == BinaryOp::kEq) return Value::Bool(cmp == 0);
          if (op == BinaryOp::kNe) return Value::Bool(cmp != 0);
          if (op == BinaryOp::kLt) return Value::Bool(cmp < 0);
          if (op == BinaryOp::kLe) return Value::Bool(cmp <= 0);
          if (op == BinaryOp::kGt) return Value::Bool(cmp > 0);
          return Value::Bool(cmp >= 0);
        }
        case BinaryOp::kConcat:
          if (lv.is_null() || rv.is_null()) return Value::Null();
          return Value::Varchar(lv.ToString() + rv.ToString());
        case BinaryOp::kLike:
          if (lv.is_null() || rv.is_null()) return Value::Null();
          if (lv.type() != DataType::kVarchar ||
              rv.type() != DataType::kVarchar) {
            return Status::TypeError("LIKE requires VARCHAR operands");
          }
          return Value::Bool(SqlLike(lv.AsVarchar(), rv.AsVarchar()));
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          if (lv.is_null() || rv.is_null()) return Value::Null();
          if (lv.type() == DataType::kDouble ||
              rv.type() == DataType::kDouble) {
            FEDFLOW_ASSIGN_OR_RETURN(double a, lv.ToDouble());
            FEDFLOW_ASSIGN_OR_RETURN(double b, rv.ToDouble());
            if (op == BinaryOp::kAdd) return Value::Double(a + b);
            if (op == BinaryOp::kSub) return Value::Double(a - b);
            if (op == BinaryOp::kMul) return Value::Double(a * b);
            if (op == BinaryOp::kDiv) {
              if (b == 0) return Status::ExecutionError("division by zero");
              return Value::Double(a / b);
            }
            return Status::TypeError("MOD requires integers");
          }
          FEDFLOW_ASSIGN_OR_RETURN(int64_t a, lv.ToInt64());
          FEDFLOW_ASSIGN_OR_RETURN(int64_t b, rv.ToInt64());
          if (op == BinaryOp::kAdd) return Value::BigInt(a + b);
          if (op == BinaryOp::kSub) return Value::BigInt(a - b);
          if (op == BinaryOp::kMul) return Value::BigInt(a * b);
          if (op == BinaryOp::kDiv) {
            if (b == 0) return Status::ExecutionError("division by zero");
            return Value::BigInt(a / b);
          }
          if (b == 0) return Status::ExecutionError("modulo by zero");
          return Value::BigInt(a % b);
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          // Handled above with short-circuit semantics.
          return Status::Internal("unhandled binary op in condition");
      }
    }
  }
  return Status::Internal("bad expression kind in condition");
}

Result<bool> EvalConditionBool(const Expr& expr,
                               const ConditionResolver& resolve) {
  FEDFLOW_ASSIGN_OR_RETURN(Value v, EvalCondition(expr, resolve));
  if (v.is_null()) return false;
  if (v.type() == DataType::kBool) return v.AsBool();
  FEDFLOW_ASSIGN_OR_RETURN(int64_t n, v.ToInt64());
  return n != 0;
}

}  // namespace fedflow::wfms
