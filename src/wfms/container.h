// Workflow data containers. In a production-workflow system (FlowMark /
// MQSeries Workflow lineage) every activity reads an input container and
// writes an output container; data connectors move fields between them. Our
// container holds named slots, each a Table (scalars are 1x1 tables), which
// uniformly covers scalar parameters and table-valued function results.
#ifndef FEDFLOW_WFMS_CONTAINER_H_
#define FEDFLOW_WFMS_CONTAINER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/table.h"

namespace fedflow::wfms {

/// Named, ordered collection of tables. Used as the process-instance data
/// space: one slot per completed activity (its output container) plus the
/// process input fields.
class Container {
 public:
  /// Sets (or replaces) slot `name`.
  void Set(const std::string& name, Table table);

  /// Appends `batch`'s rows onto slot `name` (creating the slot from the
  /// batch when absent). Rows are moved, never copied wholesale — this is
  /// what lets do-until loops accumulate output without re-copying the
  /// accumulated table on every iteration. Schema-checked against the
  /// existing slot.
  Status Append(const std::string& name, Table batch);

  /// The slot's table; NotFound when absent.
  Result<const Table*> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Slot names in insertion order.
  std::vector<std::string> Names() const;

  /// Wraps a scalar into a 1x1 table with column `column`.
  static Table WrapScalar(const std::string& column, const Value& value);

  /// Extracts a scalar from `table` column `column`; the table must have
  /// exactly one row (the paper's program activities take scalar inputs).
  static Result<Value> ExtractScalar(const Table& table,
                                     const std::string& column);

 private:
  std::vector<std::pair<std::string, Table>> slots_;
};

}  // namespace fedflow::wfms

#endif  // FEDFLOW_WFMS_CONTAINER_H_
