#include "wfms/model.h"

#include <set>

#include "common/strings.h"

namespace fedflow::wfms {

Result<const ActivityDef*> ProcessDefinition::FindActivity(
    const std::string& name) const {
  for (const ActivityDef& a : activities) {
    if (EqualsIgnoreCase(a.name, name)) return &a;
  }
  return Status::NotFound("activity not found: " + name + " in process " +
                          this->name);
}

Result<size_t> ProcessDefinition::ActivityIndex(const std::string& name) const {
  for (size_t i = 0; i < activities.size(); ++i) {
    if (EqualsIgnoreCase(activities[i].name, name)) return i;
  }
  return Status::NotFound("activity not found: " + name + " in process " +
                          this->name);
}

namespace {

/// Computes reachability: reach[i][j] true when a control path i -> j exists.
std::vector<std::vector<bool>> Reachability(
    const ProcessDefinition& def,
    const std::vector<std::vector<size_t>>& succ) {
  const size_t n = def.activities.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    // DFS from i.
    std::vector<size_t> stack = {i};
    while (!stack.empty()) {
      size_t cur = stack.back();
      stack.pop_back();
      for (size_t next : succ[cur]) {
        if (!reach[i][next]) {
          reach[i][next] = true;
          stack.push_back(next);
        }
      }
    }
  }
  return reach;
}

}  // namespace

Status ValidateProcess(const ProcessDefinition& def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("process has no name");
  }
  if (def.activities.empty()) {
    return Status::InvalidArgument("process " + def.name +
                                   " has no activities");
  }
  const size_t n = def.activities.size();

  // Unique activity names.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (EqualsIgnoreCase(def.activities[i].name, def.activities[j].name)) {
        return Status::InvalidArgument("duplicate activity name: " +
                                       def.activities[i].name);
      }
    }
  }

  // Output activity exists.
  FEDFLOW_RETURN_NOT_OK(def.ActivityIndex(def.output_activity).status());

  // Connector endpoints exist; build successor lists.
  std::vector<std::vector<size_t>> succ(n);
  for (const ControlConnector& c : def.connectors) {
    FEDFLOW_ASSIGN_OR_RETURN(size_t from, def.ActivityIndex(c.from));
    FEDFLOW_ASSIGN_OR_RETURN(size_t to, def.ActivityIndex(c.to));
    if (from == to) {
      return Status::InvalidArgument("self-loop connector on " + c.from);
    }
    succ[from].push_back(to);
  }

  // Control flow must be acyclic (loops are expressed as block activities).
  std::vector<std::vector<bool>> reach = Reachability(def, succ);
  for (size_t i = 0; i < n; ++i) {
    if (reach[i][i]) {
      return Status::InvalidArgument(
          "control-flow cycle through activity " + def.activities[i].name +
          "; use a block activity with an exit condition for loops");
    }
  }

  // Per-activity checks.
  for (size_t i = 0; i < n; ++i) {
    const ActivityDef& a = def.activities[i];
    switch (a.kind) {
      case ActivityKind::kProgram:
        if (a.system.empty() || a.function.empty()) {
          return Status::InvalidArgument(
              "program activity " + a.name +
              " must name an application system and a function");
        }
        break;
      case ActivityKind::kHelper:
        if (a.helper.empty()) {
          return Status::InvalidArgument("helper activity " + a.name +
                                         " must name a helper function");
        }
        break;
      case ActivityKind::kBlock: {
        if (a.sub == nullptr) {
          return Status::InvalidArgument("block activity " + a.name +
                                         " has no sub-process");
        }
        FEDFLOW_RETURN_NOT_OK(ValidateProcess(*a.sub));
        if (a.inputs.size() != a.sub->input_params.size()) {
          return Status::InvalidArgument(
              "block activity " + a.name + " supplies " +
              std::to_string(a.inputs.size()) + " input(s) but sub-process " +
              a.sub->name + " declares " +
              std::to_string(a.sub->input_params.size()));
        }
        if (a.max_iterations <= 0) {
          return Status::InvalidArgument("block activity " + a.name +
                                         " has non-positive max_iterations");
        }
        break;
      }
    }

    // Data sources must exist; activity-output sources need a control path
    // from the source to this activity so the value is available.
    for (const InputSource& in : a.inputs) {
      if (in.kind == InputSource::Kind::kProcessInput) {
        bool found = false;
        for (const Column& p : def.input_params) {
          if (EqualsIgnoreCase(p.name, in.param)) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "activity " + a.name + " reads unknown process input " +
              in.param);
        }
      } else if (in.kind == InputSource::Kind::kActivityOutput) {
        FEDFLOW_ASSIGN_OR_RETURN(size_t src, def.ActivityIndex(in.activity));
        if (src == i) {
          return Status::InvalidArgument("activity " + a.name +
                                         " reads its own output");
        }
        if (!reach[src][i]) {
          return Status::InvalidArgument(
              "activity " + a.name + " reads output of " + in.activity +
              " without a control path from it (add a control connector)");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace fedflow::wfms
