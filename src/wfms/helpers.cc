#include "wfms/helpers.h"

#include <unordered_map>

namespace fedflow::wfms {

HelperFn MakeIdentityHelper() {
  return [](const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("identity helper expects 1 input");
    }
    return inputs[0];
  };
}

HelperFn MakeCastHelper(std::string column, DataType target) {
  return [column = std::move(column),
          target](const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("cast helper expects 1 input");
    }
    const Table& in = inputs[0];
    FEDFLOW_ASSIGN_OR_RETURN(size_t idx, in.schema().FindColumn(column));
    Schema schema;
    for (size_t c = 0; c < in.schema().num_columns(); ++c) {
      schema.AddColumn(in.schema().column(c).name,
                       c == idx ? target : in.schema().column(c).type);
    }
    Table out(schema);
    for (const Row& r : in.rows()) {
      Row row = r;
      FEDFLOW_ASSIGN_OR_RETURN(row[idx], row[idx].CastTo(target));
      out.AppendRowUnchecked(std::move(row));
    }
    return out;
  };
}

HelperFn MakeRenameHelper(std::vector<std::string> names) {
  return [names =
              std::move(names)](const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("rename helper expects 1 input");
    }
    const Table& in = inputs[0];
    if (in.schema().num_columns() != names.size()) {
      return Status::InvalidArgument("rename helper: arity mismatch");
    }
    Schema schema;
    for (size_t c = 0; c < names.size(); ++c) {
      schema.AddColumn(names[c], in.schema().column(c).type);
    }
    return Table(schema, in.rows());
  };
}

HelperFn MakeConcatHelper() {
  return [](const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.empty()) {
      return Status::InvalidArgument("concat helper expects >= 1 input");
    }
    Schema schema;
    Row row;
    for (const Table& in : inputs) {
      if (in.num_rows() != 1) {
        return Status::ExecutionError(
            "concat helper requires single-row inputs");
      }
      for (size_t c = 0; c < in.schema().num_columns(); ++c) {
        schema.AddColumn(in.schema().column(c).name, in.schema().column(c).type);
        row.push_back(in.rows()[0][c]);
      }
    }
    Table out(schema);
    out.AppendRowUnchecked(std::move(row));
    return out;
  };
}

HelperFn MakeUnionAllHelper() {
  return [](const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.empty()) {
      return Status::InvalidArgument("union helper expects >= 1 input");
    }
    // Zero-column inputs come from dead-path-eliminated branches; skip them.
    const Schema* schema = nullptr;
    for (const Table& in : inputs) {
      if (in.schema().num_columns() > 0) {
        schema = &in.schema();
        break;
      }
    }
    if (schema == nullptr) return Table();
    Table out(*schema);
    for (const Table& in : inputs) {
      if (in.schema().num_columns() == 0) continue;
      if (in.schema().num_columns() != out.schema().num_columns()) {
        return Status::TypeError("union helper: arity mismatch");
      }
      // Inputs are borrowed: copy the rows once, then batch-append.
      FEDFLOW_RETURN_NOT_OK(out.AppendTableRows(Table(in)));
    }
    return out;
  };
}

HelperFn MakeJoinHelper(std::string left_column, std::string right_column) {
  return [lc = std::move(left_column), rc = std::move(right_column)](
             const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 2) {
      return Status::InvalidArgument("join helper expects 2 inputs");
    }
    const Table& left = inputs[0];
    const Table& right = inputs[1];
    FEDFLOW_ASSIGN_OR_RETURN(size_t li, left.schema().FindColumn(lc));
    FEDFLOW_ASSIGN_OR_RETURN(size_t ri, right.schema().FindColumn(rc));
    // Build hash table on the right side.
    std::unordered_multimap<size_t, size_t> index;
    index.reserve(right.num_rows());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      index.emplace(right.rows()[r][ri].Hash(), r);
    }
    Schema schema = left.schema().Concat(right.schema());
    Table out(schema);
    for (const Row& lrow : left.rows()) {
      auto [lo, hi] = index.equal_range(lrow[li].Hash());
      for (auto it = lo; it != hi; ++it) {
        const Row& rrow = right.rows()[it->second];
        if (!lrow[li].SqlEquals(rrow[ri])) continue;
        Row combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        out.AppendRowUnchecked(std::move(combined));
      }
    }
    return out;
  };
}

HelperFn MakeProjectHelper(std::vector<std::string> columns) {
  return [columns = std::move(columns)](
             const std::vector<Table>& inputs) -> Result<Table> {
    if (inputs.size() != 1) {
      return Status::InvalidArgument("project helper expects 1 input");
    }
    const Table& in = inputs[0];
    Schema schema;
    std::vector<size_t> idx;
    for (const std::string& c : columns) {
      FEDFLOW_ASSIGN_OR_RETURN(size_t i, in.schema().FindColumn(c));
      idx.push_back(i);
      schema.AddColumn(in.schema().column(i).name, in.schema().column(i).type);
    }
    Table out(schema);
    for (const Row& r : in.rows()) {
      Row row;
      row.reserve(idx.size());
      for (size_t i : idx) row.push_back(r[i]);
      out.AppendRowUnchecked(std::move(row));
    }
    return out;
  };
}

HelperFn MakeConstHelper(std::string name, Value value) {
  return [name = std::move(name),
          value = std::move(value)](const std::vector<Table>&) -> Result<Table> {
    Schema schema;
    schema.AddColumn(name,
                     value.is_null() ? DataType::kVarchar : value.type());
    Table out(schema);
    out.AppendRowUnchecked({value});
    return out;
  };
}

}  // namespace fedflow::wfms
