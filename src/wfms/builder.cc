#include "wfms/builder.h"

#include "sql/parser.h"

namespace fedflow::wfms {

ProcessBuilder::ProcessBuilder(std::string name) {
  def_.name = std::move(name);
}

ProcessBuilder& ProcessBuilder::Input(std::string name, DataType type) {
  def_.input_params.push_back(Column{std::move(name), type});
  return *this;
}

ProcessBuilder& ProcessBuilder::Program(std::string name, std::string system,
                                        std::string function,
                                        std::vector<InputSource> inputs) {
  ActivityDef a;
  a.name = std::move(name);
  a.kind = ActivityKind::kProgram;
  a.system = std::move(system);
  a.function = std::move(function);
  a.inputs = std::move(inputs);
  def_.activities.push_back(std::move(a));
  return *this;
}

ProcessBuilder& ProcessBuilder::Helper(std::string name, std::string helper,
                                       std::vector<InputSource> inputs) {
  ActivityDef a;
  a.name = std::move(name);
  a.kind = ActivityKind::kHelper;
  a.helper = std::move(helper);
  a.inputs = std::move(inputs);
  def_.activities.push_back(std::move(a));
  return *this;
}

ProcessBuilder& ProcessBuilder::Block(std::string name,
                                      std::shared_ptr<ProcessDefinition> sub,
                                      std::vector<InputSource> inputs,
                                      std::string exit_condition,
                                      BlockAccumulate accumulate,
                                      int max_iterations) {
  ActivityDef a;
  a.name = std::move(name);
  a.kind = ActivityKind::kBlock;
  a.sub = std::move(sub);
  a.inputs = std::move(inputs);
  a.accumulate = accumulate;
  a.max_iterations = max_iterations;
  def_.activities.push_back(std::move(a));
  if (!exit_condition.empty()) {
    pending_exits_.push_back(
        PendingExit{def_.activities.size() - 1, std::move(exit_condition)});
  }
  return *this;
}

ProcessBuilder& ProcessBuilder::Join(JoinKind kind) {
  if (!def_.activities.empty()) def_.activities.back().join = kind;
  return *this;
}

ProcessBuilder& ProcessBuilder::Connect(std::string from, std::string to,
                                        std::string condition) {
  pending_connectors_.push_back(
      PendingConnector{std::move(from), std::move(to), std::move(condition)});
  return *this;
}

ProcessBuilder& ProcessBuilder::Output(std::string activity) {
  def_.output_activity = std::move(activity);
  return *this;
}

Result<ProcessDefinition> ProcessBuilder::Build() {
  ProcessDefinition def = def_;  // copy so the builder stays reusable
  for (const PendingConnector& pc : pending_connectors_) {
    ControlConnector c;
    c.from = pc.from;
    c.to = pc.to;
    if (!pc.condition.empty()) {
      FEDFLOW_ASSIGN_OR_RETURN(c.condition,
                               sql::ParseExpression(pc.condition));
    }
    def.connectors.push_back(std::move(c));
  }
  for (const PendingExit& pe : pending_exits_) {
    FEDFLOW_ASSIGN_OR_RETURN(
        def.activities[pe.activity_index].exit_condition,
        sql::ParseExpression(pe.condition));
  }
  // Default output: the last activity.
  if (def.output_activity.empty() && !def.activities.empty()) {
    def.output_activity = def.activities.back().name;
  }
  FEDFLOW_RETURN_NOT_OK(ValidateProcess(def));
  return def;
}

Result<std::shared_ptr<ProcessDefinition>> ProcessBuilder::BuildShared() {
  FEDFLOW_ASSIGN_OR_RETURN(ProcessDefinition def, Build());
  return std::make_shared<ProcessDefinition>(std::move(def));
}

}  // namespace fedflow::wfms
