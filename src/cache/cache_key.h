// Canonical key material for the caching layer: argument fingerprints and
// data-version stamps. Federated-call memoization is only sound when two
// argument lists that are value-equal map to the same key and any mutation
// of an involved private store changes the key — both properties are
// provided here, on top of the binary codec (common/codec.h) and the
// per-store monotonic data versions (appsys::AppSystem::data_version).
#ifndef FEDFLOW_CACHE_CACHE_KEY_H_
#define FEDFLOW_CACHE_CACHE_KEY_H_

#include <string>
#include <vector>

#include "appsys/registry.h"
#include "common/table.h"
#include "common/value.h"

namespace fedflow::cache {

/// Canonical fingerprint of an argument list: the binary codec encoding of
/// the row, rendered as lowercase hex. Value-equal argument lists always
/// produce the same fingerprint; any type or value difference changes it.
std::string FingerprintArgs(const std::vector<Value>& args);

/// Composed data-version stamp of the named application systems:
/// "STOCK:3|PURCH:0|...", systems in the given order, names upper-cased.
/// A bump of any involved store's version changes the stamp, which changes
/// every result-cache key derived from it — versioned invalidation without
/// enumerating entries. Unknown system names stamp as "<NAME>:?" (they never
/// match a future stamp, so lookups safely miss).
std::string DataVersionStamp(const appsys::AppSystemRegistry& systems,
                             const std::vector<std::string>& names);

/// Rough retained-size estimate of a table (schema + rows), used to account
/// result-cache entries against the LRU byte budget. Deterministic: derived
/// from value types and payload lengths only, never from allocator behavior.
size_t EstimateTableBytes(const Table& table);

}  // namespace fedflow::cache

#endif  // FEDFLOW_CACHE_CACHE_KEY_H_
