#include "cache/cache_key.h"

#include "common/codec.h"
#include "common/strings.h"

namespace fedflow::cache {

std::string FingerprintArgs(const std::vector<Value>& args) {
  ByteWriter writer;
  writer.PutRow(args);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(writer.size() * 2);
  for (uint8_t b : writer.buffer()) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::string DataVersionStamp(const appsys::AppSystemRegistry& systems,
                             const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out.push_back('|');
    out += ToUpper(name);
    out.push_back(':');
    Result<appsys::AppSystem*> sys = systems.Get(name);
    if (sys.ok()) {
      out += std::to_string((*sys)->data_version());
    } else {
      out.push_back('?');
    }
  }
  return out;
}

size_t EstimateTableBytes(const Table& table) {
  // Fixed per-row and per-value overheads plus the varchar payloads: close
  // enough to steer the byte budget, cheap enough to compute on every insert.
  constexpr size_t kPerRow = 24;
  constexpr size_t kPerValue = 16;
  size_t bytes = 64;  // schema + entry bookkeeping
  for (size_t i = 0; i < table.schema().num_columns(); ++i) {
    bytes += table.schema().column(i).name.size() + kPerValue;
  }
  for (const Row& row : table.rows()) {
    bytes += kPerRow + row.size() * kPerValue;
    for (const Value& v : row) {
      if (!v.is_null() && v.type() == DataType::kVarchar) {
        bytes += v.AsVarchar().size();
      }
    }
  }
  return bytes;
}

}  // namespace fedflow::cache
