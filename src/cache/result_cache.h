// The result cache: memoized call results for the hot path of the
// federation. Two granularities share one store:
//
//   - A-UDTF local-call results ("scope" = owning application system):
//     skipping the modeled RMI + controller dispatch + server-side work of a
//     repeated local call;
//   - whole federated-function results ("scope" = kFederatedScope): a hot
//     controller slot with a resident entry skips the modeled call entirely,
//     generalizing the paper's cold/warm/hot observation to the fleet.
//
// Keys are (scope, function, canonicalized args, data-version stamp). The
// stamp (cache/cache_key.h) composes the involved application systems'
// monotonic data versions, so any private-store mutation makes every derived
// key unreachable — versioned invalidation without enumerating entries;
// superseded entries are detected on the next lookup or insert and counted
// as invalidations.
//
// Entries remember the warm-pool slot whose ledger was active when they were
// produced. Rebooting or evicting a slot flushes its entries: a post-reboot
// call must never be served at hot cost from a cold controller.
//
// Residency is bounded by an LRU byte budget; per-tenant byte quotas reuse
// the admission-control idea of the controller pool's per-tenant checkout
// quota (a tenant over its budget evicts its own LRU entries first and can
// never starve the fleet). All decisions are ranked by a monotonic
// use-sequence counter, never wall time, so a fixed call sequence always
// produces the same hits and evictions. Thread-safe.
#ifndef FEDFLOW_CACHE_RESULT_CACHE_H_
#define FEDFLOW_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/vclock.h"
#include "obs/metrics.h"

namespace fedflow::cache {

/// Scope tag of whole-federated-function entries (A-UDTF entries use the
/// owning application system's name).
inline constexpr char kFederatedScope[] = "fed";

/// Residency limits.
struct ResultCacheOptions {
  /// Global LRU byte budget (estimated retained bytes; see
  /// EstimateTableBytes). Inserting beyond the budget evicts least recently
  /// used entries. 0 disables the global bound.
  size_t max_bytes = 1 << 20;

  /// Per-tenant byte quota; 0 = unlimited. A tenant inserting beyond its
  /// quota evicts its own least recently used entries first — the result
  /// cache analog of the controller pool's per-tenant checkout quota.
  size_t per_tenant_max_bytes = 0;

  /// Adaptive admission: an entry whose modeled saved cost is below this
  /// threshold is not admitted — a hit on it could never pay back the probe
  /// that finds it. 0 (the default) admits everything; the integration
  /// server wires this to the latency model's cache_probe_us.
  VDuration min_saved_cost_us = 0;
};

/// Thread-safe memoization store for call results.
class ResultCache {
 public:
  /// Cache key; all fields participate in identity.
  struct Key {
    std::string scope;     ///< kFederatedScope or application-system name
    std::string function;  ///< function name (case-insensitive)
    std::string args;      ///< canonical argument fingerprint
    std::string version;   ///< composed data-version stamp
  };

  /// One memoized result plus its provenance.
  struct Entry {
    Table table;
    /// Modeled virtual time the original (uncached) call spent — what a hit
    /// saves. Informational; reported via "cache.result.saved_us".
    VDuration saved_cost_us = 0;
    /// Warm-pool slot whose ledger was active when the entry was produced.
    uint64_t slot = 0;
    /// Tenant the entry's bytes are accounted against.
    std::string tenant = "default";
  };

  /// Lifetime counters.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t invalidations = 0;
    int64_t admission_rejected = 0;  ///< entries below min_saved_cost_us
  };

  explicit ResultCache(ResultCacheOptions options = {});

  /// Attaches a metrics sink (nullptr detaches; not owned). Counts land
  /// under "cache.result.*"; per-tenant residency under
  /// "tenant.<t>.cache.result.bytes" gauges.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Looks `key` up, copying the memoized table into `*out` on a hit and
  /// refreshing the entry's LRU position. An entry for the same
  /// (scope, function, args) at a DIFFERENT data version is superseded: it
  /// is dropped, counted as an invalidation, and the lookup misses.
  bool Lookup(const Key& key, Table* out);

  /// Inserts (or replaces) the entry for `key`, evicting per-tenant then
  /// global LRU surplus. An entry larger than the whole budget is not
  /// admitted. A resident entry for the same (scope, function, args) at an
  /// older version is dropped first (counted as an invalidation).
  void Insert(const Key& key, Entry entry);

  /// Drops every entry produced on one of `slots`; returns how many.
  int64_t InvalidateSlots(const std::vector<uint64_t>& slots);

  /// Drops every entry (environment reboot); returns how many. Counted as
  /// invalidations — distinct from LRU evictions.
  int64_t InvalidateAll();

  /// Drops every entry for `function` in any scope; returns how many.
  int64_t InvalidateFunction(const std::string& function);

  Stats stats() const;
  size_t size() const;
  size_t bytes() const;
  size_t tenant_bytes(const std::string& tenant) const;
  ResultCacheOptions options() const;
  void set_options(const ResultCacheOptions& options);

 private:
  struct Node {
    Entry entry;
    size_t bytes = 0;
    uint64_t last_use_seq = 0;
    std::string series;  ///< scope|function|args (version-free identity)
  };

  static std::string FullKey(const Key& key);
  static std::string SeriesKey(const Key& key);

  /// Removes `it` from every index, updating byte accounting. Does NOT count
  /// a metric — callers classify the removal (eviction vs invalidation).
  void RemoveLocked(std::map<std::string, Node>::iterator it);

  /// Evicts LRU entries (optionally restricted to `tenant`) until the given
  /// budget holds. Counts evictions.
  void EvictToBudgetLocked(size_t budget, const std::string* tenant);

  void UpdateGaugesLocked();

  mutable std::mutex mu_;
  ResultCacheOptions options_;
  std::map<std::string, Node> entries_;          // full key -> node
  std::map<std::string, std::string> by_series_; // series -> full key
  std::map<std::string, size_t> tenant_bytes_;
  size_t bytes_ = 0;
  uint64_t use_seq_ = 0;
  Stats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fedflow::cache

#endif  // FEDFLOW_CACHE_RESULT_CACHE_H_
