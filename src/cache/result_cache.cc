#include "cache/result_cache.h"

#include <limits>
#include <utility>

#include "cache/cache_key.h"
#include "common/strings.h"

namespace fedflow::cache {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {}

void ResultCache::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  if (metrics_ != nullptr) UpdateGaugesLocked();
}

std::string ResultCache::SeriesKey(const Key& key) {
  return key.scope + "|" + ToUpper(key.function) + "|" + key.args;
}

std::string ResultCache::FullKey(const Key& key) {
  return SeriesKey(key) + "|" + key.version;
}

bool ResultCache::Lookup(const Key& key, Table* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string series = SeriesKey(key);
  auto sit = by_series_.find(series);
  if (sit != by_series_.end()) {
    auto it = entries_.find(sit->second);
    if (it != entries_.end()) {
      if (sit->second == FullKey(key)) {
        ++stats_.hits;
        if (metrics_ != nullptr) {
          metrics_->Inc("cache.result.hit");
          metrics_->Observe("cache.result.saved_us",
                            it->second.entry.saved_cost_us);
        }
        it->second.last_use_seq = ++use_seq_;
        *out = it->second.entry.table;
        return true;
      }
      // Same (scope, function, args), different data version: the store
      // moved on under this entry — versioned invalidation.
      RemoveLocked(it);
      ++stats_.invalidations;
      if (metrics_ != nullptr) {
        metrics_->Inc("cache.result.invalidation");
        UpdateGaugesLocked();
      }
    }
  }
  ++stats_.misses;
  if (metrics_ != nullptr) metrics_->Inc("cache.result.miss");
  return false;
}

void ResultCache::Insert(const Key& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  // Adaptive admission: an entry that saves less virtual time than the probe
  // which would find it costs more to cache than to recompute. Rejected
  // before any resident state is touched.
  if (options_.min_saved_cost_us > 0 &&
      entry.saved_cost_us < options_.min_saved_cost_us) {
    ++stats_.admission_rejected;
    if (metrics_ != nullptr) metrics_->Inc("cache.admission.rejected");
    return;
  }
  const std::string series = SeriesKey(key);
  const std::string full = FullKey(key);
  auto sit = by_series_.find(series);
  if (sit != by_series_.end()) {
    auto it = entries_.find(sit->second);
    if (it != entries_.end()) {
      const bool superseded = sit->second != full;
      RemoveLocked(it);
      if (superseded) {
        ++stats_.invalidations;
        if (metrics_ != nullptr) metrics_->Inc("cache.result.invalidation");
      }
    }
  }

  Node node;
  node.bytes = EstimateTableBytes(entry.table);
  node.series = series;
  node.entry = std::move(entry);
  node.last_use_seq = ++use_seq_;

  // An entry that alone exceeds a bound is simply not admitted — evicting
  // the whole cache for it would only thrash.
  if (options_.max_bytes != 0 && node.bytes > options_.max_bytes) return;
  if (options_.per_tenant_max_bytes != 0 &&
      node.bytes > options_.per_tenant_max_bytes) {
    return;
  }

  if (options_.per_tenant_max_bytes != 0) {
    const std::string tenant = node.entry.tenant;
    size_t used = 0;
    auto tb = tenant_bytes_.find(tenant);
    if (tb != tenant_bytes_.end()) used = tb->second;
    if (used + node.bytes > options_.per_tenant_max_bytes) {
      EvictToBudgetLocked(options_.per_tenant_max_bytes - node.bytes, &tenant);
    }
  }
  if (options_.max_bytes != 0 && bytes_ + node.bytes > options_.max_bytes) {
    EvictToBudgetLocked(options_.max_bytes - node.bytes, nullptr);
  }

  bytes_ += node.bytes;
  tenant_bytes_[node.entry.tenant] += node.bytes;
  by_series_[series] = full;
  entries_[full] = std::move(node);
  ++stats_.insertions;
  if (metrics_ != nullptr) {
    metrics_->Inc("cache.result.insert");
    UpdateGaugesLocked();
  }
}

int64_t ResultCache::InvalidateSlots(const std::vector<uint64_t>& slots) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool match = false;
    for (uint64_t slot : slots) {
      if (it->second.entry.slot == slot) {
        match = true;
        break;
      }
    }
    if (match) {
      auto next = std::next(it);
      RemoveLocked(it);
      ++dropped;
      it = next;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    stats_.invalidations += dropped;
    if (metrics_ != nullptr) {
      metrics_->Inc("cache.result.invalidation", dropped);
      UpdateGaugesLocked();
    }
  }
  return dropped;
}

int64_t ResultCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = static_cast<int64_t>(entries_.size());
  entries_.clear();
  by_series_.clear();
  tenant_bytes_.clear();
  bytes_ = 0;
  if (dropped > 0) {
    stats_.invalidations += dropped;
    if (metrics_ != nullptr) {
      metrics_->Inc("cache.result.invalidation", dropped);
    }
  }
  if (metrics_ != nullptr) UpdateGaugesLocked();
  return dropped;
}

int64_t ResultCache::InvalidateFunction(const std::string& function) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string upper = ToUpper(function);
  int64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    // series = scope|FUNCTION|args
    const std::string& series = it->second.series;
    size_t first = series.find('|');
    size_t second =
        first == std::string::npos ? std::string::npos
                                   : series.find('|', first + 1);
    const bool match =
        first != std::string::npos && second != std::string::npos &&
        series.compare(first + 1, second - first - 1, upper) == 0;
    if (match) {
      auto next = std::next(it);
      RemoveLocked(it);
      ++dropped;
      it = next;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    stats_.invalidations += dropped;
    if (metrics_ != nullptr) {
      metrics_->Inc("cache.result.invalidation", dropped);
      UpdateGaugesLocked();
    }
  }
  return dropped;
}

void ResultCache::RemoveLocked(std::map<std::string, Node>::iterator it) {
  bytes_ -= it->second.bytes;
  auto tb = tenant_bytes_.find(it->second.entry.tenant);
  if (tb != tenant_bytes_.end()) {
    tb->second -= it->second.bytes;
    if (tb->second == 0) tenant_bytes_.erase(tb);
  }
  auto sit = by_series_.find(it->second.series);
  if (sit != by_series_.end() && sit->second == it->first) {
    by_series_.erase(sit);
  }
  entries_.erase(it);
}

void ResultCache::EvictToBudgetLocked(size_t budget,
                                      const std::string* tenant) {
  auto over = [&]() {
    if (tenant != nullptr) {
      auto tb = tenant_bytes_.find(*tenant);
      return tb != tenant_bytes_.end() && tb->second > budget;
    }
    return bytes_ > budget;
  };
  while (over()) {
    // Scan for the least recently used candidate. The cache holds at most a
    // few hundred entries under any modeled workload; O(n) keeps the
    // determinism obvious.
    auto victim = entries_.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (tenant != nullptr && it->second.entry.tenant != *tenant) continue;
      if (it->second.last_use_seq < oldest) {
        oldest = it->second.last_use_seq;
        victim = it;
      }
    }
    if (victim == entries_.end()) return;
    RemoveLocked(victim);
    ++stats_.evictions;
    if (metrics_ != nullptr) metrics_->Inc("cache.result.eviction");
  }
}

void ResultCache::UpdateGaugesLocked() {
  if (metrics_ == nullptr) return;
  metrics_->SetGauge("cache.result.bytes", static_cast<int64_t>(bytes_));
  metrics_->SetGauge("cache.result.entries",
                     static_cast<int64_t>(entries_.size()));
  for (const auto& [tenant, bytes] : tenant_bytes_) {
    metrics_->SetGauge(
        obs::TenantMetricName(tenant, "cache.result.bytes"),
        static_cast<int64_t>(bytes));
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::tenant_bytes(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_bytes_.find(tenant);
  return it == tenant_bytes_.end() ? 0 : it->second;
}

ResultCacheOptions ResultCache::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void ResultCache::set_options(const ResultCacheOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.max_bytes != 0 && bytes_ > options_.max_bytes) {
    EvictToBudgetLocked(options_.max_bytes, nullptr);
    if (metrics_ != nullptr) UpdateGaugesLocked();
  }
}

}  // namespace fedflow::cache
