#include "cache/plan_cache.h"

#include <utility>

#include "common/strings.h"

namespace fedflow::cache {

namespace {

bool SameOptions(const plan::PlanOptions& a, const plan::PlanOptions& b) {
  return a.sequential_baseline == b.sequential_baseline &&
         a.parallelize == b.parallelize && a.reorder == b.reorder &&
         a.sink_predicates == b.sink_predicates;
}

}  // namespace

void PlanCache::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

Result<std::shared_ptr<const plan::FedPlan>> PlanCache::GetOrBuild(
    const federation::FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems, const sim::LatencyModel& model,
    const plan::PlanOptions& options) {
  const std::string key = ToUpper(spec.name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (SameOptions(it->second.options, options)) {
        ++stats_.hits;
        if (metrics_ != nullptr) metrics_->Inc("cache.plan.hit");
        return it->second.plan;
      }
      // Options drift: the resident plan was built for a different
      // registration; drop it so the entry always matches its registration.
      entries_.erase(it);
      ++stats_.invalidations;
      if (metrics_ != nullptr) metrics_->Inc("cache.plan.invalidation");
    }
    ++stats_.misses;
    if (metrics_ != nullptr) metrics_->Inc("cache.plan.miss");
  }
  // Compile outside the lock: BuildPlan can be expensive and is reentrant.
  FEDFLOW_ASSIGN_OR_RETURN(plan::FedPlan built,
                           plan::BuildPlan(spec, systems, model, options));
  auto shared = std::make_shared<const plan::FedPlan>(std::move(built));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.compiles;
  if (metrics_ != nullptr) metrics_->Inc("cache.plan.compile");
  entries_[key] = Entry{shared, options};
  return shared;
}

std::shared_ptr<const plan::FedPlan> PlanCache::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ToUpper(name));
  if (it == entries_.end()) return nullptr;
  return it->second.plan;
}

bool PlanCache::Invalidate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  bool erased = entries_.erase(ToUpper(name)) > 0;
  if (erased) {
    ++stats_.invalidations;
    if (metrics_ != nullptr) metrics_->Inc("cache.plan.invalidation");
  }
  return erased;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += static_cast<int64_t>(entries_.size());
  if (metrics_ != nullptr && !entries_.empty()) {
    metrics_->Inc("cache.plan.invalidation", entries_.size());
  }
  entries_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace fedflow::cache
