// The plan cache: one compiled + optimized FedPlan per registered federated
// function, built exactly once and shared by every consumer — the FF3xx
// plan-consistency lint, the dataflow analyses, the coupling lowerings, the
// per-call interpreters and the fedplan EXPLAIN CLI all read the same
// instance. This fixes the recompilation bug by construction: there is no
// second BuildPlan call site left on the registration or invocation path.
#ifndef FEDFLOW_CACHE_PLAN_CACHE_H_
#define FEDFLOW_CACHE_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "plan/optimizer.h"

namespace fedflow::cache {

/// Thread-safe cache of compiled federated plans, keyed by function name
/// (case-insensitive). Entries remember the PlanOptions they were built
/// with: a lookup under different options recompiles and replaces the entry
/// (counted as an invalidation), so a cached plan always matches the options
/// of the registration that produced it.
class PlanCache {
 public:
  /// Lifetime counters.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t compiles = 0;
    int64_t invalidations = 0;
  };

  /// Attaches a metrics sink (nullptr detaches; not owned). Hits, misses,
  /// compiles and invalidations are counted under "cache.plan.*".
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// The cached plan for `spec.name` under `options`, compiling it via
  /// plan::BuildPlan only on the first request (or when the cached entry was
  /// built under different options). Compilation failures are not cached.
  Result<std::shared_ptr<const plan::FedPlan>> GetOrBuild(
      const federation::FederatedFunctionSpec& spec,
      const appsys::AppSystemRegistry& systems, const sim::LatencyModel& model,
      const plan::PlanOptions& options = {});

  /// The cached plan for `name`, or null when none is resident. Never
  /// compiles; does not count as a hit or miss.
  std::shared_ptr<const plan::FedPlan> Lookup(const std::string& name) const;

  /// Drops the entry for `name`; returns whether one existed.
  bool Invalidate(const std::string& name);

  /// Drops every entry.
  void Clear();

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const plan::FedPlan> plan;
    plan::PlanOptions options;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fedflow::cache

#endif  // FEDFLOW_CACHE_PLAN_CACHE_H_
