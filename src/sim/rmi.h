// Simulated RMI channel. Arguments and results really are marshalled through
// the binary codec (as in the paper's Java-RMI prototype), and the modeled
// wire cost depends on the marshalled size.
#ifndef FEDFLOW_SIM_RMI_H_
#define FEDFLOW_SIM_RMI_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row_source.h"
#include "common/table.h"
#include "sim/latency.h"

namespace fedflow::sim {

/// A synchronous request/response channel with marshalling.
class RmiChannel {
 public:
  explicit RmiChannel(const LatencyModel* model) : model_(model) {}

  /// Server side of a call: receives the function name and unmarshalled
  /// arguments, returns the result table.
  using Handler = std::function<Result<Table>(
      const std::string& function, const std::vector<Value>& args)>;

  /// Costs of one round trip.
  struct CallCosts {
    VDuration call_us = 0;    ///< request marshal + dispatch
    VDuration return_us = 0;  ///< response marshal + unmarshal
  };

  /// Invokes `handler` "remotely": marshals `args`, unmarshals on the callee
  /// side, runs the handler, round-trips the result table the same way.
  /// Returns the reconstructed result; `costs` (optional) receives the
  /// modeled wire costs.
  Result<Table> Invoke(const std::string& function,
                       const std::vector<Value>& args, const Handler& handler,
                       CallCosts* costs) const;

  /// Receives the modeled wire cost of one response chunk as it is pulled.
  using ChunkCostFn = std::function<void(VDuration)>;

  /// Streaming variant of Invoke: the request round-trip is unchanged (the
  /// handler runs eagerly, `call_us` receives the request cost), but the
  /// response is decoded and handed to the caller in chunks of `batch_size`
  /// rows. `on_chunk` (optional) is called with each chunk's wire cost as it
  /// is pulled; chunk costs telescope over the cumulative marshalled size, so
  /// a fully drained stream charges exactly Invoke's return_us — the base
  /// cost and the response header ride on the first chunk.
  Result<RowSourcePtr> InvokeStreaming(const std::string& function,
                                       const std::vector<Value>& args,
                                       const Handler& handler,
                                       size_t batch_size, VDuration* call_us,
                                       ChunkCostFn on_chunk) const;

 private:
  const LatencyModel* model_;
};

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_RMI_H_
