// Simulated RMI channel. Arguments and results really are marshalled through
// the binary codec (as in the paper's Java-RMI prototype), and the modeled
// wire cost depends on the marshalled size. An optional FaultInjector makes
// the channel unreliable: attempts can fail transiently or permanently
// (surfaced as Status::Unavailable) or suffer latency spikes.
#ifndef FEDFLOW_SIM_RMI_H_
#define FEDFLOW_SIM_RMI_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/row_source.h"
#include "common/table.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/latency.h"

namespace fedflow::sim {

/// A synchronous request/response channel with marshalling.
class RmiChannel {
 public:
  /// `faults` (optional) is consulted once per invocation attempt; null or
  /// profile-free injectors leave the channel reliable.
  explicit RmiChannel(const LatencyModel* model,
                      FaultInjector* faults = nullptr)
      : model_(model), faults_(faults) {}

  /// Server side of a call: receives the function name and unmarshalled
  /// arguments, returns the result table.
  using Handler = std::function<Result<Table>(
      const std::string& function, const std::vector<Value>& args)>;

  /// Costs of one round trip. Failed calls still have costs: the request leg
  /// was spent before the failure, and the error response travels back over
  /// the wire like any other (its size modeled on the status message).
  struct CallCosts {
    VDuration call_us = 0;    ///< request marshal + dispatch
    VDuration return_us = 0;  ///< response (or error) marshal + unmarshal
  };

  /// Invokes `handler` "remotely": marshals `args`, unmarshals on the callee
  /// side, runs the handler, round-trips the result table the same way.
  /// Returns the reconstructed result; `costs` (optional) receives the
  /// modeled wire costs — on failure the request leg plus the error-response
  /// leg, so failed attempts are never free.
  ///
  /// `trace` (optional) activates trace-context propagation: the client call
  /// span's identity is marshalled into the request after the payload, the
  /// server side decodes it off the wire and parents its serve span (and the
  /// handler's spans) under the decoded context. Wire costs are computed on
  /// the payload size alone, so traced and untraced runs charge identical
  /// virtual time. Failed attempts stamp the span's "status" attribute with
  /// the failing Status code.
  Result<Table> Invoke(const std::string& function,
                       const std::vector<Value>& args, const Handler& handler,
                       CallCosts* costs,
                       obs::TraceSession* trace = nullptr) const;

  /// Receives the modeled wire cost of one response chunk as it is pulled.
  using ChunkCostFn = std::function<void(VDuration)>;

  /// Streaming variant of Invoke: the request round-trip is unchanged (the
  /// handler runs eagerly, `costs->call_us` receives the request cost), but
  /// the response is decoded and handed to the caller in chunks of
  /// `batch_size` rows. `on_chunk` (optional) is called with each chunk's
  /// wire cost as it is pulled; chunk costs telescope over the cumulative
  /// marshalled size, so a fully drained stream charges exactly Invoke's
  /// return_us — the base cost and the response header ride on the first
  /// chunk. On success `costs->return_us` stays 0 (the response leg arrives
  /// through on_chunk); on failure both legs are filled like Invoke's.
  Result<RowSourcePtr> InvokeStreaming(const std::string& function,
                                       const std::vector<Value>& args,
                                       const Handler& handler,
                                       size_t batch_size, CallCosts* costs,
                                       ChunkCostFn on_chunk,
                                       obs::TraceSession* trace = nullptr) const;

  /// Test seam: wraps a raw marshalled response buffer in the streaming
  /// decoder without running a handler and without charging costs. Malformed
  /// buffers (truncated rows, inflated row counts) must surface as Status
  /// from the header check or from Next(), never as UB.
  Result<RowSourcePtr> DecodeResponseBuffer(std::vector<uint8_t> buffer,
                                            size_t batch_size) const;

 private:
  const LatencyModel* model_;
  FaultInjector* faults_;
};

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_RMI_H_
