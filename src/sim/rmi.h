// Simulated RMI channel. Arguments and results really are marshalled through
// the binary codec (as in the paper's Java-RMI prototype), and the modeled
// wire cost depends on the marshalled size.
#ifndef FEDFLOW_SIM_RMI_H_
#define FEDFLOW_SIM_RMI_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/table.h"
#include "sim/latency.h"

namespace fedflow::sim {

/// A synchronous request/response channel with marshalling.
class RmiChannel {
 public:
  explicit RmiChannel(const LatencyModel* model) : model_(model) {}

  /// Server side of a call: receives the function name and unmarshalled
  /// arguments, returns the result table.
  using Handler = std::function<Result<Table>(
      const std::string& function, const std::vector<Value>& args)>;

  /// Costs of one round trip.
  struct CallCosts {
    VDuration call_us = 0;    ///< request marshal + dispatch
    VDuration return_us = 0;  ///< response marshal + unmarshal
  };

  /// Invokes `handler` "remotely": marshals `args`, unmarshals on the callee
  /// side, runs the handler, round-trips the result table the same way.
  /// Returns the reconstructed result; `costs` (optional) receives the
  /// modeled wire costs.
  Result<Table> Invoke(const std::string& function,
                       const std::vector<Value>& args, const Handler& handler,
                       CallCosts* costs) const;

 private:
  const LatencyModel* model_;
};

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_RMI_H_
