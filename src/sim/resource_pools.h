// Shared warm-resource pools: the cold/warm/hot distinction of the paper's
// §4 experiment (one global environment) generalized to a bounded pool of
// resources, each with its own warmth ledger. A WarmPool manages slots for
// one resource kind (controllers, pre-booted JVMs, connections); checking a
// slot out classifies the checkout as cold (a fresh slot had to be created),
// warm (an existing slot that never ran this function) or hot (the slot ran
// this function before). Idle slots beyond the warm target are evicted in
// LRU order — the warm-process-pool policy of FaaS runtimes (pre-boot N,
// evict LRU), applied to the paper's controller ablation.
//
// Determinism: every selection and eviction decision is ranked by a
// monotonic use-sequence counter, never by wall time, so a fixed sequence of
// Acquire/Release calls always produces the same slots, warmths and
// evictions. All operations are mutex-guarded for the threaded load-smoke
// mode.
#ifndef FEDFLOW_SIM_RESOURCE_POOLS_H_
#define FEDFLOW_SIM_RESOURCE_POOLS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "sim/system_state.h"

namespace fedflow::sim {

/// Configuration of one warm pool.
struct WarmPoolOptions {
  /// Bound on concurrently existing slots (busy + idle). Checkouts beyond
  /// the bound fail with kUnavailable until a slot is returned.
  size_t max_size = 1;

  /// Idle slots kept warm after a return; the LRU surplus is evicted.
  /// 0 means "keep every slot warm" (warm target == max_size).
  size_t warm_target = 0;

  /// Concurrent checkouts allowed per tenant; 0 = unlimited. Exhausted
  /// quotas fail the checkout with kUnavailable without touching the pool.
  size_t per_tenant_quota = 0;

  /// Create slot 1 eagerly and never evict it. The pinned slot gives
  /// single-flow callers a stable "primary" resource whose ledger behaves
  /// exactly like the legacy global SystemState.
  bool pin_first_slot = true;
};

/// A bounded pool of warm slots for one resource kind.
class WarmPool {
 public:
  /// Result of one checkout.
  struct Checkout {
    uint64_t slot = 0;
    /// Warmth the affinity function experiences on this slot: kCold when the
    /// slot was just created, else the slot ledger's QueryWarmth verdict.
    SystemState::Warmth warmth = SystemState::Warmth::kHot;
    /// True when the checkout had to create a fresh slot.
    bool created = false;
    /// The slot's warmth ledger, exclusively leased until Release. Stable
    /// address for the lifetime of the slot.
    SystemState* ledger = nullptr;
  };

  /// Lifetime counters (monotonic; survive Reboot).
  struct Stats {
    int64_t cold_checkouts = 0;
    int64_t warm_checkouts = 0;
    int64_t hot_checkouts = 0;
    int64_t created = 0;
    int64_t evicted = 0;
    int64_t quota_rejections = 0;
    int64_t exhausted_rejections = 0;
    int64_t returns = 0;
  };

  explicit WarmPool(std::string name, WarmPoolOptions options = {});

  /// Checks a slot out for `tenant`. Preference order: an idle slot already
  /// hot for `affinity` (most recently used first), else the most recently
  /// used idle slot (best warmth), else a fresh slot while under max_size.
  /// Fails with kUnavailable when the tenant quota or the pool is exhausted.
  Result<Checkout> Acquire(const std::string& tenant,
                           const std::string& affinity);

  /// Returns `slot` to the idle set (most-recently-used position) and trims
  /// idle slots beyond the warm target, least recently used first. Returns
  /// the ids of evicted slots so owners of per-slot payloads (e.g. the
  /// ControllerPool's Controller instances) can destroy them.
  std::vector<uint64_t> Release(uint64_t slot);

  /// Ledger of a live slot; null for unknown/evicted slots.
  SystemState* ledger(uint64_t slot);

  /// Drops every non-pinned idle slot and boots the pinned slot's ledger
  /// (everything cold), mirroring a full environment reboot. Requires no
  /// outstanding checkouts. Returns evicted slot ids.
  std::vector<uint64_t> Reboot();

  /// Attaches `metrics` (nullptr detaches): slot ledgers count warmth
  /// transitions, the pool counts checkouts/evictions/rejections under
  /// "pool.<name>.*" and keeps "pool.<name>.{size,idle,in_use}" gauges.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Replaces the pool limits. Takes effect on subsequent Acquire/Release
  /// calls; existing slots are not evicted until the next Release.
  void set_options(const WarmPoolOptions& options);
  WarmPoolOptions options() const;

  const std::string& name() const { return name_; }
  size_t size() const;
  size_t idle() const;
  size_t in_use() const;
  Stats stats() const;

  /// Id of the pinned slot (0 when pin_first_slot is false).
  uint64_t pinned_slot() const;

 private:
  struct Slot {
    SystemState ledger;
    bool busy = false;
    bool pinned = false;
    std::string tenant;
    uint64_t last_use_seq = 0;
  };

  uint64_t CreateSlotLocked();
  void UpdateGaugesLocked();
  size_t IdleCountLocked() const;

  std::string name_;
  WarmPoolOptions options_;
  mutable std::mutex mu_;
  std::map<uint64_t, Slot> slots_;  // node-stable: ledger addresses survive
  std::map<std::string, size_t> tenant_in_use_;
  uint64_t next_slot_id_ = 1;
  uint64_t use_seq_ = 0;
  uint64_t pinned_slot_ = 0;
  Stats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Named registry of warm pools — the shared half of the single-flow →
/// pooled-resources split (the per-invocation half is FlowState). One
/// integration deployment owns one ResourcePools; the conventional pool
/// names are "controller", "jvm" and "connection".
class ResourcePools {
 public:
  /// The pool named `name`, created with `options` on first use. Options of
  /// an existing pool are left untouched.
  WarmPool* GetOrCreate(const std::string& name,
                        const WarmPoolOptions& options = {});

  /// The pool named `name`, or null.
  WarmPool* Get(const std::string& name);

  /// Attaches `metrics` to every current and future pool.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  /// Names of existing pools (sorted).
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<WarmPool>> pools_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_RESOURCE_POOLS_H_
