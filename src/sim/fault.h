// Deterministic fault injection and retry policies for the simulated
// integration environment. A seeded FaultInjector decides, per target
// function, whether an invocation fails transiently, fails permanently, or
// suffers a latency spike; the RmiChannel (and the WfMS program invoker,
// whose local calls bypass RMI) consult it on every attempt. A RetryPolicy
// describes how couplings react: bounded attempts with exponential backoff
// charged to the virtual clock, under an optional per-call deadline.
//
// Everything is driven by common/rng.h SplitMix64 streams, one stream per
// target function (seeded from the injector seed and an FNV-1a hash of the
// function name), so outcomes do not depend on thread scheduling as long as
// each function's attempts happen in a deterministic order.
#ifndef FEDFLOW_SIM_FAULT_H_
#define FEDFLOW_SIM_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/vclock.h"
#include "obs/metrics.h"

namespace fedflow::sim {

namespace steps {
/// Breakdown step charged for virtual time spent waiting between retry
/// attempts (lives next to the Fig. 6 labels in latency.h).
inline constexpr char kRetryBackoff[] = "Retry backoff";
}  // namespace steps

/// Failure behaviour of one target function. All probabilities are per
/// attempt and drawn from the function's private RNG stream.
struct FaultProfile {
  double transient_failure_rate = 0.0;  ///< P(attempt fails retriably)
  bool permanent_outage = false;        ///< every attempt fails
  double latency_spike_rate = 0.0;      ///< P(attempt is slowed)
  VDuration latency_spike_us = 0;       ///< extra latency when spiked
};

/// Seeded, thread-safe source of injected faults. Without profiles (or with
/// all-zero profiles) every consultation is a no-op decision, so a wired-in
/// injector leaves fault-free runs bit-identical. Also counts attempts per
/// function, which is how the benches measure redundant re-execution.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  enum class Fault {
    kNone,       ///< proceed normally
    kTransient,  ///< fail this attempt with Status::Unavailable (retriable)
    kPermanent,  ///< target is down; every attempt fails
  };

  /// Outcome of one consultation. extra_latency_us applies to the attempt
  /// regardless of fault (a spiked request can still fail in flight).
  struct Decision {
    Fault fault = Fault::kNone;
    VDuration extra_latency_us = 0;
  };

  /// Installs (or replaces) the profile of `function`. Case-insensitive on
  /// the function name, like the rest of the federation layer.
  void SetProfile(const std::string& function, FaultProfile profile);

  /// Queues exactly `count` forced transient failures for the next `count`
  /// attempts against `function` (consumed before any probability draw).
  /// This is the deterministic hook used by tests: no RNG involved.
  void InjectTransientFailures(const std::string& function, int count);

  /// Removes all profiles and queued failures; counters survive.
  void ClearProfiles();

  /// Called once per invocation attempt against `function`. Records the
  /// attempt and decides the attempt's fate.
  Decision Consult(const std::string& function);

  /// Attempts observed against `function` (including failed ones).
  int64_t attempts(const std::string& function) const;

  /// Faults this injector has inflicted on `function`.
  int64_t injected_failures(const std::string& function) const;

  /// Attempts observed across all functions.
  int64_t total_attempts() const;

  void ResetCounters();

 private:
  struct Target {
    explicit Target(uint64_t stream_seed) : rng(stream_seed) {}
    FaultProfile profile;
    Rng rng;  ///< private stream: immune to cross-function attempt order
    int forced_transient = 0;
    int64_t attempts = 0;
    int64_t injected = 0;
  };

  Target& TargetFor(const std::string& function);  // callers hold mu_

  uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, Target> targets_;
};

/// How a coupling retries retriable failures. The default policy performs a
/// single attempt (retries disabled), so default-constructed wiring changes
/// nothing.
struct RetryPolicy {
  int max_attempts = 1;              ///< total attempts; 1 = no retries
  VDuration initial_backoff_us = 1000;  ///< wait before the 2nd attempt
  int backoff_multiplier = 2;        ///< exponential growth factor
  VDuration max_backoff_us = 32000;  ///< backoff cap
  VDuration deadline_us = 0;         ///< per-call budget; 0 = unbounded

  bool enabled() const { return max_attempts > 1; }

  /// Backoff charged before attempt number `attempt` (2-based; attempt 2
  /// waits initial_backoff_us, each further attempt multiplies, capped).
  VDuration BackoffBefore(int attempt) const;
};

/// True for failures a retry may fix (currently: kUnavailable).
bool IsRetriable(const Status& status);

/// Drives one retry loop over virtual time: tracks the attempt count and the
/// call's virtual start time, charges backoff under steps::kRetryBackoff,
/// and converts an exhausted deadline into Status::DeadlineExceeded.
class RetryLoop {
 public:
  /// Either pointer may be null (null policy = retries disabled; null clock
  /// = backoff uncharged, deadline unenforced). `metrics` (optional) counts
  /// retries under "retry.count" / "retry.<label>" and exhausted deadlines
  /// under "retry.deadline_exceeded".
  RetryLoop(const RetryPolicy* policy, SimClock* clock,
            obs::MetricsRegistry* metrics = nullptr, std::string label = "")
      : policy_(policy),
        clock_(clock),
        metrics_(metrics),
        label_(std::move(label)),
        start_(clock ? clock->now() : 0) {}

  /// True when `status` is retriable and attempts remain.
  bool ShouldRetry(const Status& status) const;

  /// Charges the backoff preceding the next attempt. Returns
  /// DeadlineExceeded (without charging) when the wait would overrun the
  /// per-call deadline. Call only after ShouldRetry returned true.
  Status Backoff();

  /// Attempts performed so far (1 after the first try).
  int attempt() const { return attempt_; }

 private:
  const RetryPolicy* policy_;
  SimClock* clock_;
  obs::MetricsRegistry* metrics_;
  std::string label_;
  int attempt_ = 1;
  VTime start_;
};

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_FAULT_H_
