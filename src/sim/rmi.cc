#include "sim/rmi.h"

#include <memory>
#include <utility>

#include "common/codec.h"

namespace fedflow::sim {

namespace {

/// Decodes a marshalled response buffer chunk by chunk. `prefix_[i]` is the
/// cumulative buffer size after encoding row i; charging
/// MarshalCost(new cursor) - MarshalCost(old cursor) per chunk makes the
/// total exactly equal the one-shot MarshalCost of the whole buffer, integer
/// division notwithstanding.
class ResponseStreamSource : public RowSource {
 public:
  ResponseStreamSource(std::vector<uint8_t> buffer, Schema schema,
                       size_t num_rows, std::vector<size_t> prefix,
                       size_t header_bytes, size_t batch_size,
                       const LatencyModel* model,
                       RmiChannel::ChunkCostFn on_chunk)
      : buffer_(std::move(buffer)),
        schema_(std::move(schema)),
        num_rows_(num_rows),
        prefix_(std::move(prefix)),
        header_bytes_(header_bytes),
        batch_size_(batch_size),
        model_(model),
        on_chunk_(std::move(on_chunk)),
        reader_(buffer_) {
    // Skip the header; the factory already validated it decodes.
    (void)reader_.GetSchema();
    (void)reader_.GetU32();
  }

  const Schema& schema() const override { return schema_; }

  Result<RowBatch> Next() override {
    RowBatch batch;
    const size_t take = std::min(batch_size_, num_rows_ - next_row_);
    batch.rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      FEDFLOW_ASSIGN_OR_RETURN(Row row, reader_.GetRow());
      batch.rows.push_back(std::move(row));
    }
    ChargeChunk(next_row_ + take);
    return batch;
  }

  /// Columnar variant: decodes the same chunk (the wire format is row-major)
  /// straight into a column batch. Virtual-time charges are identical to
  /// Next() — the chunk boundary, not the batch layout, determines the cost.
  Result<ColumnBatch> NextColumns() override {
    const size_t take = std::min(batch_size_, num_rows_ - next_row_);
    std::vector<Row> rows;
    rows.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      FEDFLOW_ASSIGN_OR_RETURN(Row row, reader_.GetRow());
      rows.push_back(std::move(row));
    }
    ChargeChunk(next_row_ + take);
    return ColumnBatch::FromRows(schema_, std::move(rows));
  }

  std::optional<size_t> SizeHint() const override {
    return num_rows_ - next_row_;
  }

 private:
  /// Advances the cursor to `end_row` and charges the marshalling cost of
  /// the newly decoded bytes (plus the one-time return base).
  void ChargeChunk(size_t end_row) {
    next_row_ = end_row;
    if (!on_chunk_) return;
    const size_t cum = end_row == 0 ? header_bytes_ : prefix_[end_row - 1];
    VDuration cost =
        model_->MarshalCost(cum) - model_->MarshalCost(charged_bytes_);
    if (!charged_base_) {
      cost += model_->rmi_return_base_us;
      charged_base_ = true;
    }
    charged_bytes_ = cum;
    if (cost > 0) on_chunk_(cost);
  }

  std::vector<uint8_t> buffer_;
  Schema schema_;
  size_t num_rows_;
  std::vector<size_t> prefix_;
  size_t header_bytes_;
  size_t batch_size_;
  const LatencyModel* model_;
  RmiChannel::ChunkCostFn on_chunk_;
  ByteReader reader_;
  size_t next_row_ = 0;
  size_t charged_bytes_ = 0;
  bool charged_base_ = false;
};

/// Status returned for an injected fault.
Status InjectedStatus(FaultInjector::Fault fault, const std::string& function) {
  switch (fault) {
    case FaultInjector::Fault::kNone:
      return Status::Internal("rmi: no fault to report");
    case FaultInjector::Fault::kTransient:
      return Status::Unavailable("rmi: transient failure invoking " +
                                 function);
    case FaultInjector::Fault::kPermanent:
      return Status::Unavailable("rmi: " + function +
                                 " is down (permanent outage)");
  }
  return Status::Internal("rmi: bad fault kind");
}

/// A failed call still spent the request leg, and the error response rides
/// back over the wire like any other (sized on the status message).
void FillFailureCosts(const LatencyModel* model, VDuration request_us,
                      const Status& failure, RmiChannel::CallCosts* costs) {
  if (costs == nullptr) return;
  costs->call_us = request_us;
  costs->return_us =
      model->rmi_return_base_us + model->MarshalCost(failure.message().size());
}

/// Opens and ends the client/server spans of one RMI attempt. Both spans end
/// at the session clock's time when the guard leaves scope, and a non-OK
/// outcome stamps each span's "status" attribute with the failing code —
/// kUnavailable/kDeadlineExceeded legs show up in traces instead of being
/// silently absent.
class RmiSpanGuard {
 public:
  explicit RmiSpanGuard(obs::TraceSession* trace)
      : trace_(trace != nullptr && trace->active() ? trace : nullptr) {}

  ~RmiSpanGuard() {
    if (trace_ == nullptr) return;
    if (server_ != 0) {
      trace_->Pop();
      if (!status_.ok()) trace_->tracer()->SetStatus(server_, status_);
      trace_->tracer()->EndSpan(server_, Now());
    }
    if (client_ != 0) {
      if (!status_.ok()) trace_->tracer()->SetStatus(client_, status_);
      trace_->tracer()->EndSpan(client_, Now());
    }
  }

  RmiSpanGuard(const RmiSpanGuard&) = delete;
  RmiSpanGuard& operator=(const RmiSpanGuard&) = delete;

  /// Opens the client-side call span and appends its propagated context to
  /// the marshalled request. Must run after the payload is fully written:
  /// wire costs are computed on the payload size alone, so the context rides
  /// out-of-band (the shape of a traceparent header) and traced runs charge
  /// exactly what untraced runs charge.
  void OpenClient(const std::string& function, bool streaming,
                  ByteWriter& request) {
    if (trace_ == nullptr) return;
    client_ = trace_->tracer()->StartSpan("rmi:" + function, obs::Layer::kRmi,
                                          trace_->current(), Now());
    if (streaming) {
      trace_->tracer()->SetAttribute(client_, "streaming", "true");
    }
    obs::TraceContext ctx = trace_->tracer()->ContextOf(client_);
    request.PutI64(static_cast<int64_t>(ctx.trace_id));
    request.PutI64(static_cast<int64_t>(ctx.span_id));
  }

  /// Opens the server-side serve span under the context decoded off the
  /// wire and makes it the session's current span while the handler runs —
  /// handler-side spans (workflow activities, local functions) parent under
  /// the serve span, which parents under the client call via propagation.
  void OpenServer(const std::string& function, const obs::TraceContext& ctx) {
    if (trace_ == nullptr) return;
    server_ = trace_->tracer()->StartRemoteSpan("serve:" + function,
                                                obs::Layer::kRmi, ctx, Now());
    if (server_ != 0) trace_->Push(server_);
  }

  void AddClientEvent(const std::string& name, const std::string& detail) {
    if (trace_ != nullptr && client_ != 0) {
      trace_->tracer()->AddEvent(client_, Now(), name, detail);
    }
  }

  void set_status(const Status& status) { status_ = status; }

 private:
  VTime Now() const {
    return trace_->clock() != nullptr ? trace_->clock()->now() : 0;
  }

  obs::TraceSession* trace_;
  obs::SpanId client_ = 0;
  obs::SpanId server_ = 0;
  Status status_;
};

/// The request leg + handler execution shared by Invoke and InvokeStreaming:
/// marshal, decode on the callee side (including any propagated trace
/// context), consult the fault injector, run the handler under the server
/// span. `request_us_out` receives the modeled request-leg cost.
Result<Table> ServeAttempt(const LatencyModel* model, FaultInjector* faults,
                           const std::string& function,
                           const std::vector<Value>& args,
                           const RmiChannel::Handler& handler, bool streaming,
                           RmiChannel::CallCosts* costs, RmiSpanGuard& guard,
                           VDuration* request_us_out) {
  ByteWriter request;
  request.PutString(function);
  request.PutRow(args);
  const size_t payload_bytes = request.size();
  guard.OpenClient(function, streaming, request);

  // Unmarshal on the callee side.
  ByteReader reader(request.buffer());
  FEDFLOW_ASSIGN_OR_RETURN(std::string remote_fn, reader.GetString());
  FEDFLOW_ASSIGN_OR_RETURN(Row remote_args, reader.GetRow());
  obs::TraceContext wire_ctx;
  if (!reader.AtEnd()) {
    FEDFLOW_ASSIGN_OR_RETURN(int64_t trace_id, reader.GetI64());
    FEDFLOW_ASSIGN_OR_RETURN(int64_t span_id, reader.GetI64());
    wire_ctx.trace_id = static_cast<uint64_t>(trace_id);
    wire_ctx.span_id = static_cast<obs::SpanId>(span_id);
  }
  if (!reader.AtEnd()) {
    return Status::Internal("rmi: trailing request bytes");
  }

  VDuration request_us =
      model->rmi_call_base_us + model->MarshalCost(payload_bytes);
  FaultInjector::Decision decision;
  if (faults != nullptr) decision = faults->Consult(function);
  request_us += decision.extra_latency_us;
  *request_us_out = request_us;
  if (decision.extra_latency_us > 0) {
    guard.AddClientEvent("latency spike",
                         std::to_string(decision.extra_latency_us) + " us");
  }
  if (decision.fault != FaultInjector::Fault::kNone) {
    Status failure = InjectedStatus(decision.fault, function);
    guard.AddClientEvent("fault injected", failure.message());
    guard.set_status(failure);
    FillFailureCosts(model, request_us, failure, costs);
    return failure;
  }

  guard.OpenServer(remote_fn, wire_ctx);
  Result<Table> result = handler(remote_fn, remote_args);
  if (!result.ok()) {
    guard.set_status(result.status());
    FillFailureCosts(model, request_us, result.status(), costs);
  }
  return result;
}

}  // namespace

Result<Table> RmiChannel::Invoke(const std::string& function,
                                 const std::vector<Value>& args,
                                 const Handler& handler, CallCosts* costs,
                                 obs::TraceSession* trace) const {
  RmiSpanGuard guard(trace);
  VDuration request_us = 0;
  FEDFLOW_ASSIGN_OR_RETURN(
      Table result, ServeAttempt(model_, faults_, function, args, handler,
                                 /*streaming=*/false, costs, guard,
                                 &request_us));

  // Marshal the response and unmarshal it on the caller side.
  ByteWriter response;
  response.PutTable(result);
  ByteReader response_reader(response.buffer());
  FEDFLOW_ASSIGN_OR_RETURN(Table reconstructed, response_reader.GetTable());

  if (costs != nullptr) {
    costs->call_us = request_us;
    costs->return_us =
        model_->rmi_return_base_us + model_->MarshalCost(response.size());
  }
  return reconstructed;
}

Result<RowSourcePtr> RmiChannel::InvokeStreaming(
    const std::string& function, const std::vector<Value>& args,
    const Handler& handler, size_t batch_size, CallCosts* costs,
    ChunkCostFn on_chunk, obs::TraceSession* trace) const {
  RmiSpanGuard guard(trace);
  VDuration request_us = 0;
  FEDFLOW_ASSIGN_OR_RETURN(
      Table result, ServeAttempt(model_, faults_, function, args, handler,
                                 /*streaming=*/true, costs, guard,
                                 &request_us));

  if (costs != nullptr) {
    costs->call_us = request_us;
    costs->return_us = 0;  // the response leg arrives through on_chunk
  }

  // Marshal the response exactly as PutTable would (same byte layout, so the
  // total wire size equals the non-streaming path's), recording the buffer
  // size at every row boundary for the per-chunk cost telescope.
  ByteWriter response;
  response.PutSchema(result.schema());
  response.PutU32(static_cast<uint32_t>(result.num_rows()));
  const size_t header_bytes = response.size();
  std::vector<size_t> prefix;
  prefix.reserve(result.num_rows());
  for (const Row& row : result.rows()) {
    response.PutRow(row);
    prefix.push_back(response.size());
  }

  // Validate the header decodes before handing out the stream.
  ByteReader check(response.buffer());
  FEDFLOW_ASSIGN_OR_RETURN(Schema schema, check.GetSchema());
  FEDFLOW_ASSIGN_OR_RETURN(uint32_t num_rows, check.GetU32());

  std::vector<uint8_t> buffer = response.buffer();
  return RowSourcePtr(new ResponseStreamSource(
      std::move(buffer), std::move(schema), num_rows, std::move(prefix),
      header_bytes, batch_size, model_, std::move(on_chunk)));
}

Result<RowSourcePtr> RmiChannel::DecodeResponseBuffer(
    std::vector<uint8_t> buffer, size_t batch_size) const {
  ByteReader check(buffer);
  FEDFLOW_ASSIGN_OR_RETURN(Schema schema, check.GetSchema());
  FEDFLOW_ASSIGN_OR_RETURN(uint32_t num_rows, check.GetU32());
  // No cost callback: the prefix sums only feed chunk-cost accounting.
  return RowSourcePtr(new ResponseStreamSource(std::move(buffer),
                                               std::move(schema), num_rows, {},
                                               0, batch_size, model_, nullptr));
}

}  // namespace fedflow::sim
