#include "sim/rmi.h"

#include "common/codec.h"

namespace fedflow::sim {

Result<Table> RmiChannel::Invoke(const std::string& function,
                                 const std::vector<Value>& args,
                                 const Handler& handler,
                                 CallCosts* costs) const {
  // Marshal the request.
  ByteWriter request;
  request.PutString(function);
  request.PutRow(args);

  // Unmarshal on the callee side.
  ByteReader reader(request.buffer());
  FEDFLOW_ASSIGN_OR_RETURN(std::string remote_fn, reader.GetString());
  FEDFLOW_ASSIGN_OR_RETURN(Row remote_args, reader.GetRow());
  if (!reader.AtEnd()) {
    return Status::Internal("rmi: trailing request bytes");
  }

  FEDFLOW_ASSIGN_OR_RETURN(Table result, handler(remote_fn, remote_args));

  // Marshal the response and unmarshal it on the caller side.
  ByteWriter response;
  response.PutTable(result);
  ByteReader response_reader(response.buffer());
  FEDFLOW_ASSIGN_OR_RETURN(Table reconstructed, response_reader.GetTable());

  if (costs != nullptr) {
    costs->call_us =
        model_->rmi_call_base_us + model_->MarshalCost(request.size());
    costs->return_us =
        model_->rmi_return_base_us + model_->MarshalCost(response.size());
  }
  return reconstructed;
}

}  // namespace fedflow::sim
