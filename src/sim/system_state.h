// Boot / warm-up state of the integration server, driving the paper's
// cold / warm / hot measurements (§4: "right after the entire system has been
// booted, after some other function has been invoked, and after the same
// function has been processed").
#ifndef FEDFLOW_SIM_SYSTEM_STATE_H_
#define FEDFLOW_SIM_SYSTEM_STATE_H_

#include <set>
#include <string>

#include "common/strings.h"
#include "obs/metrics.h"

namespace fedflow::sim {

/// Tracks which parts of the stack are warm.
class SystemState {
 public:
  /// Call temperature for a federated function.
  enum class Warmth {
    kCold,  ///< first call since boot: all processes/connections cold
    kWarm,  ///< infrastructure warm, but this function runs for the first time
    kHot,   ///< this function has run before: everything cached
  };

  /// Attaches a metrics sink (or detaches with nullptr; not owned). Boots
  /// and warmth transitions are counted under "warmth.*".
  void AttachMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// (Re)boots the system: everything becomes cold.
  void Boot() {
    infrastructure_warm_ = false;
    warm_functions_.clear();
    if (metrics_ != nullptr) metrics_->Inc("warmth.boot");
  }

  /// Warmth the next call of `function` will experience.
  Warmth QueryWarmth(const std::string& function) const {
    if (!infrastructure_warm_) return Warmth::kCold;
    if (warm_functions_.count(ToUpper(function)) > 0) return Warmth::kHot;
    return Warmth::kWarm;
  }

  /// Records a completed call of `function`, counting the warmth transition
  /// it causes: cold → infrastructure warms ("warmth.to_warm"), first run of
  /// a function → it becomes hot ("warmth.to_hot"), hot → stays hot (no
  /// transition counted).
  void MarkRun(const std::string& function) {
    if (metrics_ != nullptr) {
      if (!infrastructure_warm_) metrics_->Inc("warmth.to_warm");
      if (warm_functions_.count(ToUpper(function)) == 0) {
        metrics_->Inc("warmth.to_hot");
      }
    }
    infrastructure_warm_ = true;
    warm_functions_.insert(ToUpper(function));
  }

  bool infrastructure_warm() const { return infrastructure_warm_; }

 private:
  bool infrastructure_warm_ = false;
  std::set<std::string> warm_functions_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Stable name of a warmth level ("cold"/"warm"/"hot").
inline const char* WarmthName(SystemState::Warmth w) {
  switch (w) {
    case SystemState::Warmth::kCold:
      return "cold";
    case SystemState::Warmth::kWarm:
      return "warm";
    case SystemState::Warmth::kHot:
      return "hot";
  }
  return "?";
}

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_SYSTEM_STATE_H_
