#include "sim/fault.h"

#include "common/strings.h"

namespace fedflow::sim {

namespace {

// FNV-1a over the upper-cased name: platform-independent (std::hash is not),
// so the per-function RNG streams are the same on every machine.
uint64_t NameHash(const std::string& upper) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : upper) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::Target& FaultInjector::TargetFor(const std::string& function) {
  std::string key = ToUpper(function);
  auto it = targets_.find(key);
  if (it == targets_.end()) {
    it = targets_.emplace(key, Target(seed_ ^ NameHash(key))).first;
  }
  return it->second;
}

void FaultInjector::SetProfile(const std::string& function,
                               FaultProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  TargetFor(function).profile = profile;
}

void FaultInjector::InjectTransientFailures(const std::string& function,
                                            int count) {
  std::lock_guard<std::mutex> lock(mu_);
  TargetFor(function).forced_transient += count;
}

void FaultInjector::ClearProfiles() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, target] : targets_) {
    target.profile = FaultProfile{};
    target.forced_transient = 0;
  }
}

FaultInjector::Decision FaultInjector::Consult(const std::string& function) {
  std::lock_guard<std::mutex> lock(mu_);
  Target& target = TargetFor(function);
  ++target.attempts;
  Decision decision;
  if (target.forced_transient > 0) {
    --target.forced_transient;
    ++target.injected;
    decision.fault = Fault::kTransient;
    return decision;
  }
  const FaultProfile& p = target.profile;
  if (p.permanent_outage) {
    ++target.injected;
    decision.fault = Fault::kPermanent;
    return decision;
  }
  // One draw per configured hazard, in a fixed order, so a given attempt
  // number always consumes the same slice of the function's stream.
  if (p.transient_failure_rate > 0.0 &&
      target.rng.Chance(p.transient_failure_rate)) {
    ++target.injected;
    decision.fault = Fault::kTransient;
  }
  if (p.latency_spike_rate > 0.0 && target.rng.Chance(p.latency_spike_rate)) {
    decision.extra_latency_us = p.latency_spike_us;
  }
  return decision;
}

int64_t FaultInjector::attempts(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = targets_.find(ToUpper(function));
  return it == targets_.end() ? 0 : it->second.attempts;
}

int64_t FaultInjector::injected_failures(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = targets_.find(ToUpper(function));
  return it == targets_.end() ? 0 : it->second.injected;
}

int64_t FaultInjector::total_attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [key, target] : targets_) total += target.attempts;
  return total;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, target] : targets_) {
    target.attempts = 0;
    target.injected = 0;
  }
}

VDuration RetryPolicy::BackoffBefore(int attempt) const {
  if (attempt <= 1) return 0;
  VDuration backoff = initial_backoff_us;
  for (int i = 2; i < attempt; ++i) {
    backoff *= backoff_multiplier;
    if (backoff >= max_backoff_us) break;
  }
  if (backoff > max_backoff_us) backoff = max_backoff_us;
  return backoff;
}

bool IsRetriable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

bool RetryLoop::ShouldRetry(const Status& status) const {
  if (status.ok() || !IsRetriable(status)) return false;
  if (policy_ == nullptr) return false;
  return attempt_ < policy_->max_attempts;
}

Status RetryLoop::Backoff() {
  ++attempt_;
  VDuration backoff = policy_ ? policy_->BackoffBefore(attempt_) : 0;
  if (clock_ != nullptr) {
    if (policy_ != nullptr && policy_->deadline_us > 0 &&
        clock_->now() + backoff - start_ > policy_->deadline_us) {
      if (metrics_ != nullptr) metrics_->Inc("retry.deadline_exceeded");
      return Status::DeadlineExceeded(
          "call exceeded its retry deadline after " +
          std::to_string(attempt_ - 1) + " attempt(s)");
    }
    if (backoff > 0) clock_->Charge(steps::kRetryBackoff, backoff);
  }
  if (metrics_ != nullptr) {
    metrics_->Inc("retry.count");
    if (!label_.empty()) metrics_->Inc("retry." + label_);
  }
  return Status::OK();
}

}  // namespace fedflow::sim
