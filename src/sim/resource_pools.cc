#include "sim/resource_pools.h"

#include <utility>

namespace fedflow::sim {

namespace {

// Effective warm target: option 0 means "keep everything".
size_t EffectiveWarmTarget(const WarmPoolOptions& options) {
  if (options.warm_target == 0) return options.max_size;
  return options.warm_target < options.max_size ? options.warm_target
                                                : options.max_size;
}

}  // namespace

WarmPool::WarmPool(std::string name, WarmPoolOptions options)
    : name_(std::move(name)), options_(options) {
  std::lock_guard<std::mutex> lock(mu_);
  // Eager creation of the pinned slot is plumbing, not a checkout, so it is
  // not counted in stats_.created.
  if (options_.pin_first_slot) {
    pinned_slot_ = CreateSlotLocked();
    slots_[pinned_slot_].pinned = true;
  }
}

Result<WarmPool::Checkout> WarmPool::Acquire(const std::string& tenant,
                                             const std::string& affinity) {
  std::lock_guard<std::mutex> lock(mu_);

  if (options_.per_tenant_quota > 0) {
    auto it = tenant_in_use_.find(tenant);
    if (it != tenant_in_use_.end() && it->second >= options_.per_tenant_quota) {
      ++stats_.quota_rejections;
      if (metrics_ != nullptr) {
        metrics_->Inc("pool." + name_ + ".quota_rejected");
      }
      return Status::Unavailable("pool '" + name_ + "': tenant '" + tenant +
                                 "' exhausted its quota of " +
                                 std::to_string(options_.per_tenant_quota));
    }
  }

  // Prefer an idle slot already hot for the affinity function (MRU first so
  // repeated single-flow use keeps hitting the same slot), else the MRU idle
  // slot outright — most recent use is the best warmth proxy we have.
  uint64_t best_hot = 0, best_idle = 0;
  uint64_t best_hot_seq = 0, best_idle_seq = 0;
  for (const auto& [id, slot] : slots_) {
    if (slot.busy) continue;
    if (best_idle == 0 || slot.last_use_seq >= best_idle_seq) {
      best_idle = id;
      best_idle_seq = slot.last_use_seq;
    }
    if (!affinity.empty() &&
        slot.ledger.QueryWarmth(affinity) == SystemState::Warmth::kHot &&
        (best_hot == 0 || slot.last_use_seq >= best_hot_seq)) {
      best_hot = id;
      best_hot_seq = slot.last_use_seq;
    }
  }

  Checkout out;
  uint64_t chosen = best_hot != 0 ? best_hot : best_idle;
  if (chosen == 0) {
    if (slots_.size() >= options_.max_size) {
      ++stats_.exhausted_rejections;
      if (metrics_ != nullptr) {
        metrics_->Inc("pool." + name_ + ".exhausted");
      }
      return Status::Unavailable(
          "pool '" + name_ + "' exhausted (" +
          std::to_string(slots_.size()) + "/" +
          std::to_string(options_.max_size) + " slots busy)");
    }
    chosen = CreateSlotLocked();
    out.created = true;
    ++stats_.created;
    if (metrics_ != nullptr) metrics_->Inc("pool." + name_ + ".created");
  }

  Slot& slot = slots_[chosen];
  out.slot = chosen;
  out.ledger = &slot.ledger;
  out.warmth = out.created ? SystemState::Warmth::kCold
                           : slot.ledger.QueryWarmth(affinity);
  slot.busy = true;
  slot.tenant = tenant;
  slot.last_use_seq = ++use_seq_;
  ++tenant_in_use_[tenant];

  switch (out.warmth) {
    case SystemState::Warmth::kCold:
      ++stats_.cold_checkouts;
      break;
    case SystemState::Warmth::kWarm:
      ++stats_.warm_checkouts;
      break;
    case SystemState::Warmth::kHot:
      ++stats_.hot_checkouts;
      break;
  }
  if (metrics_ != nullptr) {
    metrics_->Inc("pool." + name_ + ".checkout." + WarmthName(out.warmth));
    UpdateGaugesLocked();
  }
  return out;
}

std::vector<uint64_t> WarmPool::Release(uint64_t slot_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> evicted;
  auto it = slots_.find(slot_id);
  if (it == slots_.end() || !it->second.busy) return evicted;

  Slot& slot = it->second;
  slot.busy = false;
  slot.last_use_seq = ++use_seq_;
  auto tenant_it = tenant_in_use_.find(slot.tenant);
  if (tenant_it != tenant_in_use_.end() && tenant_it->second > 0) {
    if (--tenant_it->second == 0) tenant_in_use_.erase(tenant_it);
  }
  slot.tenant.clear();
  ++stats_.returns;

  // Trim idle slots beyond the warm target, coldest (LRU) first.
  const size_t warm_target = EffectiveWarmTarget(options_);
  while (IdleCountLocked() > warm_target) {
    uint64_t lru = 0;
    uint64_t lru_seq = 0;
    for (const auto& [id, s] : slots_) {
      if (s.busy || s.pinned) continue;
      if (lru == 0 || s.last_use_seq < lru_seq) {
        lru = id;
        lru_seq = s.last_use_seq;
      }
    }
    if (lru == 0) break;  // only pinned/busy slots remain
    slots_.erase(lru);
    evicted.push_back(lru);
    ++stats_.evicted;
    if (metrics_ != nullptr) metrics_->Inc("pool." + name_ + ".evicted");
  }

  if (metrics_ != nullptr) UpdateGaugesLocked();
  return evicted;
}

SystemState* WarmPool::ledger(uint64_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : &it->second.ledger;
}

std::vector<uint64_t> WarmPool::Reboot() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> evicted;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.busy) {
      ++it;
      continue;
    }
    if (it->second.pinned) {
      it->second.ledger.Boot();
      ++it;
      continue;
    }
    evicted.push_back(it->first);
    ++stats_.evicted;
    it = slots_.erase(it);
  }
  if (metrics_ != nullptr) UpdateGaugesLocked();
  return evicted;
}

void WarmPool::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  for (auto& [id, slot] : slots_) slot.ledger.AttachMetrics(metrics);
  if (metrics_ != nullptr) UpdateGaugesLocked();
}

void WarmPool::set_options(const WarmPoolOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
}

WarmPoolOptions WarmPool::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

size_t WarmPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

size_t WarmPool::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return IdleCountLocked();
}

size_t WarmPool::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size() - IdleCountLocked();
}

WarmPool::Stats WarmPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t WarmPool::pinned_slot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_slot_;
}

uint64_t WarmPool::CreateSlotLocked() {
  uint64_t id = next_slot_id_++;
  Slot& slot = slots_[id];
  slot.ledger.AttachMetrics(metrics_);
  slot.last_use_seq = ++use_seq_;
  return id;
}

void WarmPool::UpdateGaugesLocked() {
  const size_t idle = IdleCountLocked();
  metrics_->SetGauge("pool." + name_ + ".size",
                     static_cast<int64_t>(slots_.size()));
  metrics_->SetGauge("pool." + name_ + ".idle", static_cast<int64_t>(idle));
  metrics_->SetGauge("pool." + name_ + ".in_use",
                     static_cast<int64_t>(slots_.size() - idle));
  metrics_->SetGaugeMax("pool." + name_ + ".max_in_use",
                        static_cast<int64_t>(slots_.size() - idle));
}

size_t WarmPool::IdleCountLocked() const {
  size_t idle = 0;
  for (const auto& [id, slot] : slots_) {
    if (!slot.busy) ++idle;
  }
  return idle;
}

WarmPool* ResourcePools::GetOrCreate(const std::string& name,
                                     const WarmPoolOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(name);
  if (it == pools_.end()) {
    it = pools_.emplace(name, std::make_unique<WarmPool>(name, options)).first;
    it->second->AttachMetrics(metrics_);
  }
  return it->second.get();
}

WarmPool* ResourcePools::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.get();
}

void ResourcePools::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  for (auto& [name, pool] : pools_) pool->AttachMetrics(metrics);
}

std::vector<std::string> ResourcePools::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, pool] : pools_) names.push_back(name);
  return names;
}

}  // namespace fedflow::sim
