// The latency model: one global set of virtual-time constants from which all
// reproduced experiments derive. The values are calibrated so that the
// structural cost model (which step happens how often in which architecture)
// reproduces the shape of the paper's measurements — notably Fig. 6's step
// shares and Fig. 5's ~3x elapsed-time ratio — without per-experiment tuning.
//
// Structure mirrors the paper's prototype: DB2-style fenced UDTF processes,
// RMI between the UDTF process / controller / application systems, a
// controller keeping connections warm, and MQSeries-style workflow activities
// that each boot a fresh Java program (the dominant WfMS cost).
#ifndef FEDFLOW_SIM_LATENCY_H_
#define FEDFLOW_SIM_LATENCY_H_

#include "common/vclock.h"

namespace fedflow::sim {

/// All durations in virtual microseconds.
struct LatencyModel {
  // --- RMI (shared by both architectures) ---------------------------------
  VDuration rmi_call_base_us = 780;    ///< request marshal + dispatch
  VDuration rmi_return_base_us = 30;   ///< response unmarshal
  VDuration rmi_per_byte_ns = 250;     ///< per marshalled byte (0.25 us)

  // --- UDTF architecture (enhanced SQL UDTF approach) ----------------------
  VDuration udtf_start_i_us = 1100;    ///< start the integration UDTF
  VDuration udtf_finish_i_us = 900;    ///< finish the integration UDTF
  VDuration udtf_prepare_a_us = 380;   ///< prepare one access UDTF
  VDuration udtf_finish_a_us = 420;    ///< finish one access UDTF
  /// Controller communication folded into A-UDTF prepare/finish (removed in
  /// the no-controller ablation; the paper's "total of 25%").
  VDuration controller_attach_us = 550;
  VDuration controller_return_us = 280;
  VDuration controller_dispatch_us = 10;  ///< one controller run (paper: ~0%)

  // --- WfMS architecture ----------------------------------------------------
  VDuration wf_udtf_start_us = 2700;    ///< start the wrapper UDTF
  VDuration wf_udtf_process_us = 2400;  ///< wrapper processing (fn mapping)
  /// Controller interaction inside wrapper processing (removed in the
  /// ablation together with wf_controller_us; the paper's "total of 8%").
  VDuration wf_controller_process_us = 900;
  VDuration wf_udtf_finish_us = 600;    ///< finish the wrapper UDTF
  VDuration wf_process_start_us = 3000; ///< start process instance + Java env
  VDuration wf_controller_us = 1500;    ///< controller keeping WfMS connection
  VDuration wf_jvm_boot_activity_us = 4500;  ///< fresh Java program/activity
  VDuration wf_container_us = 400;      ///< input/output container handling
  VDuration wf_navigation_us = 900;     ///< navigator work per activity
  VDuration wf_helper_us = 150;         ///< helper activity execution

  // --- remote SQL sources ----------------------------------------------------
  VDuration sql_subquery_base_us = 900;  ///< round trip per shipped subquery

  // --- enhanced Java UDTF architecture --------------------------------------
  VDuration java_iudtf_start_us = 1600;   ///< start the Java integration UDTF
  VDuration java_iudtf_finish_us = 1000;  ///< finish the Java integration UDTF
  VDuration jdbc_statement_us = 250;      ///< JDBC round trip per statement

  // --- warm-up surcharges (cold / warm / hot experiment) -------------------
  /// Cold (first call after boot): fenced UDTF process + connections to the
  /// application systems must be established.
  VDuration cold_infrastructure_us = 14000;
  /// First call of a particular federated function: plan compilation (UDTF
  /// approach) resp. process-template load (WfMS approach).
  VDuration first_run_function_us = 5000;

  // --- result cache (opt-in; never charged on the default path) ------------
  /// Serving a whole federated call from a hot slot's resident entry: one
  /// cache probe plus copying the memoized table out — no RMI, no controller,
  /// no application system.
  VDuration cache_hit_us = 120;
  /// Probing the cache around an A-UDTF local call (charged on the cached
  /// path whether the probe hits or misses).
  VDuration cache_probe_us = 40;

  // --- saga coordination (write-path federated functions only) --------------
  /// Serving a duplicate write from the idempotency ledger: the store
  /// recognizes the marshalled idempotency key and replays the recorded
  /// acknowledgement instead of re-applying the effect.
  VDuration txn_dedup_us = 60;
  /// Per-compensation coordinator overhead during backward recovery (saga-log
  /// read + compensation dispatch), on top of the compensation function's own
  /// modeled cost and RMI legs.
  VDuration txn_compensation_us = 200;

  /// Marshalling cost of `bytes` on the wire.
  VDuration MarshalCost(size_t bytes) const {
    return static_cast<VDuration>(bytes) * rmi_per_byte_ns / 1000;
  }
};

/// The paper's controller ablation ("assume we can implement our prototypes
/// without the controller"): drops every controller-attributable cost.
inline LatencyModel WithoutController(LatencyModel m) {
  m.controller_attach_us = 0;
  m.controller_return_us = 0;
  m.controller_dispatch_us = 0;
  m.wf_controller_us = 0;
  m.wf_controller_process_us = 0;
  return m;
}

/// Breakdown step names, matching the paper's Fig. 6 row labels.
namespace steps {
// WfMS approach.
inline constexpr char kWfStartUdtf[] = "Start UDTF";
inline constexpr char kWfProcessUdtf[] = "Process UDTF";
inline constexpr char kWfRmiCall[] = "RMI call";
inline constexpr char kWfProcessStart[] = "Start workflow and Java environment";
// "Process activities" and "Workflow" come from the engine
// (wfms::steps::kProcessActivities / kWorkflowNavigation).
inline constexpr char kWfController[] = "Controller";
inline constexpr char kWfRmiReturn[] = "RMI return";
inline constexpr char kWfFinishUdtf[] = "Finish UDTF";
// UDTF approach.
inline constexpr char kUdtfStartI[] = "Start I-UDTF";
inline constexpr char kUdtfPrepareA[] = "Prepare A-UDTFs";
inline constexpr char kUdtfRmiCalls[] = "RMI calls";
inline constexpr char kUdtfControllerRuns[] = "Controller runs";
inline constexpr char kUdtfProcessActivities[] = "Process activities";
inline constexpr char kUdtfFinishA[] = "Finish A-UDTFs";
inline constexpr char kUdtfRmiReturns[] = "RMI returns";
inline constexpr char kUdtfFinishI[] = "Finish I-UDTF";
// Java UDTF approach (extension; the paper describes the architecture but
// measures only the SQL variant). "JDBC calls" must match the literal used
// by fdbs::SqlClient.
inline constexpr char kJavaStartI[] = "Start Java I-UDTF";
inline constexpr char kJavaFinishI[] = "Finish Java I-UDTF";
inline constexpr char kJdbcCalls[] = "JDBC calls";
// Remote SQL sources.
inline constexpr char kSqlSubqueries[] = "SQL subqueries";
// Warm-up.
inline constexpr char kWarmup[] = "Warm-up";
// Result cache (opt-in paths only).
inline constexpr char kCacheHit[] = "Cache hit";
inline constexpr char kCacheProbe[] = "Cache probe";
// Saga coordination (write-path federated functions only).
inline constexpr char kSagaDedup[] = "Saga dedup";
inline constexpr char kSagaCompensation[] = "Saga compensation";
}  // namespace steps

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_LATENCY_H_
