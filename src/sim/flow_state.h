// Per-invocation flow state. Every federated statement runs as one *flow*:
// it gets its own virtual clock, its own trace session, and — under pooled
// execution — a leased controller plus that controller's warmth ledger. The
// global single-flow SystemState of earlier revisions is split in two: the
// per-invocation part lives here, the shared warm-resource part lives in
// resource_pools.h (WarmPool / ResourcePools).
//
// Layering note: the flow carries a federation::Controller* strictly as an
// opaque lease handle (forward-declared, never dereferenced below the
// federation layer), so the sim layer needs no link dependency on it.
#ifndef FEDFLOW_SIM_FLOW_STATE_H_
#define FEDFLOW_SIM_FLOW_STATE_H_

#include <cstdint>
#include <string>

#include "common/vclock.h"
#include "sim/system_state.h"

namespace fedflow::federation {
class Controller;
}  // namespace fedflow::federation

namespace fedflow::obs {
class TraceSession;
}  // namespace fedflow::obs

namespace fedflow::txn {
class SagaExec;
}  // namespace fedflow::txn

namespace fedflow::sim {

class FaultInjector;

/// Everything one in-flight federated invocation owns or has leased.
/// Couplings reach it through fdbs::ExecContext::flow; a null flow (or null
/// member) falls back to the coupling's construction-time wiring, which is
/// how single-flow callers stay bit-identical.
struct FlowState {
  /// Monotonic id assigned by the server (0 = unassigned).
  int64_t flow_id = 0;

  /// Tenant the invocation is accounted against ("default" when the caller
  /// is tenant-agnostic). Drives pool quotas and tenant-scoped metrics.
  std::string tenant = "default";

  /// The flow's private virtual clock; one statement, one timeline.
  SimClock clock;

  /// The flow's trace session (not owned; may be null).
  obs::TraceSession* trace = nullptr;

  /// Shared fault injector (not owned; per-function streams keep outcomes
  /// independent of flow interleaving). May be null.
  FaultInjector* faults = nullptr;

  /// Controller leased to this flow from the ControllerPool (not owned;
  /// opaque below the federation layer). Null = use the coupling's default.
  federation::Controller* controller = nullptr;

  /// Warmth ledger of the leased controller (not owned). Cold/warm/hot
  /// surcharges and MarkRun land here, so warmth follows the controller a
  /// flow actually ran on — not a global singleton.
  SystemState* warmth = nullptr;

  /// Warm-pool slot id of the leased controller (0 = unpooled). Result-cache
  /// entries record it so that rebooting or evicting the slot flushes them.
  uint64_t slot = 0;

  /// Saga execution of a write-path federated function (not owned; opaque
  /// below the txn layer like `controller`). Null for read-only calls — the
  /// overwhelmingly common case, which stays bit-identical. When set, the
  /// couplings route mutating local calls through the saga's idempotency
  /// ledger and record captured outputs for compensation.
  txn::SagaExec* saga = nullptr;
};

}  // namespace fedflow::sim

#endif  // FEDFLOW_SIM_FLOW_STATE_H_
