# Empty dependencies file for three_architectures.
# This may be replaced when dependencies are built.
