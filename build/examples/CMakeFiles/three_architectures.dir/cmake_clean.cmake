file(REMOVE_RECURSE
  "CMakeFiles/three_architectures.dir/three_architectures.cpp.o"
  "CMakeFiles/three_architectures.dir/three_architectures.cpp.o.d"
  "three_architectures"
  "three_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
