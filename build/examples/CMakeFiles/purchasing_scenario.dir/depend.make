# Empty dependencies file for purchasing_scenario.
# This may be replaced when dependencies are built.
