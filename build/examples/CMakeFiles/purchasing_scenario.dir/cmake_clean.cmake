file(REMOVE_RECURSE
  "CMakeFiles/purchasing_scenario.dir/purchasing_scenario.cpp.o"
  "CMakeFiles/purchasing_scenario.dir/purchasing_scenario.cpp.o.d"
  "purchasing_scenario"
  "purchasing_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purchasing_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
