# Empty compiler generated dependencies file for mapping_complexity_tour.
# This may be replaced when dependencies are built.
