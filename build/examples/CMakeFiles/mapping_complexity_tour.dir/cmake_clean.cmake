file(REMOVE_RECURSE
  "CMakeFiles/mapping_complexity_tour.dir/mapping_complexity_tour.cpp.o"
  "CMakeFiles/mapping_complexity_tour.dir/mapping_complexity_tour.cpp.o.d"
  "mapping_complexity_tour"
  "mapping_complexity_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_complexity_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
