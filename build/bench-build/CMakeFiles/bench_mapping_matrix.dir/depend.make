# Empty dependencies file for bench_mapping_matrix.
# This may be replaced when dependencies are built.
