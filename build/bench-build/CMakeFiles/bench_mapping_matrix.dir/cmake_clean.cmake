file(REMOVE_RECURSE
  "../bench/bench_mapping_matrix"
  "../bench/bench_mapping_matrix.pdb"
  "CMakeFiles/bench_mapping_matrix.dir/bench_mapping_matrix.cc.o"
  "CMakeFiles/bench_mapping_matrix.dir/bench_mapping_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapping_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
