file(REMOVE_RECURSE
  "../bench/bench_loop_scaling"
  "../bench/bench_loop_scaling.pdb"
  "CMakeFiles/bench_loop_scaling.dir/bench_loop_scaling.cc.o"
  "CMakeFiles/bench_loop_scaling.dir/bench_loop_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
