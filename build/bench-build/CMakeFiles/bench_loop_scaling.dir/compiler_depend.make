# Empty compiler generated dependencies file for bench_loop_scaling.
# This may be replaced when dependencies are built.
