# Empty dependencies file for bench_parallel_vs_sequential.
# This may be replaced when dependencies are built.
