file(REMOVE_RECURSE
  "../bench/bench_parallel_vs_sequential"
  "../bench/bench_parallel_vs_sequential.pdb"
  "CMakeFiles/bench_parallel_vs_sequential.dir/bench_parallel_vs_sequential.cc.o"
  "CMakeFiles/bench_parallel_vs_sequential.dir/bench_parallel_vs_sequential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_vs_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
