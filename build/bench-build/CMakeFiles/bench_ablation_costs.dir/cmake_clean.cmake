file(REMOVE_RECURSE
  "../bench/bench_ablation_costs"
  "../bench/bench_ablation_costs.pdb"
  "CMakeFiles/bench_ablation_costs.dir/bench_ablation_costs.cc.o"
  "CMakeFiles/bench_ablation_costs.dir/bench_ablation_costs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
