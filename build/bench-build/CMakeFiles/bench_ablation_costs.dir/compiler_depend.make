# Empty compiler generated dependencies file for bench_ablation_costs.
# This may be replaced when dependencies are built.
