file(REMOVE_RECURSE
  "../bench/bench_pushdown_optimization"
  "../bench/bench_pushdown_optimization.pdb"
  "CMakeFiles/bench_pushdown_optimization.dir/bench_pushdown_optimization.cc.o"
  "CMakeFiles/bench_pushdown_optimization.dir/bench_pushdown_optimization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pushdown_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
