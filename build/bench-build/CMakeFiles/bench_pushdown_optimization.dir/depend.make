# Empty dependencies file for bench_pushdown_optimization.
# This may be replaced when dependencies are built.
