# Empty dependencies file for bench_controller_ablation.
# This may be replaced when dependencies are built.
