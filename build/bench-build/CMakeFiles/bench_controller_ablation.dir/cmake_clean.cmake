file(REMOVE_RECURSE
  "../bench/bench_controller_ablation"
  "../bench/bench_controller_ablation.pdb"
  "CMakeFiles/bench_controller_ablation.dir/bench_controller_ablation.cc.o"
  "CMakeFiles/bench_controller_ablation.dir/bench_controller_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_controller_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
