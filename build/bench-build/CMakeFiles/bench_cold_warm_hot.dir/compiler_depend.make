# Empty compiler generated dependencies file for bench_cold_warm_hot.
# This may be replaced when dependencies are built.
