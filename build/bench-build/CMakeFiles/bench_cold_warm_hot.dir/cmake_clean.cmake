file(REMOVE_RECURSE
  "../bench/bench_cold_warm_hot"
  "../bench/bench_cold_warm_hot.pdb"
  "CMakeFiles/bench_cold_warm_hot.dir/bench_cold_warm_hot.cc.o"
  "CMakeFiles/bench_cold_warm_hot.dir/bench_cold_warm_hot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cold_warm_hot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
