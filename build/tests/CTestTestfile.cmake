# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/fdbs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/wfms_test[1]_include.cmake")
include("/root/repo/build/tests/wfms_extra_test[1]_include.cmake")
include("/root/repo/build/tests/appsys_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/federation_test[1]_include.cmake")
include("/root/repo/build/tests/java_coupling_test[1]_include.cmake")
include("/root/repo/build/tests/psm_coupling_test[1]_include.cmake")
include("/root/repo/build/tests/sql_source_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/performance_model_test[1]_include.cmake")
