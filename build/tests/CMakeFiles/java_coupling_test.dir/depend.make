# Empty dependencies file for java_coupling_test.
# This may be replaced when dependencies are built.
