file(REMOVE_RECURSE
  "CMakeFiles/java_coupling_test.dir/federation/java_coupling_test.cc.o"
  "CMakeFiles/java_coupling_test.dir/federation/java_coupling_test.cc.o.d"
  "java_coupling_test"
  "java_coupling_test.pdb"
  "java_coupling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_coupling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
