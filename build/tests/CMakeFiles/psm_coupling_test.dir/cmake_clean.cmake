file(REMOVE_RECURSE
  "CMakeFiles/psm_coupling_test.dir/federation/psm_coupling_test.cc.o"
  "CMakeFiles/psm_coupling_test.dir/federation/psm_coupling_test.cc.o.d"
  "psm_coupling_test"
  "psm_coupling_test.pdb"
  "psm_coupling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psm_coupling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
