# Empty compiler generated dependencies file for psm_coupling_test.
# This may be replaced when dependencies are built.
