file(REMOVE_RECURSE
  "CMakeFiles/performance_model_test.dir/federation/performance_model_test.cc.o"
  "CMakeFiles/performance_model_test.dir/federation/performance_model_test.cc.o.d"
  "performance_model_test"
  "performance_model_test.pdb"
  "performance_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
