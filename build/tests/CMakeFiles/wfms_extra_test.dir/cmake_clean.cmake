file(REMOVE_RECURSE
  "CMakeFiles/wfms_extra_test.dir/wfms/fdl_test.cc.o"
  "CMakeFiles/wfms_extra_test.dir/wfms/fdl_test.cc.o.d"
  "CMakeFiles/wfms_extra_test.dir/wfms/helpers_test.cc.o"
  "CMakeFiles/wfms_extra_test.dir/wfms/helpers_test.cc.o.d"
  "wfms_extra_test"
  "wfms_extra_test.pdb"
  "wfms_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
