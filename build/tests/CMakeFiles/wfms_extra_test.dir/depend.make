# Empty dependencies file for wfms_extra_test.
# This may be replaced when dependencies are built.
