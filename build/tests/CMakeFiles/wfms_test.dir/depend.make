# Empty dependencies file for wfms_test.
# This may be replaced when dependencies are built.
