file(REMOVE_RECURSE
  "CMakeFiles/wfms_test.dir/wfms/container_condition_test.cc.o"
  "CMakeFiles/wfms_test.dir/wfms/container_condition_test.cc.o.d"
  "CMakeFiles/wfms_test.dir/wfms/engine_test.cc.o"
  "CMakeFiles/wfms_test.dir/wfms/engine_test.cc.o.d"
  "CMakeFiles/wfms_test.dir/wfms/model_test.cc.o"
  "CMakeFiles/wfms_test.dir/wfms/model_test.cc.o.d"
  "wfms_test"
  "wfms_test.pdb"
  "wfms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
