
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wfms/container_condition_test.cc" "tests/CMakeFiles/wfms_test.dir/wfms/container_condition_test.cc.o" "gcc" "tests/CMakeFiles/wfms_test.dir/wfms/container_condition_test.cc.o.d"
  "/root/repo/tests/wfms/engine_test.cc" "tests/CMakeFiles/wfms_test.dir/wfms/engine_test.cc.o" "gcc" "tests/CMakeFiles/wfms_test.dir/wfms/engine_test.cc.o.d"
  "/root/repo/tests/wfms/model_test.cc" "tests/CMakeFiles/wfms_test.dir/wfms/model_test.cc.o" "gcc" "tests/CMakeFiles/wfms_test.dir/wfms/model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/federation/CMakeFiles/fedflow_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/fdbs/CMakeFiles/fedflow_fdbs.dir/DependInfo.cmake"
  "/root/repo/build/src/wfms/CMakeFiles/fedflow_wfms.dir/DependInfo.cmake"
  "/root/repo/build/src/appsys/CMakeFiles/fedflow_appsys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/fedflow_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
