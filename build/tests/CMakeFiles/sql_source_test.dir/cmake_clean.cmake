file(REMOVE_RECURSE
  "CMakeFiles/sql_source_test.dir/federation/sql_source_test.cc.o"
  "CMakeFiles/sql_source_test.dir/federation/sql_source_test.cc.o.d"
  "sql_source_test"
  "sql_source_test.pdb"
  "sql_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
