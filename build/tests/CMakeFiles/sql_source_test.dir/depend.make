# Empty dependencies file for sql_source_test.
# This may be replaced when dependencies are built.
