# Empty compiler generated dependencies file for fdbs_test.
# This may be replaced when dependencies are built.
