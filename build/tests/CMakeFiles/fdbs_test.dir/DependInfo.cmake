
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fdbs/dml_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/dml_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/dml_test.cc.o.d"
  "/root/repo/tests/fdbs/eval_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/eval_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/eval_test.cc.o.d"
  "/root/repo/tests/fdbs/executor_edge_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/executor_edge_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/executor_edge_test.cc.o.d"
  "/root/repo/tests/fdbs/executor_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/executor_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/executor_test.cc.o.d"
  "/root/repo/tests/fdbs/procedure_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/procedure_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/procedure_test.cc.o.d"
  "/root/repo/tests/fdbs/pushdown_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/pushdown_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/pushdown_test.cc.o.d"
  "/root/repo/tests/fdbs/sql_features_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/sql_features_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/sql_features_test.cc.o.d"
  "/root/repo/tests/fdbs/sql_function_test.cc" "tests/CMakeFiles/fdbs_test.dir/fdbs/sql_function_test.cc.o" "gcc" "tests/CMakeFiles/fdbs_test.dir/fdbs/sql_function_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/federation/CMakeFiles/fedflow_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/fdbs/CMakeFiles/fedflow_fdbs.dir/DependInfo.cmake"
  "/root/repo/build/src/wfms/CMakeFiles/fedflow_wfms.dir/DependInfo.cmake"
  "/root/repo/build/src/appsys/CMakeFiles/fedflow_appsys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/fedflow_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
