file(REMOVE_RECURSE
  "CMakeFiles/fdbs_test.dir/fdbs/dml_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/dml_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/eval_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/eval_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/executor_edge_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/executor_edge_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/executor_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/executor_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/procedure_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/procedure_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/pushdown_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/pushdown_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/sql_features_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/sql_features_test.cc.o.d"
  "CMakeFiles/fdbs_test.dir/fdbs/sql_function_test.cc.o"
  "CMakeFiles/fdbs_test.dir/fdbs/sql_function_test.cc.o.d"
  "fdbs_test"
  "fdbs_test.pdb"
  "fdbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
