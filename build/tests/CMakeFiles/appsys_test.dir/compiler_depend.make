# Empty compiler generated dependencies file for appsys_test.
# This may be replaced when dependencies are built.
