file(REMOVE_RECURSE
  "libfedflow_sql.a"
)
