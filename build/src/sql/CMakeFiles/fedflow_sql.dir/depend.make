# Empty dependencies file for fedflow_sql.
# This may be replaced when dependencies are built.
