file(REMOVE_RECURSE
  "CMakeFiles/fedflow_sql.dir/ast.cc.o"
  "CMakeFiles/fedflow_sql.dir/ast.cc.o.d"
  "CMakeFiles/fedflow_sql.dir/lexer.cc.o"
  "CMakeFiles/fedflow_sql.dir/lexer.cc.o.d"
  "CMakeFiles/fedflow_sql.dir/parser.cc.o"
  "CMakeFiles/fedflow_sql.dir/parser.cc.o.d"
  "libfedflow_sql.a"
  "libfedflow_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
