
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wfms/audit.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/audit.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/audit.cc.o.d"
  "/root/repo/src/wfms/builder.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/builder.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/builder.cc.o.d"
  "/root/repo/src/wfms/condition.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/condition.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/condition.cc.o.d"
  "/root/repo/src/wfms/container.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/container.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/container.cc.o.d"
  "/root/repo/src/wfms/engine.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/engine.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/engine.cc.o.d"
  "/root/repo/src/wfms/fdl.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/fdl.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/fdl.cc.o.d"
  "/root/repo/src/wfms/helpers.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/helpers.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/helpers.cc.o.d"
  "/root/repo/src/wfms/model.cc" "src/wfms/CMakeFiles/fedflow_wfms.dir/model.cc.o" "gcc" "src/wfms/CMakeFiles/fedflow_wfms.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fedflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/fedflow_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
