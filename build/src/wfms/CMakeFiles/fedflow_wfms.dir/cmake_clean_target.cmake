file(REMOVE_RECURSE
  "libfedflow_wfms.a"
)
