file(REMOVE_RECURSE
  "CMakeFiles/fedflow_wfms.dir/audit.cc.o"
  "CMakeFiles/fedflow_wfms.dir/audit.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/builder.cc.o"
  "CMakeFiles/fedflow_wfms.dir/builder.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/condition.cc.o"
  "CMakeFiles/fedflow_wfms.dir/condition.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/container.cc.o"
  "CMakeFiles/fedflow_wfms.dir/container.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/engine.cc.o"
  "CMakeFiles/fedflow_wfms.dir/engine.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/fdl.cc.o"
  "CMakeFiles/fedflow_wfms.dir/fdl.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/helpers.cc.o"
  "CMakeFiles/fedflow_wfms.dir/helpers.cc.o.d"
  "CMakeFiles/fedflow_wfms.dir/model.cc.o"
  "CMakeFiles/fedflow_wfms.dir/model.cc.o.d"
  "libfedflow_wfms.a"
  "libfedflow_wfms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_wfms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
