# Empty compiler generated dependencies file for fedflow_wfms.
# This may be replaced when dependencies are built.
