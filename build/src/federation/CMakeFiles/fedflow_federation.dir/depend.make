# Empty dependencies file for fedflow_federation.
# This may be replaced when dependencies are built.
