
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/binding.cc" "src/federation/CMakeFiles/fedflow_federation.dir/binding.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/binding.cc.o.d"
  "/root/repo/src/federation/classify.cc" "src/federation/CMakeFiles/fedflow_federation.dir/classify.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/classify.cc.o.d"
  "/root/repo/src/federation/controller.cc" "src/federation/CMakeFiles/fedflow_federation.dir/controller.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/controller.cc.o.d"
  "/root/repo/src/federation/integration_server.cc" "src/federation/CMakeFiles/fedflow_federation.dir/integration_server.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/integration_server.cc.o.d"
  "/root/repo/src/federation/java_coupling.cc" "src/federation/CMakeFiles/fedflow_federation.dir/java_coupling.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/java_coupling.cc.o.d"
  "/root/repo/src/federation/med_wrapper.cc" "src/federation/CMakeFiles/fedflow_federation.dir/med_wrapper.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/med_wrapper.cc.o.d"
  "/root/repo/src/federation/sample_scenario.cc" "src/federation/CMakeFiles/fedflow_federation.dir/sample_scenario.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/sample_scenario.cc.o.d"
  "/root/repo/src/federation/spec.cc" "src/federation/CMakeFiles/fedflow_federation.dir/spec.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/spec.cc.o.d"
  "/root/repo/src/federation/sql_source.cc" "src/federation/CMakeFiles/fedflow_federation.dir/sql_source.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/sql_source.cc.o.d"
  "/root/repo/src/federation/udtf_coupling.cc" "src/federation/CMakeFiles/fedflow_federation.dir/udtf_coupling.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/udtf_coupling.cc.o.d"
  "/root/repo/src/federation/wfms_coupling.cc" "src/federation/CMakeFiles/fedflow_federation.dir/wfms_coupling.cc.o" "gcc" "src/federation/CMakeFiles/fedflow_federation.dir/wfms_coupling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fedflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/fedflow_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/fdbs/CMakeFiles/fedflow_fdbs.dir/DependInfo.cmake"
  "/root/repo/build/src/wfms/CMakeFiles/fedflow_wfms.dir/DependInfo.cmake"
  "/root/repo/build/src/appsys/CMakeFiles/fedflow_appsys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fedflow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
