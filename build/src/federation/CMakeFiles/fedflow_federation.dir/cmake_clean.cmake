file(REMOVE_RECURSE
  "CMakeFiles/fedflow_federation.dir/binding.cc.o"
  "CMakeFiles/fedflow_federation.dir/binding.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/classify.cc.o"
  "CMakeFiles/fedflow_federation.dir/classify.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/controller.cc.o"
  "CMakeFiles/fedflow_federation.dir/controller.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/integration_server.cc.o"
  "CMakeFiles/fedflow_federation.dir/integration_server.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/java_coupling.cc.o"
  "CMakeFiles/fedflow_federation.dir/java_coupling.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/med_wrapper.cc.o"
  "CMakeFiles/fedflow_federation.dir/med_wrapper.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/sample_scenario.cc.o"
  "CMakeFiles/fedflow_federation.dir/sample_scenario.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/spec.cc.o"
  "CMakeFiles/fedflow_federation.dir/spec.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/sql_source.cc.o"
  "CMakeFiles/fedflow_federation.dir/sql_source.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/udtf_coupling.cc.o"
  "CMakeFiles/fedflow_federation.dir/udtf_coupling.cc.o.d"
  "CMakeFiles/fedflow_federation.dir/wfms_coupling.cc.o"
  "CMakeFiles/fedflow_federation.dir/wfms_coupling.cc.o.d"
  "libfedflow_federation.a"
  "libfedflow_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
