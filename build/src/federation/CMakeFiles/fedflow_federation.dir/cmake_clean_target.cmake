file(REMOVE_RECURSE
  "libfedflow_federation.a"
)
