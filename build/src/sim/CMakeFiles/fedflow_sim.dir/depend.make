# Empty dependencies file for fedflow_sim.
# This may be replaced when dependencies are built.
