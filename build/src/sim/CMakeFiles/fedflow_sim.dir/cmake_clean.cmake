file(REMOVE_RECURSE
  "CMakeFiles/fedflow_sim.dir/rmi.cc.o"
  "CMakeFiles/fedflow_sim.dir/rmi.cc.o.d"
  "libfedflow_sim.a"
  "libfedflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
