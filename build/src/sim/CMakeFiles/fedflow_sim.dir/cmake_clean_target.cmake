file(REMOVE_RECURSE
  "libfedflow_sim.a"
)
