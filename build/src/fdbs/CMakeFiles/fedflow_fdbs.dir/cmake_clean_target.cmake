file(REMOVE_RECURSE
  "libfedflow_fdbs.a"
)
