file(REMOVE_RECURSE
  "CMakeFiles/fedflow_fdbs.dir/builtins.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/builtins.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/catalog.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/catalog.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/database.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/database.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/eval.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/eval.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/executor.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/executor.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/procedural_function.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/procedural_function.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/procedure.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/procedure.cc.o.d"
  "CMakeFiles/fedflow_fdbs.dir/sql_function.cc.o"
  "CMakeFiles/fedflow_fdbs.dir/sql_function.cc.o.d"
  "libfedflow_fdbs.a"
  "libfedflow_fdbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_fdbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
