# Empty compiler generated dependencies file for fedflow_fdbs.
# This may be replaced when dependencies are built.
