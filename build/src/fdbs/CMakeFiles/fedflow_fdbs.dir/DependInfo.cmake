
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fdbs/builtins.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/builtins.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/builtins.cc.o.d"
  "/root/repo/src/fdbs/catalog.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/catalog.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/catalog.cc.o.d"
  "/root/repo/src/fdbs/database.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/database.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/database.cc.o.d"
  "/root/repo/src/fdbs/eval.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/eval.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/eval.cc.o.d"
  "/root/repo/src/fdbs/executor.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/executor.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/executor.cc.o.d"
  "/root/repo/src/fdbs/procedural_function.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/procedural_function.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/procedural_function.cc.o.d"
  "/root/repo/src/fdbs/procedure.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/procedure.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/procedure.cc.o.d"
  "/root/repo/src/fdbs/sql_function.cc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/sql_function.cc.o" "gcc" "src/fdbs/CMakeFiles/fedflow_fdbs.dir/sql_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fedflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/fedflow_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
