# Empty compiler generated dependencies file for fedflow_appsys.
# This may be replaced when dependencies are built.
