file(REMOVE_RECURSE
  "libfedflow_appsys.a"
)
