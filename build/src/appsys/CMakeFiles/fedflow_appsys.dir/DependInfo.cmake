
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appsys/appsystem.cc" "src/appsys/CMakeFiles/fedflow_appsys.dir/appsystem.cc.o" "gcc" "src/appsys/CMakeFiles/fedflow_appsys.dir/appsystem.cc.o.d"
  "/root/repo/src/appsys/dataset.cc" "src/appsys/CMakeFiles/fedflow_appsys.dir/dataset.cc.o" "gcc" "src/appsys/CMakeFiles/fedflow_appsys.dir/dataset.cc.o.d"
  "/root/repo/src/appsys/pdm.cc" "src/appsys/CMakeFiles/fedflow_appsys.dir/pdm.cc.o" "gcc" "src/appsys/CMakeFiles/fedflow_appsys.dir/pdm.cc.o.d"
  "/root/repo/src/appsys/purchasing.cc" "src/appsys/CMakeFiles/fedflow_appsys.dir/purchasing.cc.o" "gcc" "src/appsys/CMakeFiles/fedflow_appsys.dir/purchasing.cc.o.d"
  "/root/repo/src/appsys/stockkeeping.cc" "src/appsys/CMakeFiles/fedflow_appsys.dir/stockkeeping.cc.o" "gcc" "src/appsys/CMakeFiles/fedflow_appsys.dir/stockkeeping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fedflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
