file(REMOVE_RECURSE
  "CMakeFiles/fedflow_appsys.dir/appsystem.cc.o"
  "CMakeFiles/fedflow_appsys.dir/appsystem.cc.o.d"
  "CMakeFiles/fedflow_appsys.dir/dataset.cc.o"
  "CMakeFiles/fedflow_appsys.dir/dataset.cc.o.d"
  "CMakeFiles/fedflow_appsys.dir/pdm.cc.o"
  "CMakeFiles/fedflow_appsys.dir/pdm.cc.o.d"
  "CMakeFiles/fedflow_appsys.dir/purchasing.cc.o"
  "CMakeFiles/fedflow_appsys.dir/purchasing.cc.o.d"
  "CMakeFiles/fedflow_appsys.dir/stockkeeping.cc.o"
  "CMakeFiles/fedflow_appsys.dir/stockkeeping.cc.o.d"
  "libfedflow_appsys.a"
  "libfedflow_appsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_appsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
