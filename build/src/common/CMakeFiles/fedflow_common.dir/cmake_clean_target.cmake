file(REMOVE_RECURSE
  "libfedflow_common.a"
)
