file(REMOVE_RECURSE
  "CMakeFiles/fedflow_common.dir/codec.cc.o"
  "CMakeFiles/fedflow_common.dir/codec.cc.o.d"
  "CMakeFiles/fedflow_common.dir/schema.cc.o"
  "CMakeFiles/fedflow_common.dir/schema.cc.o.d"
  "CMakeFiles/fedflow_common.dir/status.cc.o"
  "CMakeFiles/fedflow_common.dir/status.cc.o.d"
  "CMakeFiles/fedflow_common.dir/strings.cc.o"
  "CMakeFiles/fedflow_common.dir/strings.cc.o.d"
  "CMakeFiles/fedflow_common.dir/table.cc.o"
  "CMakeFiles/fedflow_common.dir/table.cc.o.d"
  "CMakeFiles/fedflow_common.dir/thread_pool.cc.o"
  "CMakeFiles/fedflow_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/fedflow_common.dir/value.cc.o"
  "CMakeFiles/fedflow_common.dir/value.cc.o.d"
  "CMakeFiles/fedflow_common.dir/vclock.cc.o"
  "CMakeFiles/fedflow_common.dir/vclock.cc.o.d"
  "libfedflow_common.a"
  "libfedflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
