# Empty dependencies file for fedflow_common.
# This may be replaced when dependencies are built.
