
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/codec.cc" "src/common/CMakeFiles/fedflow_common.dir/codec.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/codec.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/common/CMakeFiles/fedflow_common.dir/schema.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/fedflow_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/common/CMakeFiles/fedflow_common.dir/strings.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/strings.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/fedflow_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/fedflow_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/thread_pool.cc.o.d"
  "/root/repo/src/common/value.cc" "src/common/CMakeFiles/fedflow_common.dir/value.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/value.cc.o.d"
  "/root/repo/src/common/vclock.cc" "src/common/CMakeFiles/fedflow_common.dir/vclock.cc.o" "gcc" "src/common/CMakeFiles/fedflow_common.dir/vclock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
