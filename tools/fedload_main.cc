// fedload: drives the open/closed-loop load harness against the sample
// scenario and prints the per-architecture report.
//
//   fedload                               closed loop, all architectures
//   fedload --arch wfms|udtf|java|all     architecture selection
//   fedload --mode closed|open            arrival mode
//   fedload --invocations N               flows to issue (default 200)
//   fedload --pool N                      controller-pool size (default 4)
//   fedload --concurrency N               closed-loop clients (default 8)
//   fedload --mean-gap-us N               open-loop mean inter-arrival gap
//   fedload --queue N                     admission-queue capacity
//   fedload --tenants a,b,c               tenant round-robin
//   fedload --seed N                      arrival-process seed
//   fedload --threads N                   real ThreadPool workers instead of
//                                         the virtual-time loop (TSan smoke)
//
// The virtual-time mode is deterministic: same flags, same report. Exit
// status is non-zero when a run fails or (deterministic mode) when any flow
// ends in an unexpected terminal state.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "federation/controller_pool.h"
#include "federation/sample_scenario.h"
#include "load/load_harness.h"

namespace {

using namespace fedflow;  // NOLINT(google-build-using-namespace)
using federation::Architecture;

const char* ArchTag(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "wfms";
    case Architecture::kUdtf:
      return "udtf";
    case Architecture::kJavaUdtf:
      return "java_udtf";
  }
  return "?";
}

std::vector<load::Invocation> Workload() {
  return {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetNumberSupp1234", {Value::Int(17)}},
  };
}

int64_t ParseInt(const char* flag, const char* value) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    std::fprintf(stderr, "fedload: bad value for %s: %s\n", flag, value);
    std::exit(2);
  }
  return parsed;
}

int RunOne(Architecture arch, size_t pool_size,
           const load::LoadOptions& options) {
  federation::ControllerPoolOptions pool;
  pool.max_size = pool_size;
  auto server = federation::MakeSampleServer(arch, {}, {}, pool);
  if (!server.ok()) {
    std::fprintf(stderr, "fedload: server build failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  load::LoadHarness harness(server->get(), options);
  auto report = harness.Run(Workload());
  if (!report.ok()) {
    std::fprintf(stderr, "fedload: run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s mode=%s pool=%zu  completed=%lld failed=%lld "
              "rejected=%lld short_circuited=%lld retried=%lld\n",
              ArchTag(arch), load::ArrivalModeName(options.mode), pool_size,
              static_cast<long long>(report->completed),
              static_cast<long long>(report->failed),
              static_cast<long long>(report->rejected),
              static_cast<long long>(report->short_circuited),
              static_cast<long long>(report->retried));
  if (options.threads == 0) {
    std::printf("           makespan=%lldus thr/ksec=%lld p50=%lldus "
                "p99=%lldus p999=%lldus max_queue=%lld\n",
                static_cast<long long>(report->makespan_us),
                static_cast<long long>(report->ThroughputPerKiloSecond()),
                static_cast<long long>(report->sojourn_us.Percentile(500)),
                static_cast<long long>(report->sojourn_us.Percentile(990)),
                static_cast<long long>(report->sojourn_us.Percentile(999)),
                static_cast<long long>(report->max_queue_depth));
  }
  std::printf("           pool: created=%lld cold=%lld warm=%lld hot=%lld "
              "evicted=%lld\n",
              static_cast<long long>(report->pool.created),
              static_cast<long long>(report->pool.cold_checkouts),
              static_cast<long long>(report->pool.warm_checkouts),
              static_cast<long long>(report->pool.hot_checkouts),
              static_cast<long long>(report->pool.evicted));

  // In the deterministic modes of this tool nothing injects faults or
  // overflows an unbounded-enough queue, so every flow must complete.
  if (report->completed != options.total_invocations) {
    std::fprintf(stderr, "fedload: %lld of %lld flows did not complete\n",
                 static_cast<long long>(options.total_invocations -
                                        report->completed),
                 static_cast<long long>(options.total_invocations));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string arch = "all";
  load::LoadOptions options;
  options.mode = load::ArrivalMode::kClosed;
  options.concurrency = 8;
  options.total_invocations = 200;
  options.queue_capacity = 256;
  size_t pool_size = 4;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fedload: %s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--arch") == 0) {
      arch = next();
    } else if (std::strcmp(a, "--mode") == 0) {
      const std::string mode = next();
      if (mode == "closed") {
        options.mode = load::ArrivalMode::kClosed;
      } else if (mode == "open") {
        options.mode = load::ArrivalMode::kOpen;
      } else {
        std::fprintf(stderr, "fedload: unknown mode %s\n", mode.c_str());
        return 2;
      }
    } else if (std::strcmp(a, "--invocations") == 0) {
      options.total_invocations = ParseInt(a, next());
    } else if (std::strcmp(a, "--pool") == 0) {
      pool_size = static_cast<size_t>(ParseInt(a, next()));
    } else if (std::strcmp(a, "--concurrency") == 0) {
      options.concurrency = static_cast<size_t>(ParseInt(a, next()));
    } else if (std::strcmp(a, "--mean-gap-us") == 0) {
      options.mean_interarrival_us = ParseInt(a, next());
    } else if (std::strcmp(a, "--queue") == 0) {
      options.queue_capacity = static_cast<size_t>(ParseInt(a, next()));
    } else if (std::strcmp(a, "--seed") == 0) {
      options.seed = static_cast<uint64_t>(ParseInt(a, next()));
    } else if (std::strcmp(a, "--threads") == 0) {
      options.threads = static_cast<size_t>(ParseInt(a, next()));
    } else if (std::strcmp(a, "--tenants") == 0) {
      options.tenants = Split(next(), ',');
    } else {
      std::fprintf(stderr, "fedload: unknown flag %s\n", a);
      return 2;
    }
  }

  std::vector<Architecture> archs;
  if (arch == "all") {
    archs = {Architecture::kWfms, Architecture::kUdtf,
             Architecture::kJavaUdtf};
  } else if (arch == "wfms") {
    archs = {Architecture::kWfms};
  } else if (arch == "udtf") {
    archs = {Architecture::kUdtf};
  } else if (arch == "java") {
    archs = {Architecture::kJavaUdtf};
  } else {
    std::fprintf(stderr, "fedload: unknown arch %s\n", arch.c_str());
    return 2;
  }

  int rc = 0;
  for (Architecture a : archs) rc |= RunOne(a, pool_size, options);
  return rc;
}
