// fedplan: EXPLAIN-style printout of federated plans over the sample
// scenario, with per-node modeled costs for both architectures (WfMS
// process navigation vs sequential lateral SQL chain).
//
//   fedplan                       every sample spec, passthrough + optimized
//   fedplan --function NAME       one sample spec
//   fedplan --mode passthrough|optimized|baseline|all
//                                 which plan variants to print (default:
//                                 passthrough + optimized; baseline is the
//                                 naive sequential-chain compile the
//                                 optimizer's parallelize pass recovers from)
//
// Exit 0 when every requested plan compiled; non-zero otherwise. The
// default output is pinned by tools/golden/fedplan_sample.txt (CI
// fedplan-smoke job).
#include <cstdio>
#include <string>
#include <vector>

#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "cache/plan_cache.h"
#include "common/strings.h"
#include "federation/sample_scenario.h"
#include "plan/explain.h"
#include "plan/optimizer.h"
#include "sim/latency.h"

namespace {

using namespace fedflow;  // NOLINT(google-build-using-namespace)

Result<appsys::AppSystemRegistry> SampleRegistry() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PdmSystem>(scenario)));
  return systems;
}

struct Variant {
  const char* label;
  plan::PlanOptions options;
};

/// Prints one plan variant of `spec`. Returns false when compilation failed.
/// Plans come through the same PlanCache the integration server uses, so
/// EXPLAIN shows exactly the cached instance a registration would produce
/// (a variant switch recompiles — options drift invalidates the entry).
bool ExplainOne(const federation::FederatedFunctionSpec& spec,
                const appsys::AppSystemRegistry& systems,
                const sim::LatencyModel& model, const Variant& variant,
                cache::PlanCache& plans) {
  Result<std::shared_ptr<const plan::FedPlan>> fed_plan =
      plans.GetOrBuild(spec, systems, model, variant.options);
  if (!fed_plan.ok()) {
    std::fprintf(stderr, "fedplan: %s (%s): %s\n", spec.name.c_str(),
                 variant.label, fed_plan.status().ToString().c_str());
    return false;
  }
  std::printf("-- %s: %s --\n%s\n", spec.name.c_str(), variant.label,
              plan::ExplainPlan(**fed_plan, model).c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string function;
  std::string mode = "default";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--function") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fedplan: --function needs a value\n");
        return 2;
      }
      function = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fedplan: --mode needs a value\n");
        return 2;
      }
      mode = v;
    } else {
      std::fprintf(stderr, "fedplan: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  plan::PlanOptions passthrough;
  plan::PlanOptions baseline;
  baseline.sequential_baseline = true;
  plan::PlanOptions optimized;
  optimized.sequential_baseline = true;
  optimized.parallelize = true;
  optimized.reorder = true;
  optimized.sink_predicates = true;

  std::vector<Variant> variants;
  if (mode == "passthrough") {
    variants = {{"passthrough", passthrough}};
  } else if (mode == "baseline") {
    variants = {{"sequential baseline", baseline}};
  } else if (mode == "optimized") {
    variants = {{"optimized (from sequential baseline)", optimized}};
  } else if (mode == "all") {
    variants = {{"passthrough", passthrough},
                {"sequential baseline", baseline},
                {"optimized (from sequential baseline)", optimized}};
  } else if (mode == "default") {
    variants = {{"passthrough", passthrough},
                {"optimized (from sequential baseline)", optimized}};
  } else {
    std::fprintf(stderr,
                 "fedplan: --mode must be passthrough|baseline|optimized|all\n");
    return 2;
  }

  Result<appsys::AppSystemRegistry> systems = SampleRegistry();
  if (!systems.ok()) {
    std::fprintf(stderr, "fedplan: %s\n", systems.status().ToString().c_str());
    return 1;
  }
  sim::LatencyModel model;

  cache::PlanCache plans;
  bool matched = false;
  bool ok = true;
  for (const federation::FederatedFunctionSpec& spec :
       federation::AllSampleSpecs()) {
    if (!function.empty() && !EqualsIgnoreCase(spec.name, function)) continue;
    matched = true;
    for (const Variant& variant : variants) {
      ok = ExplainOne(spec, *systems, model, variant, plans) && ok;
    }
  }
  if (!matched) {
    std::fprintf(stderr, "fedplan: unknown sample function %s; one of:\n",
                 function.c_str());
    for (const federation::FederatedFunctionSpec& spec :
         federation::AllSampleSpecs()) {
      std::fprintf(stderr, "  %s\n", spec.name.c_str());
    }
    return 2;
  }
  return ok ? 0 : 1;
}
