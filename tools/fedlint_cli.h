// The fedlint CLI, factored into a small library so the CLI contract —
// argument parsing, output formats and exit codes — is unit-testable without
// spawning the binary.
//
// Exit codes:
//   0   clean, or warnings without --strict
//   1   warnings only, under --strict
//   2   at least one error-severity finding (or a compilation failure)
//   64  usage error
#ifndef FEDFLOW_TOOLS_FEDLINT_CLI_H_
#define FEDFLOW_TOOLS_FEDLINT_CLI_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"

namespace fedflow::tools {

enum class OutputFormat { kText, kJson, kSarif };

enum class LintMode { kSample, kListCorpus, kCorpusOne, kCorpusAll };

struct CliOptions {
  LintMode mode = LintMode::kSample;
  OutputFormat format = OutputFormat::kText;
  bool strict = false;
  std::string corpus_name;  ///< kCorpusOne only
};

/// Parses argv (without the program name). On failure returns false and puts
/// the usage text in `error`.
bool ParseCliArgs(const std::vector<std::string>& args, CliOptions* options,
                  std::string* error);

/// Runs fedlint per `options`, appending all human/machine output to
/// `output`. Returns the process exit code (see header comment).
int RunFedlint(const CliOptions& options, std::string* output);

/// Renders diagnostics in the chosen format (exposed for tests; text format
/// is one Diagnostic::ToString() per line).
std::string FormatFindings(const std::vector<analysis::Diagnostic>& diags,
                           OutputFormat format);

}  // namespace fedflow::tools

#endif  // FEDFLOW_TOOLS_FEDLINT_CLI_H_
