// fedtrace: runs a federated call on the sample scenario with tracing
// enabled and dumps the virtual-time trace.
//
//   fedtrace                              BuySuppComp on both architectures
//   fedtrace --function GetNoSuppComp     another sample function
//   fedtrace --arch wfms|udtf|both        architecture selection
//   fedtrace --out PREFIX                 write PREFIX_<arch>.trace.json
//                                         (default: fedtrace)
//   fedtrace --no-tree                    suppress the span-tree printout
//
// For every run the tool prints the span tree and the trace-derived
// per-step breakdown next to the clock's, and self-validates:
//   * the breakdown reassembled from span charges equals the clock breakdown
//     entry for entry (same steps, same order, same durations);
//   * every layer expected under the architecture contributed a span.
// Exit status is non-zero when any validation fails.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "federation/integration_server.h"
#include "federation/sample_scenario.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace {

using namespace fedflow;  // NOLINT(google-build-using-namespace)
using federation::Architecture;

struct SampleCall {
  const char* name;
  std::vector<Value> args;
  bool wfms_only = false;
};

std::vector<SampleCall> SampleCalls() {
  return {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetNumberSupp1234", {Value::Int(17)}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetSuppQualRelia", {Value::Int(1234)}},
      {"GetSubCompDiscounts", {Value::Int(3), Value::Int(5)}},
      {"GetNoSuppComp", {Value::Varchar("Stark"), Value::Varchar("brakepad")}},
      {"GetSuppInfo", {Value::Varchar("Acme")}},
      {"BuySuppComp", {Value::Int(1234), Value::Varchar("brakepad")}},
      {"AllCompNames", {Value::Int(5)}, /*wfms_only=*/true},
  };
}

const char* ArchTag(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "wfms";
    case Architecture::kUdtf:
      return "udtf";
    case Architecture::kJavaUdtf:
      return "java";
  }
  return "?";
}

/// Layers every trace of the architecture must contain: the WfMS coupling
/// exercises all five tiers; the UDTF couplings have no workflow engine.
std::vector<obs::Layer> ExpectedLayers(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return {obs::Layer::kFdbs, obs::Layer::kCoupling, obs::Layer::kRmi,
              obs::Layer::kWfms, obs::Layer::kAppsys};
    case Architecture::kUdtf:
    case Architecture::kJavaUdtf:
      return {obs::Layer::kFdbs, obs::Layer::kCoupling, obs::Layer::kRmi,
              obs::Layer::kAppsys};
  }
  return {};
}

bool BreakdownsEqual(const TimeBreakdown& a, const TimeBreakdown& b) {
  return a.entries() == b.entries();
}

/// Runs `call` traced under `arch`; prints, exports, validates. Returns
/// false when a validation failed.
bool RunOne(Architecture arch, const SampleCall& call,
            const std::string& out_prefix, bool print_tree) {
  auto server = federation::MakeSampleServer(arch);
  if (!server.ok()) {
    std::fprintf(stderr, "fedtrace: %s\n", server.status().ToString().c_str());
    return false;
  }
  (*server)->tracer().Enable();
  auto result = (*server)->CallFederated(call.name, call.args);
  if (!result.ok()) {
    std::fprintf(stderr, "fedtrace: %s(%s): %s\n", call.name, ArchTag(arch),
                 result.status().ToString().c_str());
    return false;
  }
  std::vector<obs::Span> spans = (*server)->tracer().Snapshot();

  std::printf("== %s under the %s ==\n", call.name,
              federation::ArchitectureName(arch));
  std::printf("spans: %zu   virtual elapsed: %lld us\n", spans.size(),
              static_cast<long long>(result->elapsed_us));
  if (print_tree) {
    std::printf("%s", obs::SpanTreeString(spans).c_str());
  }

  // Trace-derived breakdown vs the clock's.
  TimeBreakdown derived = obs::BreakdownFromSpans(spans);
  bool ok = true;
  std::printf("step breakdown (clock | trace-derived):\n");
  for (const auto& [step, dur] : result->breakdown.entries()) {
    VDuration from_trace = 0;
    for (const auto& [dstep, ddur] : derived.entries()) {
      if (dstep == step) from_trace = ddur;
    }
    std::printf("  %-24s %10lld | %10lld%s\n", step.c_str(),
                static_cast<long long>(dur),
                static_cast<long long>(from_trace),
                dur == from_trace ? "" : "   MISMATCH");
  }
  if (!BreakdownsEqual(result->breakdown, derived)) {
    std::fprintf(stderr,
                 "fedtrace: trace-derived breakdown differs from the clock "
                 "breakdown for %s (%s)\n",
                 call.name, ArchTag(arch));
    ok = false;
  }

  for (obs::Layer layer : ExpectedLayers(arch)) {
    bool found = false;
    for (const obs::Span& s : spans) {
      if (s.layer == layer) found = true;
    }
    if (!found) {
      std::fprintf(stderr, "fedtrace: no span in layer '%s' for %s (%s)\n",
                   obs::LayerName(layer), call.name, ArchTag(arch));
      ok = false;
    }
  }

  std::string path = out_prefix + "_" + ArchTag(arch) + ".trace.json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "fedtrace: cannot write %s\n", path.c_str());
    return false;
  }
  out << obs::ChromeTraceJson(spans);
  out.close();
  std::printf("wrote %s\n\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string function = "BuySuppComp";
  std::string arch_arg = "both";
  std::string out_prefix = "fedtrace";
  bool print_tree = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--function") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fedtrace: --function needs a value\n");
        return 2;
      }
      function = v;
    } else if (arg == "--arch") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fedtrace: --arch needs a value\n");
        return 2;
      }
      arch_arg = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "fedtrace: --out needs a value\n");
        return 2;
      }
      out_prefix = v;
    } else if (arg == "--no-tree") {
      print_tree = false;
    } else {
      std::fprintf(stderr, "fedtrace: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  const SampleCall* call = nullptr;
  static const std::vector<SampleCall> calls = SampleCalls();
  for (const SampleCall& c : calls) {
    if (EqualsIgnoreCase(c.name, function)) call = &c;
  }
  if (call == nullptr) {
    std::fprintf(stderr, "fedtrace: unknown sample function %s; one of:\n",
                 function.c_str());
    for (const SampleCall& c : calls) {
      std::fprintf(stderr, "  %s%s\n", c.name,
                   c.wfms_only ? " (wfms only)" : "");
    }
    return 2;
  }

  std::vector<Architecture> archs;
  if (arch_arg == "wfms") {
    archs = {Architecture::kWfms};
  } else if (arch_arg == "udtf") {
    archs = {Architecture::kUdtf};
  } else if (arch_arg == "java") {
    archs = {Architecture::kJavaUdtf};
  } else if (arch_arg == "both") {
    archs = {Architecture::kWfms, Architecture::kUdtf};
  } else {
    std::fprintf(stderr, "fedtrace: --arch must be wfms|udtf|java|both\n");
    return 2;
  }

  bool ok = true;
  for (Architecture arch : archs) {
    if (call->wfms_only && arch != Architecture::kWfms) {
      std::fprintf(stderr, "fedtrace: %s is WfMS-only; skipping %s\n",
                   call->name, ArchTag(arch));
      continue;
    }
    ok = RunOne(arch, *call, out_prefix, print_tree) && ok;
  }
  return ok ? 0 : 1;
}
