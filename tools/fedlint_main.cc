// fedlint: static verification of federated-function specs, the workflow
// processes and I-UDTF SQL compiled from them, and semantic dataflow facts
// over the FedPlan IR.
//
//   fedlint                 lint the full sample scenario, all five passes
//   fedlint --list-corpus   print the corpus entry names
//   fedlint --corpus NAME   lint one corpus entry
//   fedlint --corpus-all    lint every corpus entry
//   fedlint --format=F      text (default), json, or sarif
//   fedlint --strict        exit 1 when the findings are warnings only
//
// Exit codes: 0 clean (or warnings without --strict), 1 warnings under
// --strict, 2 errors, 64 usage.
#include <cstdio>
#include <string>
#include <vector>

#include "fedlint_cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  fedflow::tools::CliOptions options;
  std::string error;
  if (!fedflow::tools::ParseCliArgs(args, &options, &error)) {
    std::fputs(error.c_str(), stderr);
    return 64;
  }
  std::string output;
  int code = fedflow::tools::RunFedlint(options, &output);
  std::fputs(output.c_str(), stdout);
  return code;
}
