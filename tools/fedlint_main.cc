// fedlint: static verification of federated-function specs, the workflow
// processes and I-UDTF SQL compiled from them.
//
//   fedlint                 lint the full sample scenario (all specs, their
//                           compiled workflow processes, generated I-UDTF
//                           SQL, and plan/lowering consistency); exit 0 iff
//                           no findings
//   fedlint --list-corpus   print the malformed-spec corpus entry names
//   fedlint --corpus NAME   lint one corpus entry; exit 1 on findings
//   fedlint --corpus-all    lint every corpus entry; exit 1 on findings
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/corpus.h"
#include "analysis/diagnostic.h"
#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"
#include "analysis/sql_lint.h"
#include "analysis/workflow_lint.h"
#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "federation/classify.h"
#include "federation/sample_scenario.h"
#include "federation/wfms_coupling.h"
#include "federation/udtf_coupling.h"
#include "fdbs/database.h"
#include "sim/latency.h"
#include "sim/system_state.h"
#include "wfms/engine.h"

namespace {

using namespace fedflow;           // NOLINT(google-build-using-namespace)
using namespace fedflow::analysis; // NOLINT(google-build-using-namespace)

void Print(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    std::printf("%s\n", d.ToString().c_str());
  }
}

/// The registry the sample scenario and the corpus lint against.
Result<appsys::AppSystemRegistry> SampleRegistry() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PdmSystem>(scenario)));
  return systems;
}

/// Resolves A-UDTF names across every registered application system, as the
/// FDBS catalog does after RegisterAccessUdtfs().
UdtfLookup MakeLookup(const appsys::AppSystemRegistry& systems) {
  return [&systems](const std::string& name) -> std::optional<UdtfSignature> {
    for (const std::string& sys_name : systems.Names()) {
      Result<appsys::AppSystem*> sys = systems.Get(sys_name);
      if (!sys.ok()) continue;
      Result<const appsys::LocalFunction*> fn = (*sys)->GetFunction(name);
      if (fn.ok()) {
        return UdtfSignature{(*fn)->params, (*fn)->result_schema};
      }
    }
    return std::nullopt;
  };
}

/// Lints every sample spec through all three passes. Returns the total
/// finding count.
int LintSampleScenario() {
  Result<appsys::AppSystemRegistry> systems = SampleRegistry();
  if (!systems.ok()) {
    std::printf("error: %s\n", systems.status().ToString().c_str());
    return 1;
  }

  // Infrastructure the couplings compile against (nothing is executed).
  sim::LatencyModel model;
  sim::SystemState state;
  fdbs::Database db;
  federation::Controller controller(&*systems, &model);
  wfms::Engine engine{wfms::EngineOptions{}};
  federation::WfmsCoupling wfms(&db, &engine, &*systems, &controller, &model,
                                &state);
  federation::UdtfCoupling udtf(&db, &*systems, &controller, &model, &state);
  UdtfLookup lookup = MakeLookup(*systems);

  int findings = 0;
  for (const federation::FederatedFunctionSpec& spec :
       federation::AllSampleSpecs()) {
    // Pass 1: the spec itself.
    std::vector<Diagnostic> diags = LintSpec(spec, *systems);

    // Pass 2: the workflow process compiled from it.
    Result<federation::CompiledProcess> compiled = wfms.CompileProcess(spec);
    if (compiled.ok()) {
      std::vector<Diagnostic> wf = LintProcess(compiled->process, *systems);
      diags.insert(diags.end(), wf.begin(), wf.end());
    } else {
      std::printf("%s: workflow compilation failed: %s\n", spec.name.c_str(),
                  compiled.status().ToString().c_str());
      ++findings;
    }

    // Pass 3: plan consistency — the optimized plan's lowerings must agree
    // with the IR on call set, ordering, classification and sunk predicates
    // (FF3xx). Checked in both passthrough and fully-optimized modes.
    {
      std::vector<Diagnostic> pl = LintPlan(spec, *systems, model);
      diags.insert(diags.end(), pl.begin(), pl.end());
      plan::PlanOptions optimized;
      optimized.parallelize = true;
      optimized.reorder = true;
      optimized.sink_predicates = true;
      std::vector<Diagnostic> po = LintPlan(spec, *systems, model, optimized);
      diags.insert(diags.end(), po.begin(), po.end());
    }

    // Pass 4: the generated I-UDTF SQL (loop specs are WfMS-only).
    if (!spec.loop.enabled) {
      Result<std::string> sql = udtf.CompileIUdtfSql(spec);
      if (sql.ok()) {
        std::vector<Diagnostic> sq = LintIUdtfSql(*sql, lookup);
        diags.insert(diags.end(), sq.begin(), sq.end());
      } else {
        std::printf("%s: I-UDTF compilation failed: %s\n", spec.name.c_str(),
                    sql.status().ToString().c_str());
        ++findings;
      }
    }

    if (diags.empty()) {
      std::printf("%-22s clean\n", spec.name.c_str());
    } else {
      std::printf("%-22s %zu finding(s)\n", spec.name.c_str(), diags.size());
      Print(diags);
      findings += static_cast<int>(diags.size());
    }
  }
  return findings;
}

int LintCorpusEntry(const CorpusEntry& entry,
                    const appsys::AppSystemRegistry& systems) {
  std::vector<Diagnostic> diags = LintSpec(entry.spec, systems);
  std::printf("corpus entry '%s' (expect %s):\n", entry.name.c_str(),
              entry.expected_code.c_str());
  Print(diags);
  return static_cast<int>(diags.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  if (!args.empty() && args[0] == "--list-corpus") {
    for (const CorpusEntry& e : MalformedSpecCorpus()) {
      std::printf("%-20s %s at %s\n", e.name.c_str(),
                  e.expected_code.c_str(), e.expected_location.c_str());
    }
    return 0;
  }

  if (!args.empty() && (args[0] == "--corpus" || args[0] == "--corpus-all")) {
    Result<appsys::AppSystemRegistry> systems = SampleRegistry();
    if (!systems.ok()) {
      std::printf("error: %s\n", systems.status().ToString().c_str());
      return 1;
    }
    int findings = 0;
    bool matched = false;
    for (const CorpusEntry& e : MalformedSpecCorpus()) {
      if (args[0] == "--corpus") {
        if (args.size() < 2 || e.name != args[1]) continue;
      }
      matched = true;
      findings += LintCorpusEntry(e, *systems);
    }
    if (!matched) {
      std::printf("unknown corpus entry; try --list-corpus\n");
      return 2;
    }
    return findings > 0 ? 1 : 0;
  }

  if (!args.empty()) {
    std::printf(
        "usage: fedlint [--list-corpus | --corpus NAME | --corpus-all]\n");
    return 2;
  }

  int findings = LintSampleScenario();
  if (findings == 0) {
    std::printf("sample scenario: clean across all passes\n");
    return 0;
  }
  std::printf("sample scenario: %d finding(s)\n", findings);
  return 1;
}
