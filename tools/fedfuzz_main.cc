// fedfuzz: differential fuzzing of the coupling stack, driven by the
// generative spec fuzzer (analysis/specgen.h).
//
// For every seed the harness generates a lint-clean federated-function spec
// (cycling the paper's whole mapping-complexity matrix), then checks three
// oracles against the live couplings:
//
//   1. Static:   the generated spec must carry no error-severity findings
//                (spec lint + plan lint + the FF4xx dataflow analyses) and
//                must classify as the case the generator intended.
//   2. Register: every architecture that supports the spec's class must
//                accept it; every architecture that does not must reject it.
//   3. Execute:  all accepting architectures must return the same result
//                (schema + row multiset), and the observed row counts and
//                per-function local-call counts must fall inside the
//                intervals the cardinality analysis predicted.
//   4. Saga:     every seed also generates a write-path spec (mutating steps
//                with compensations). It must register under every coupling,
//                commit exactly once when healthy, and — when one write's
//                acknowledgement is lost with retries disabled — abort with
//                compensations that restore every store's state fingerprint
//                while data versions only move forward.
//   5. Columnar: every read execution is mirrored on a second server fleet
//                running with columnar execution disabled. Row and columnar
//                transports must agree on the result schema, the row
//                multiset, and the virtual-time total — the transport is a
//                wall-clock optimization and nothing else. (Failing
//                statements are exempt from comparison: the two scan orders
//                may surface a different row's error.)
//
//   fedfuzz [--seeds N] [--start S] [--report]
//
// Exit 0 when every seed passes, 1 on any violation, 64 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>
#include <memory>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/spec_lint.h"
#include "analysis/specgen.h"
#include "appsys/dataset.h"
#include "federation/classify.h"
#include "federation/integration_server.h"
#include "federation/java_coupling.h"
#include "txn/saga.h"

namespace {

using namespace fedflow;            // NOLINT(google-build-using-namespace)
using federation::Architecture;
using federation::IntegrationServer;
using federation::MappingCase;

struct Options {
  std::uint64_t seeds = 200;
  std::uint64_t start = 0;
  bool report = false;
};

/// Per-(SYSTEM.FUNCTION) call counts across one server's app systems.
std::map<std::string, int64_t> AllCounts(const IntegrationServer& server) {
  std::map<std::string, int64_t> counts;
  for (const std::string& name : server.systems().Names()) {
    Result<appsys::AppSystem*> system = server.systems().Get(name);
    if (!system.ok()) continue;
    for (const auto& [fn, n] : (*system)->FunctionCallCounts()) {
      counts[(*system)->name() + "." + fn] += n;
    }
  }
  return counts;
}

/// observed - before, dropping zero deltas.
std::map<std::string, int64_t> Delta(const std::map<std::string, int64_t>& before,
                                     const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> delta;
  for (const auto& [key, n] : after) {
    int64_t b = 0;
    auto it = before.find(key);
    if (it != before.end()) b = it->second;
    if (n != b) delta[key] = n - b;
  }
  return delta;
}

/// Per-system state fingerprints — the saga oracle's before/after witness.
std::map<std::string, std::string> Fingerprints(const IntegrationServer& server) {
  std::map<std::string, std::string> fps;
  for (const std::string& name : server.systems().Names()) {
    Result<appsys::AppSystem*> system = server.systems().Get(name);
    if (system.ok()) fps[name] = (*system)->StateFingerprint();
  }
  return fps;
}

/// Per-system data versions (mutation counters; must never move backwards).
std::map<std::string, int64_t> Versions(const IntegrationServer& server) {
  std::map<std::string, int64_t> versions;
  for (const std::string& name : server.systems().Names()) {
    Result<appsys::AppSystem*> system = server.systems().Get(name);
    if (system.ok()) versions[name] = (*system)->data_version();
  }
  return versions;
}

/// Sorted textual row multiset — row order is not part of the contract.
std::vector<std::string> RowSet(const Table& table) {
  std::vector<std::string> rows;
  rows.reserve(table.num_rows());
  for (const auto& row : table.rows()) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += "|";
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::string Upper(std::string s) {
  for (char& ch : s) ch = static_cast<char>(std::toupper(ch));
  return s;
}

class Harness {
 public:
  Harness() : scenario_(appsys::GenerateScenario({})), generator_(scenario_) {
    static constexpr Architecture kArchs[] = {
        Architecture::kWfms, Architecture::kUdtf, Architecture::kJavaUdtf};
    for (int a = 0; a < 3; ++a) {
      Result<std::unique_ptr<IntegrationServer>> server =
          IntegrationServer::Create(kArchs[a], scenario_);
      if (server.ok()) servers_[a] = std::move(*server);
      // The row-transport mirror fleet for oracle 5: identical scenario and
      // call sequence, columnar execution off.
      Result<std::unique_ptr<IntegrationServer>> mirror =
          IntegrationServer::Create(kArchs[a], scenario_);
      if (mirror.ok()) {
        (*mirror)->set_columnar_execution(false);
        row_servers_[a] = std::move(*mirror);
      }
    }
  }

  bool RunSeed(std::uint64_t seed) {
    analysis::GeneratedSpec gen = generator_.Generate(seed);
    ++case_count_[static_cast<int>(gen.mapping_case)];
    bool ok = CheckSpec(seed, gen.mapping_case, gen.spec, gen.args);
    if (gen.sibling.has_value()) {
      // The general case's sibling classifies on its own; registration and
      // execution must still agree. Both members live on the same servers,
      // which is exactly the shared-local-function deployment.
      ok = CheckSpec(seed, MappingCase::kGeneral, *gen.sibling,
                     gen.sibling_args) &&
           ok;
    }
    return ok;
  }

  /// Oracle 4: the abort-restores-state check over a generated write spec.
  /// Runs on both fleets — committed writes mutate store state, so the
  /// row-transport mirror must apply the same writes in the same order or
  /// oracle 5's read comparisons would diverge on data, not transport.
  bool RunWriteSeed(std::uint64_t seed) {
    return RunWriteSeedOn(seed, servers_) && RunWriteSeedOn(seed, row_servers_);
  }

  bool RunWriteSeedOn(std::uint64_t seed,
                      std::unique_ptr<IntegrationServer>* fleet) {
    analysis::GeneratedSpec gen = generator_.GenerateWriteSpec(seed);
    const std::string& name = gen.spec.name;
    for (int a = 0; a < 3; ++a) {
      IntegrationServer& server = *fleet[a];
      const std::string arch =
          federation::ArchitectureName(server.architecture());
      Status status = server.RegisterFederatedFunction(gen.spec);
      if (!status.ok()) {
        return Fail(seed, name,
                    arch + " rejected a gated write spec: " + status.ToString());
      }
      const txn::SagaSpecInfo* info = server.saga_runtime().Find(name);
      if (info == nullptr || info->writes.empty()) {
        return Fail(seed, name, arch + " registration built no saga view");
      }

      // Healthy pass: the saga must commit, applying every write once.
      Result<IntegrationServer::TimedResult> committed =
          server.CallFederated(name, gen.args);
      if (!committed.ok()) {
        return Fail(seed, name,
                    arch + " commit pass failed: " +
                        committed.status().ToString());
      }
      std::optional<txn::SagaOutcome> outcome =
          server.saga_runtime().LastOutcome(name);
      if (!outcome.has_value() || outcome->aborted ||
          outcome->steps_applied !=
              static_cast<int64_t>(info->writes.size())) {
        return Fail(seed, name, arch + " commit outcome is not exactly-once");
      }
      ++write_commits_;

      // Abort pass: lose the acknowledgement of one (seed- and
      // architecture-chosen) write. Retries are disabled on these servers,
      // so the coordinator must run backward recovery: the compensations
      // restore every fingerprint while data versions only move forward.
      const txn::SagaStep& faulted =
          info->writes[(seed + static_cast<std::uint64_t>(a)) %
                       info->writes.size()];
      std::map<std::string, std::string> fp_before = Fingerprints(server);
      std::map<std::string, int64_t> ver_before = Versions(server);
      server.fault_injector().InjectTransientFailures(faulted.function, 1);
      Result<IntegrationServer::TimedResult> failed =
          server.CallFederated(name, gen.args);
      server.fault_injector().ClearProfiles();
      if (failed.ok()) {
        return Fail(seed, name,
                    arch + ": lost write acknowledgement did not fail the call");
      }
      outcome = server.saga_runtime().LastOutcome(name);
      if (!outcome.has_value() || !outcome->aborted) {
        return Fail(seed, name, arch + " did not record a saga abort");
      }
      if (outcome->compensations_run != outcome->steps_applied ||
          outcome->compensation_failures != 0) {
        return Fail(seed, name,
                    arch + " backward recovery incomplete (" +
                        std::to_string(outcome->compensations_run) + " of " +
                        std::to_string(outcome->steps_applied) +
                        " applied step(s) compensated)");
      }
      if (Fingerprints(server) != fp_before) {
        return Fail(
            seed, name,
            arch + " abort did not restore the store state fingerprints");
      }
      std::map<std::string, int64_t> ver_after = Versions(server);
      for (const auto& [system, before] : ver_before) {
        if (ver_after[system] < before) {
          return Fail(seed, name,
                      "data version of " + system + " moved backwards");
        }
      }
      if (server.saga_runtime().ledger_size() != 0) {
        return Fail(seed, name, arch + " left dedup ledger entries behind");
      }
      ++write_aborts_;
    }
    return true;
  }

  void PrintReport(std::uint64_t seeds) const {
    std::printf("fedfuzz coverage over %llu seed(s):\n",
                static_cast<unsigned long long>(seeds));
    static constexpr MappingCase kCases[] = {
        MappingCase::kTrivial,         MappingCase::kSimple,
        MappingCase::kIndependent,     MappingCase::kDependentLinear,
        MappingCase::kDependent1N,     MappingCase::kDependentN1,
        MappingCase::kDependentCyclic, MappingCase::kGeneral,
    };
    for (MappingCase c : kCases) {
      std::printf("  %-18s %llu spec(s)\n", federation::MappingCaseName(c),
                  static_cast<unsigned long long>(
                      case_count_[static_cast<int>(c)]));
    }
    std::printf("  executions checked: %llu, bound checks: %llu\n",
                static_cast<unsigned long long>(executions_),
                static_cast<unsigned long long>(bound_checks_));
    std::printf("  saga oracle: %llu commit(s), %llu abort(s) verified\n",
                static_cast<unsigned long long>(write_commits_),
                static_cast<unsigned long long>(write_aborts_));
    std::printf("  columnar oracle: %llu row-vs-columnar comparison(s)\n",
                static_cast<unsigned long long>(columnar_diffs_));
  }

 private:
  bool Fail(std::uint64_t seed, const std::string& spec_name,
            const std::string& what) {
    std::printf("FAIL seed=%llu spec=%s: %s\n",
                static_cast<unsigned long long>(seed), spec_name.c_str(),
                what.c_str());
    return false;
  }

  bool CheckSpec(std::uint64_t seed, MappingCase intended,
                 const federation::FederatedFunctionSpec& spec,
                 const std::vector<Value>& args) {
    IntegrationServer& wfms = *servers_[0];

    // Oracle 1: statically clean and correctly classified.
    std::vector<analysis::Diagnostic> diags =
        analysis::LintSpec(spec, wfms.systems());
    Result<analysis::DataflowResult> dataflow = analysis::RunDataflow(
        spec, wfms.systems(), wfms.model(), analysis::DataflowOptions{});
    if (!dataflow.ok()) {
      return Fail(seed, spec.name,
                  "dataflow analysis failed: " + dataflow.status().ToString());
    }
    for (const analysis::Diagnostic& d : dataflow->diagnostics) {
      diags.push_back(d);
    }
    if (analysis::HasErrors(diags)) {
      return Fail(seed, spec.name,
                  "generated spec has error findings (generator bug):\n" +
                      analysis::FormatDiagnostics(analysis::Filter(
                          diags, analysis::Severity::kError)));
    }
    Result<MappingCase> classified = federation::ClassifySpec(spec);
    if (!classified.ok()) {
      return Fail(seed, spec.name,
                  "classification failed: " + classified.status().ToString());
    }
    if (intended != MappingCase::kGeneral && *classified != intended) {
      return Fail(seed, spec.name,
                  std::string("classified as ") +
                      federation::MappingCaseName(*classified) +
                      ", generator intended " +
                      federation::MappingCaseName(intended));
    }

    // Oracle 2: the support matrix decides registration. The SQL I-UDTF
    // cannot express cycles; the procedural (Java) I-UDTF loops client-side
    // and only the cross-spec general case is beyond it.
    bool expected[3] = {federation::WfmsSupports(*classified),
                        federation::UdtfSupports(*classified),
                        federation::JavaUdtfSupports(*classified)};
    bool registered[3] = {false, false, false};
    for (int a = 0; a < 3; ++a) {
      bool expect = expected[a];
      Status status = servers_[a]->RegisterFederatedFunction(spec);
      if (status.ok() != expect) {
        return Fail(
            seed, spec.name,
            std::string(federation::ArchitectureName(
                servers_[a]->architecture())) +
                (expect ? " rejected a supported spec: " + status.ToString()
                        : " accepted an unsupported (cyclic/general) spec"));
      }
      registered[a] = status.ok();
      // The mirror fleet must make the same registration decision; keep it
      // in lockstep so later executions see identical server state.
      Status mirror_status = row_servers_[a]->RegisterFederatedFunction(spec);
      if (mirror_status.ok() != status.ok()) {
        return Fail(seed, spec.name,
                    std::string(federation::ArchitectureName(
                        servers_[a]->architecture())) +
                        " row-transport mirror disagreed on registration");
      }
    }

    // Tight cardinality bounds: re-run the analysis with the loop count the
    // execution will actually use.
    analysis::DataflowOptions bound_options;
    if (spec.loop.enabled) {
      for (size_t i = 0; i < spec.params.size(); ++i) {
        if (Upper(spec.params[i].name) == Upper(spec.loop.count_param)) {
          bound_options.concrete_loop_count = args[i].AsInt();
        }
      }
    }
    Result<analysis::DataflowResult> bounds = analysis::RunDataflow(
        spec, wfms.systems(), wfms.model(), bound_options);
    if (!bounds.ok()) {
      return Fail(seed, spec.name,
                  "bound analysis failed: " + bounds.status().ToString());
    }

    // Oracle 3: identical results everywhere, observations inside bounds.
    Schema first_schema;
    std::vector<std::string> first_rows;
    int first_arch = -1;
    for (int a = 0; a < 3; ++a) {
      if (!registered[a]) continue;
      IntegrationServer& server = *servers_[a];
      std::map<std::string, int64_t> before = AllCounts(server);
      Result<IntegrationServer::TimedResult> result =
          server.CallFederated(spec.name, args);
      if (!result.ok()) {
        return Fail(seed, spec.name,
                    std::string(federation::ArchitectureName(
                        server.architecture())) +
                        " execution failed: " + result.status().ToString());
      }
      ++executions_;
      std::map<std::string, int64_t> delta = Delta(before, AllCounts(server));

      if (first_arch < 0) {
        first_arch = a;
        first_schema = result->table.schema();
        first_rows = RowSet(result->table);
      } else {
        if (!(result->table.schema() == first_schema)) {
          return Fail(seed, spec.name, "result schema diverges across couplings");
        }
        if (RowSet(result->table) != first_rows) {
          return Fail(seed, spec.name,
                      "result rows diverge across couplings (" +
                          std::to_string(first_rows.size()) + " vs " +
                          std::to_string(result->table.num_rows()) + ")");
        }
      }
      if (!CheckBounds(seed, spec, *bounds, a == 0, result->table.num_rows(),
                       delta)) {
        return false;
      }

      // Oracle 5: the row-transport mirror must produce the same table and
      // the same virtual-time total. Both calls succeeded (the primary was
      // checked above), so the error-divergence exemption does not apply.
      Result<IntegrationServer::TimedResult> mirror =
          row_servers_[a]->CallFederated(spec.name, args);
      if (!mirror.ok()) {
        return Fail(seed, spec.name,
                    std::string(federation::ArchitectureName(
                        servers_[a]->architecture())) +
                        " row-transport mirror failed where columnar "
                        "succeeded: " +
                        mirror.status().ToString());
      }
      ++columnar_diffs_;
      if (!(mirror->table.schema() == result->table.schema())) {
        return Fail(seed, spec.name,
                    "row and columnar transports disagree on the schema");
      }
      if (RowSet(mirror->table) != RowSet(result->table)) {
        // Show the first differing row of each multiset for diagnosis.
        std::vector<std::string> lhs = RowSet(mirror->table);
        std::vector<std::string> rhs = RowSet(result->table);
        auto [li, ri] = std::mismatch(lhs.begin(), lhs.end(), rhs.begin(),
                                      rhs.end());
        std::string detail;
        if (li != lhs.end()) detail += " row=[" + *li + "]";
        if (ri != rhs.end()) detail += " col=[" + *ri + "]";
        return Fail(seed, spec.name,
                    "row and columnar transports disagree on the rows (" +
                        std::to_string(lhs.size()) + " vs " +
                        std::to_string(rhs.size()) + ")" + detail);
      }
      if (mirror->elapsed_us != result->elapsed_us) {
        return Fail(seed, spec.name,
                    "row and columnar transports disagree on virtual time (" +
                        std::to_string(mirror->elapsed_us) + "us vs " +
                        std::to_string(result->elapsed_us) + "us)");
      }
    }
    return true;
  }

  /// Observed row count and per-function call counts against the intervals
  /// the cardinality analysis predicted for this lowering.
  bool CheckBounds(std::uint64_t seed,
                   const federation::FederatedFunctionSpec& spec,
                   const analysis::DataflowResult& bounds, bool wfms_lowering,
                   size_t observed_rows,
                   const std::map<std::string, int64_t>& delta) {
    ++bound_checks_;
    const analysis::dataflow::Interval& rows =
        wfms_lowering ? bounds.result_rows_wfms : bounds.result_rows_udtf;
    if (!rows.Contains(static_cast<int64_t>(observed_rows))) {
      return Fail(seed, spec.name,
                  "observed " + std::to_string(observed_rows) +
                      " result row(s), analysis predicted " + rows.ToString());
    }
    // Sum the per-node invocation intervals per local function.
    std::map<std::string, analysis::dataflow::Interval> predicted;
    for (size_t i = 0; i < bounds.cards.size(); ++i) {
      const federation::SpecCall* call = nullptr;
      for (const federation::SpecCall& c : spec.calls) {
        if (Upper(c.id) == Upper(bounds.call_ids[i])) call = &c;
      }
      if (call == nullptr) continue;
      std::string key = call->system + "." + Upper(call->function);
      const analysis::dataflow::Interval& inv =
          wfms_lowering ? bounds.cards[i].invocations_wfms
                        : bounds.cards[i].invocations_udtf;
      auto [it, inserted] = predicted.emplace(key, inv);
      if (!inserted) it->second = it->second.Add(inv);
    }
    for (const auto& [key, observed] : delta) {
      auto it = predicted.find(key);
      if (it == predicted.end()) {
        return Fail(seed, spec.name,
                    "observed calls to " + key +
                        " which the analysis did not predict at all");
      }
      if (!it->second.Contains(observed)) {
        return Fail(seed, spec.name,
                    "observed " + std::to_string(observed) + " call(s) to " +
                        key + ", analysis predicted " + it->second.ToString());
      }
    }
    for (const auto& [key, interval] : predicted) {
      if (interval.min > 0 && delta.find(key) == delta.end()) {
        return Fail(seed, spec.name,
                    "analysis predicted at least " +
                        std::to_string(interval.min) + " call(s) to " + key +
                        " but none were observed");
      }
    }
    return true;
  }

  appsys::Scenario scenario_;
  analysis::SpecGenerator generator_;
  std::unique_ptr<IntegrationServer> servers_[3];
  std::unique_ptr<IntegrationServer> row_servers_[3];
  std::uint64_t case_count_[8] = {};
  std::uint64_t executions_ = 0;
  std::uint64_t bound_checks_ = 0;
  std::uint64_t write_commits_ = 0;
  std::uint64_t write_aborts_ = 0;
  std::uint64_t columnar_diffs_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      options.seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--start" && i + 1 < argc) {
      options.start = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--report") {
      options.report = true;
    } else {
      std::fprintf(stderr,
                   "usage: fedfuzz [--seeds N] [--start S] [--report]\n");
      return 64;
    }
  }

  Harness harness;
  std::uint64_t failures = 0;
  for (std::uint64_t seed = options.start; seed < options.start + options.seeds;
       ++seed) {
    if (!harness.RunSeed(seed)) ++failures;
    if (!harness.RunWriteSeed(seed)) ++failures;
  }
  if (options.report) harness.PrintReport(options.seeds);
  if (failures > 0) {
    std::printf("fedfuzz: %llu of %llu seed(s) FAILED\n",
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(options.seeds));
    return 1;
  }
  std::printf("fedfuzz: %llu seed(s) passed\n",
              static_cast<unsigned long long>(options.seeds));
  return 0;
}
