#include "fedlint_cli.h"

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/code_registry.h"
#include "analysis/corpus.h"
#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"
#include "analysis/sql_lint.h"
#include "analysis/workflow_lint.h"
#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "fdbs/database.h"
#include "federation/classify.h"
#include "federation/sample_scenario.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"
#include "sim/latency.h"
#include "sim/system_state.h"
#include "wfms/engine.h"

namespace fedflow::tools {

namespace {

using namespace fedflow::analysis;  // NOLINT(google-build-using-namespace)

__attribute__((format(printf, 1, 2)))
std::string Sprintf(const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

constexpr char kUsage[] =
    "usage: fedlint [--list-corpus | --corpus NAME | --corpus-all]\n"
    "               [--format=text|json|sarif] [--strict]\n"
    "\n"
    "  (no mode)       lint the full sample scenario, all five passes\n"
    "  --list-corpus   print the corpus entry names (malformed + semantic)\n"
    "  --corpus NAME   lint one corpus entry\n"
    "  --corpus-all    lint every corpus entry\n"
    "  --format=F      output format: text (default), json, sarif\n"
    "  --strict        exit 1 when the findings are warnings only\n";

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatJson(const std::vector<Diagnostic>& diags) {
  size_t errors = 0;
  size_t warnings = 0;
  std::string out = "{\n  \"findings\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    (d.severity == Severity::kError ? errors : warnings) += 1;
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": \"";
    out += SeverityName(d.severity);
    out += "\", \"code\": \"" + JsonEscape(d.code) + "\", \"location\": \"" +
           JsonEscape(d.location) + "\", \"message\": \"" +
           JsonEscape(d.message) + "\", \"note\": \"" + JsonEscape(d.note) +
           "\"}";
  }
  out += diags.empty() ? "],\n" : "\n  ],\n";
  out += "  \"errors\": " + std::to_string(errors) +
         ",\n  \"warnings\": " + std::to_string(warnings) + "\n}\n";
  return out;
}

/// SARIF 2.1.0: the diagnostic-code registry becomes the tool's rule table,
/// each finding a result whose logical location is the diagnostic path.
std::string FormatSarif(const std::vector<Diagnostic>& diags) {
  std::string out =
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"fedlint\",\n"
      "          \"rules\": [";
  const std::vector<CodeInfo>& codes = AllDiagnosticCodes();
  for (size_t i = 0; i < codes.size(); ++i) {
    const CodeInfo& info = codes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": \"" + JsonEscape(info.code) +
           "\", \"name\": \"" + JsonEscape(info.name) +
           "\", \"shortDescription\": {\"text\": \"" +
           JsonEscape(info.summary) +
           "\"}, \"defaultConfiguration\": {\"level\": \"" +
           std::string(info.severity == Severity::kError ? "error"
                                                         : "warning") +
           "\"}}";
  }
  out +=
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    std::string text = d.message;
    if (!d.note.empty()) text += "; note: " + d.note;
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"ruleId\": \"" + JsonEscape(d.code) +
           "\", \"level\": \"" +
           std::string(d.severity == Severity::kError ? "error" : "warning") +
           "\", \"message\": {\"text\": \"" + JsonEscape(text) +
           "\"}, \"locations\": [{\"logicalLocations\": "
           "[{\"fullyQualifiedName\": \"" +
           JsonEscape(d.location) + "\"}]}]}";
  }
  out += diags.empty() ? "]\n" : "\n      ]\n";
  out +=
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

/// The registry the sample scenario and the corpus lint against.
Result<appsys::AppSystemRegistry> SampleRegistry() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PdmSystem>(scenario)));
  return systems;
}

/// Resolves A-UDTF names across every registered application system, as the
/// FDBS catalog does after RegisterAccessUdtfs().
UdtfLookup MakeLookup(const appsys::AppSystemRegistry& systems) {
  return [&systems](const std::string& name) -> std::optional<UdtfSignature> {
    for (const std::string& sys_name : systems.Names()) {
      Result<appsys::AppSystem*> sys = systems.Get(sys_name);
      if (!sys.ok()) continue;
      Result<const appsys::LocalFunction*> fn = (*sys)->GetFunction(name);
      if (fn.ok()) {
        return UdtfSignature{(*fn)->params, (*fn)->result_schema};
      }
    }
    return std::nullopt;
  };
}

/// A compile failure rendered as a diagnostic, so the machine formats carry
/// it like any other finding (same FF304 family the plan pass uses).
Diagnostic CompileFailure(const std::string& spec_name,
                          const std::string& what, const Status& status) {
  return Diagnostic{Severity::kError, kPlanCompileFailed, "spec:" + spec_name,
                    what + " failed: " + status.ToString(), ""};
}

/// Lints one sample spec through all five passes.
std::vector<Diagnostic> LintSampleSpec(
    const federation::FederatedFunctionSpec& spec,
    const appsys::AppSystemRegistry& systems, const sim::LatencyModel& model,
    federation::WfmsCoupling* wfms, federation::UdtfCoupling* udtf,
    const UdtfLookup& lookup) {
  // Pass 1: the spec itself.
  std::vector<Diagnostic> diags = LintSpec(spec, systems);

  // Pass 2: the workflow process compiled from it.
  Result<federation::CompiledProcess> compiled = wfms->CompileProcess(spec);
  if (compiled.ok()) {
    std::vector<Diagnostic> wf = LintProcess(compiled->process, systems);
    diags.insert(diags.end(), wf.begin(), wf.end());
  } else {
    diags.push_back(
        CompileFailure(spec.name, "workflow compilation", compiled.status()));
  }

  // Pass 3: plan consistency — the optimized plan's lowerings must agree
  // with the IR on call set, ordering, classification and sunk predicates
  // (FF3xx). Checked in both passthrough and fully-optimized modes.
  {
    std::vector<Diagnostic> pl = LintPlan(spec, systems, model);
    diags.insert(diags.end(), pl.begin(), pl.end());
    plan::PlanOptions optimized;
    optimized.parallelize = true;
    optimized.reorder = true;
    optimized.sink_predicates = true;
    std::vector<Diagnostic> po = LintPlan(spec, systems, model, optimized);
    diags.insert(diags.end(), po.begin(), po.end());
  }

  // Pass 4: the generated I-UDTF SQL (loop specs are WfMS-only).
  if (!spec.loop.enabled) {
    Result<std::string> sql = udtf->CompileIUdtfSql(spec);
    if (sql.ok()) {
      std::vector<Diagnostic> sq = LintIUdtfSql(*sql, lookup);
      diags.insert(diags.end(), sq.begin(), sq.end());
    } else {
      diags.push_back(
          CompileFailure(spec.name, "I-UDTF compilation", sql.status()));
    }
  }

  // Pass 5: the dataflow analyses, under the paper's default deployment
  // (single controller, no deadline).
  Result<DataflowResult> df = RunDataflow(spec, systems, model);
  if (df.ok()) {
    diags.insert(diags.end(), df->diagnostics.begin(), df->diagnostics.end());
  } else {
    diags.push_back(
        CompileFailure(spec.name, "dataflow analysis", df.status()));
  }
  return diags;
}

/// Lints a semantic corpus entry: spec shape first, then the dataflow pass
/// under the entry's deployment facts.
std::vector<Diagnostic> LintSemanticEntry(
    const SemanticCorpusEntry& entry, const appsys::AppSystemRegistry& systems,
    const sim::LatencyModel& model) {
  std::vector<Diagnostic> diags = LintSpec(entry.spec, systems);
  if (HasErrors(diags)) return diags;  // not "syntactically clean" after all
  DataflowOptions options;
  options.deadline_us = entry.deadline_us;
  options.retry = entry.retry;
  options.pool_max_size = entry.pool_max_size;
  options.per_tenant_quota = entry.per_tenant_quota;
  options.parallelize = entry.parallelize;
  Result<DataflowResult> df = RunDataflow(entry.spec, systems, model, options);
  if (df.ok()) {
    diags.insert(diags.end(), df->diagnostics.begin(), df->diagnostics.end());
  } else {
    diags.push_back(
        CompileFailure(entry.spec.name, "dataflow analysis", df.status()));
  }
  return diags;
}

int ExitCode(const std::vector<Diagnostic>& diags, bool strict) {
  if (HasErrors(diags)) return 2;
  if (!diags.empty()) return strict ? 1 : 0;
  return 0;
}

int RunListCorpus(std::string* output) {
  for (const CorpusEntry& e : MalformedSpecCorpus()) {
    *output += Sprintf("%-26s %s at %s\n", e.name.c_str(),
                                 e.expected_code.c_str(),
                                 e.expected_location.c_str());
  }
  for (const SemanticCorpusEntry& e : SemanticSpecCorpus()) {
    *output += Sprintf("%-26s %s at %s\n", e.name.c_str(),
                                 e.expected_code.c_str(),
                                 e.expected_location.c_str());
  }
  return 0;
}

int RunCorpus(const CliOptions& options, std::string* output) {
  Result<appsys::AppSystemRegistry> systems = SampleRegistry();
  if (!systems.ok()) {
    *output += "error: " + systems.status().ToString() + "\n";
    return 2;
  }
  sim::LatencyModel model;
  const bool all = options.mode == LintMode::kCorpusAll;

  std::vector<Diagnostic> diags;
  bool matched = false;
  for (const CorpusEntry& e : MalformedSpecCorpus()) {
    if (!all && e.name != options.corpus_name) continue;
    matched = true;
    if (options.format == OutputFormat::kText) {
      *output += Sprintf("corpus entry '%s' (expect %s):\n",
                                   e.name.c_str(), e.expected_code.c_str());
    }
    std::vector<Diagnostic> found = LintSpec(e.spec, *systems);
    if (options.format == OutputFormat::kText) {
      *output += FormatFindings(found, options.format);
    }
    diags.insert(diags.end(), found.begin(), found.end());
  }
  for (const SemanticCorpusEntry& e : SemanticSpecCorpus()) {
    if (!all && e.name != options.corpus_name) continue;
    matched = true;
    if (options.format == OutputFormat::kText) {
      *output += Sprintf("corpus entry '%s' (expect %s):\n",
                                   e.name.c_str(), e.expected_code.c_str());
    }
    std::vector<Diagnostic> found = LintSemanticEntry(e, *systems, model);
    if (options.format == OutputFormat::kText) {
      *output += FormatFindings(found, options.format);
    }
    diags.insert(diags.end(), found.begin(), found.end());
  }
  if (!matched) {
    *output += "unknown corpus entry; try --list-corpus\n";
    return 2;
  }
  if (options.format != OutputFormat::kText) {
    *output += FormatFindings(diags, options.format);
  }
  // Corpus entries exist to be defective: findings here are the expected
  // outcome, and the exit code says "defects found" like the sample mode.
  return ExitCode(diags, options.strict);
}

int RunSample(const CliOptions& options, std::string* output) {
  Result<appsys::AppSystemRegistry> systems = SampleRegistry();
  if (!systems.ok()) {
    *output += "error: " + systems.status().ToString() + "\n";
    return 2;
  }

  // Infrastructure the couplings compile against (nothing is executed).
  sim::LatencyModel model;
  sim::SystemState state;
  fdbs::Database db;
  federation::Controller controller(&*systems, &model);
  wfms::Engine engine{wfms::EngineOptions{}};
  federation::WfmsCoupling wfms(&db, &engine, &*systems, &controller, &model,
                                &state);
  federation::UdtfCoupling udtf(&db, &*systems, &controller, &model, &state);
  UdtfLookup lookup = MakeLookup(*systems);

  std::vector<Diagnostic> diags;
  for (const federation::FederatedFunctionSpec& spec :
       federation::AllSampleSpecs()) {
    std::vector<Diagnostic> found =
        LintSampleSpec(spec, *systems, model, &wfms, &udtf, lookup);
    if (options.format == OutputFormat::kText) {
      if (found.empty()) {
        *output += Sprintf("%-22s clean\n", spec.name.c_str());
      } else {
        *output += Sprintf("%-22s %zu finding(s)\n",
                                     spec.name.c_str(), found.size());
        *output += FormatFindings(found, options.format);
      }
    }
    diags.insert(diags.end(), found.begin(), found.end());
  }

  if (options.format != OutputFormat::kText) {
    *output += FormatFindings(diags, options.format);
    return ExitCode(diags, options.strict);
  }
  size_t errors = Filter(diags, Severity::kError).size();
  size_t warnings = diags.size() - errors;
  *output += Sprintf(
      "sample scenario: %zu error(s), %zu warning(s) across all passes\n",
      errors, warnings);
  return ExitCode(diags, options.strict);
}

}  // namespace

bool ParseCliArgs(const std::vector<std::string>& args, CliOptions* options,
                  std::string* error) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--list-corpus") {
      options->mode = LintMode::kListCorpus;
    } else if (arg == "--corpus-all") {
      options->mode = LintMode::kCorpusAll;
    } else if (arg == "--corpus") {
      if (i + 1 >= args.size()) {
        *error = std::string("--corpus needs an entry name\n") + kUsage;
        return false;
      }
      options->mode = LintMode::kCorpusOne;
      options->corpus_name = args[++i];
    } else if (arg == "--strict") {
      options->strict = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string fmt = arg.substr(9);
      if (fmt == "text") {
        options->format = OutputFormat::kText;
      } else if (fmt == "json") {
        options->format = OutputFormat::kJson;
      } else if (fmt == "sarif") {
        options->format = OutputFormat::kSarif;
      } else {
        *error = "unknown format '" + fmt + "'\n" + kUsage;
        return false;
      }
    } else {
      *error = "unknown argument '" + arg + "'\n" + kUsage;
      return false;
    }
  }
  return true;
}

std::string FormatFindings(const std::vector<analysis::Diagnostic>& diags,
                           OutputFormat format) {
  switch (format) {
    case OutputFormat::kJson:
      return FormatJson(diags);
    case OutputFormat::kSarif:
      return FormatSarif(diags);
    case OutputFormat::kText:
      break;
  }
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.ToString() + "\n";
  }
  return out;
}

int RunFedlint(const CliOptions& options, std::string* output) {
  switch (options.mode) {
    case LintMode::kListCorpus:
      return RunListCorpus(output);
    case LintMode::kCorpusOne:
    case LintMode::kCorpusAll:
      return RunCorpus(options, output);
    case LintMode::kSample:
      break;
  }
  return RunSample(options, output);
}

}  // namespace fedflow::tools
