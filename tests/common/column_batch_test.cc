// ColumnBatch: the row <-> columnar round-trip contract. Conversion must be
// lossless for every DataType, for NULLs, for empty batches, and for columns
// whose values do not match the declared type (the generic degradation) —
// the invariant the columnar execution path's "bit-identical results"
// guarantee rests on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/column_batch.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/value.h"

namespace fedflow {
namespace {

/// Exact equality: same type AND same payload. Stricter than Value::Compare
/// (which treats Int(3) and BigInt(3) as equal).
bool SameValue(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kBool:
      return a.AsBool() == b.AsBool();
    case DataType::kInt:
      return a.AsInt() == b.AsInt();
    case DataType::kBigInt:
      return a.AsBigInt() == b.AsBigInt();
    case DataType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case DataType::kVarchar:
      return a.AsVarchar() == b.AsVarchar();
  }
  return false;
}

void ExpectRowsEqual(const std::vector<Row>& expected,
                     const std::vector<Row>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t r = 0; r < expected.size(); ++r) {
    ASSERT_EQ(expected[r].size(), actual[r].size()) << "row " << r;
    for (size_t c = 0; c < expected[r].size(); ++c) {
      EXPECT_TRUE(SameValue(expected[r][c], actual[r][c]))
          << "row " << r << " col " << c << ": "
          << expected[r][c].ToString() << " vs " << actual[r][c].ToString();
    }
  }
}

/// A value of the given type drawn from `rng`, NULL with probability 1/4.
Value RandomValue(DataType type, Rng* rng) {
  if (rng->Chance(0.25)) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(rng->Chance(0.5));
    case DataType::kInt:
      return Value::Int(static_cast<int32_t>(rng->Uniform(-1000000, 1000000)));
    case DataType::kBigInt:
      return Value::BigInt(rng->Uniform(INT64_MIN / 4, INT64_MAX / 4));
    case DataType::kDouble:
      return Value::Double(rng->UniformDouble() * 1e9 - 5e8);
    case DataType::kVarchar:
      return Value::Varchar(rng->Word(rng->Uniform(0, 12)));
  }
  return Value::Null();
}

constexpr DataType kAllTypes[] = {DataType::kNull,   DataType::kBool,
                                  DataType::kInt,    DataType::kBigInt,
                                  DataType::kDouble, DataType::kVarchar};

TEST(ColumnBatchTest, RoundTripEveryTypeWithNulls) {
  Rng rng(0x5eed);
  for (DataType type : kAllTypes) {
    Schema schema;
    schema.AddColumn("c", type);
    for (int trial = 0; trial < 8; ++trial) {
      const size_t n = static_cast<size_t>(rng.Uniform(0, 40));
      std::vector<Row> rows;
      for (size_t i = 0; i < n; ++i) rows.push_back({RandomValue(type, &rng)});
      const std::vector<Row> expected = rows;

      ColumnBatch batch = ColumnBatch::FromRows(schema, std::move(rows));
      ASSERT_EQ(batch.num_rows(), n);
      ExpectRowsEqual(expected, batch.ToRows());
      // ToRows must not consume the batch; TakeRows empties it.
      ExpectRowsEqual(expected, batch.TakeRows());
      EXPECT_EQ(batch.num_rows(), 0u);
    }
  }
}

TEST(ColumnBatchTest, RoundTripMixedSchemaAllTypesAtOnce) {
  Rng rng(0xc01);
  Schema schema;
  for (DataType type : kAllTypes) {
    schema.AddColumn("c" + std::to_string(static_cast<int>(type)), type);
  }
  for (int trial = 0; trial < 16; ++trial) {
    const size_t n = static_cast<size_t>(rng.Uniform(0, 64));
    std::vector<Row> rows;
    for (size_t i = 0; i < n; ++i) {
      Row row;
      for (DataType type : kAllTypes) row.push_back(RandomValue(type, &rng));
      rows.push_back(std::move(row));
    }
    const std::vector<Row> expected = rows;
    ColumnBatch batch = ColumnBatch::FromRowsCopy(schema, rows);
    ExpectRowsEqual(expected, rows);  // copy variant leaves the source intact
    ExpectRowsEqual(expected, batch.ToRows());
  }
}

TEST(ColumnBatchTest, RoundTripEmptyBatch) {
  Schema schema;
  schema.AddColumn("a", DataType::kInt);
  schema.AddColumn("b", DataType::kVarchar);
  ColumnBatch batch = ColumnBatch::FromRows(schema, {});
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.num_columns(), 2u);
  EXPECT_TRUE(batch.ToRows().empty());
  EXPECT_TRUE(batch.TakeRows().empty());
}

TEST(ColumnBatchTest, MistypedValuesDegradeToGenericLosslessly) {
  // Declared kInt, but the rows carry every other type — the column must
  // degrade to the generic representation and still round-trip exactly.
  Schema schema;
  schema.AddColumn("c", DataType::kInt);
  std::vector<Row> rows = {
      {Value::Int(1)},           {Value::BigInt(1) },
      {Value::Double(1.5)},      {Value::Varchar("one")},
      {Value::Bool(true)},       {Value::Null()},
      {Value::Int(-2147483647)},
  };
  const std::vector<Row> expected = rows;
  ColumnBatch batch = ColumnBatch::FromRows(schema, std::move(rows));
  EXPECT_TRUE(batch.column(0).is_generic());
  ExpectRowsEqual(expected, batch.ToRows());
  ExpectRowsEqual(expected, batch.TakeRows());
}

TEST(ColumnBatchTest, TypedColumnStaysTypedAndNullMapMatches) {
  Schema schema;
  schema.AddColumn("c", DataType::kBigInt);
  std::vector<Row> rows = {{Value::BigInt(7)},
                           {Value::Null()},
                           {Value::BigInt(-9)}};
  ColumnBatch batch = ColumnBatch::FromRows(schema, std::move(rows));
  const ColumnData& col = batch.column(0);
  EXPECT_FALSE(col.is_generic());
  ASSERT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_FALSE(col.IsNull(2));
  EXPECT_EQ(col.bigint_data()[0], 7);
  EXPECT_EQ(col.bigint_data()[2], -9);
}

TEST(ColumnBatchTest, CastToMatchesScalarCastSemantics) {
  // Column-wise CastTo must agree with Value::CastTo on every value,
  // including NULL propagation, numeric widening, and varchar parses.
  Rng rng(0xca57);
  for (DataType from : kAllTypes) {
    for (DataType to : kAllTypes) {
      ColumnData col(from);
      std::vector<Value> vals;
      for (int i = 0; i < 24; ++i) {
        Value v = RandomValue(from, &rng);
        if (from == DataType::kVarchar && !v.is_null()) {
          // Mix in parseable digit strings so varchar->int casts succeed.
          if (rng.Chance(0.5)) {
            v = Value::Varchar(std::to_string(rng.Uniform(-999, 999)));
          } else {
            continue;  // skip unparseable words for numeric targets
          }
        }
        vals.push_back(v);
        col.AppendValue(v);
      }
      auto casted = col.CastTo(to);
      // Compute the scalar expectation; the column result must agree on both
      // the status and every value.
      bool scalar_ok = true;
      std::vector<Value> expected;
      for (const Value& v : vals) {
        auto r = v.CastTo(to);
        if (!r.ok()) {
          scalar_ok = false;
          break;
        }
        expected.push_back(*r);
      }
      ASSERT_EQ(casted.ok(), scalar_ok)
          << DataTypeName(from) << "->" << DataTypeName(to) << ": "
          << (casted.ok() ? "ok" : casted.status().ToString());
      if (!casted.ok()) continue;
      ASSERT_EQ(casted->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(SameValue(expected[i], casted->GetValue(i)))
            << DataTypeName(from) << "->" << DataTypeName(to) << " row " << i;
      }
    }
  }
}

TEST(ColumnBatchTest, GatherSelectsInOrder) {
  Schema schema;
  schema.AddColumn("v", DataType::kInt);
  schema.AddColumn("s", DataType::kVarchar);
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value::Int(i), Value::Varchar("r" + std::to_string(i))});
  }
  ColumnBatch batch = ColumnBatch::FromRows(schema, std::move(rows));
  ColumnBatch picked = batch.Gather({8, 1, 1, 5});
  ASSERT_EQ(picked.num_rows(), 4u);
  std::vector<Row> got = picked.ToRows();
  EXPECT_EQ(got[0][0].AsInt(), 8);
  EXPECT_EQ(got[1][0].AsInt(), 1);
  EXPECT_EQ(got[2][1].AsVarchar(), "r1");
  EXPECT_EQ(got[3][1].AsVarchar(), "r5");
}

TEST(ColumnBatchTest, AppendSplicedRepeatsPartialRow) {
  // The lateral-join inner loop: partial row (a, _, _) spliced with a
  // two-row fn result occupying columns [1, 3).
  Schema out;
  out.AddColumn("a", DataType::kInt);
  out.AddColumn("x", DataType::kInt);
  out.AddColumn("y", DataType::kVarchar);
  Schema fn_schema;
  fn_schema.AddColumn("x", DataType::kInt);
  fn_schema.AddColumn("y", DataType::kVarchar);
  ColumnBatch fn = ColumnBatch::FromRows(
      fn_schema,
      {{Value::Int(10), Value::Varchar("p")},
       {Value::Int(20), Value::Varchar("q")}});
  ColumnBatch acc(out);
  Row partial = {Value::Int(7), Value::Null(), Value::Null()};
  acc.AppendSpliced(partial, std::move(fn), /*offset=*/1);
  ASSERT_EQ(acc.num_rows(), 2u);
  std::vector<Row> got = acc.ToRows();
  EXPECT_EQ(got[0][0].AsInt(), 7);
  EXPECT_EQ(got[0][1].AsInt(), 10);
  EXPECT_EQ(got[0][2].AsVarchar(), "p");
  EXPECT_EQ(got[1][0].AsInt(), 7);
  EXPECT_EQ(got[1][1].AsInt(), 20);
  EXPECT_EQ(got[1][2].AsVarchar(), "q");
}

TEST(ColumnBatchTest, AppendBatchMovesAcrossRepresentations) {
  Rng rng(0xabba);
  Schema schema;
  schema.AddColumn("v", DataType::kVarchar);
  // First batch typed, second degraded (contains an int) — the append must
  // still produce a lossless whole.
  std::vector<Row> first = {{Value::Varchar("aa")}, {Value::Null()}};
  std::vector<Row> second = {{Value::Varchar("bb")}, {Value::Int(3)}};
  std::vector<Row> expected = first;
  expected.insert(expected.end(), second.begin(), second.end());
  ColumnBatch acc = ColumnBatch::FromRows(schema, std::move(first));
  acc.AppendBatch(ColumnBatch::FromRows(schema, std::move(second)));
  ASSERT_EQ(acc.num_rows(), 4u);
  ExpectRowsEqual(expected, acc.ToRows());
}

}  // namespace
}  // namespace fedflow
