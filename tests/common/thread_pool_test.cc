#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace fedflow {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        // Notify under the lock: the waiter may otherwise satisfy its
        // predicate and destroy cv while notify_all is still running.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10),
              [&] { return counter.load() == kTasks; });
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsDegradesToInlineExecution) {
  // Regression: a pool of size 0 used to clamp to 1 worker; callers wanting
  // deterministic single-threaded execution (the load harness) got a real
  // thread instead. Size 0 now starts no workers and Submit runs the task
  // inline on the calling thread, synchronously — no deadlock, no thread.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  std::thread::id ran_on{};
  int order = 0;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); order = 1; });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(order, 1);  // completed before Submit returned
  // Re-entrant inline submission also completes (no queue involved).
  int nested = 0;
  pool.Submit([&] { pool.Submit([&] { nested = 7; }); });
  EXPECT_EQ(nested, 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }
  // After destruction all enqueued tasks ran (workers drain before exit).
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, StressManyProducersEnqueueFromPoolThreads) {
  // Re-entrant Submit: producer tasks running ON pool threads fan out child
  // tasks into the same pool. Exercises the queue under contention and the
  // lock ordering of Submit vs WorkerLoop (Submit must never be called while
  // a worker holds the queue mutex).
  ThreadPool pool(4);
  constexpr int kProducers = 16;
  constexpr int kChildrenPerProducer = 64;
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int p = 0; p < kProducers; ++p) {
    pool.Submit([&] {
      for (int c = 0; c < kChildrenPerProducer; ++c) {
        pool.Submit([&] {
          if (done.fetch_add(1) + 1 == kProducers * kChildrenPerProducer) {
            std::lock_guard<std::mutex> lock(mu);
            cv.notify_all();
          }
        });
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  bool finished = cv.wait_for(lock, std::chrono::seconds(30), [&] {
    return done.load() == kProducers * kChildrenPerProducer;
  });
  EXPECT_TRUE(finished);
  EXPECT_EQ(done.load(), kProducers * kChildrenPerProducer);
}

TEST(ThreadPoolTest, SubmitDuringShutdownRunsTaskInline) {
  // Regression: a Submit racing the destructor could enqueue a task no
  // worker would ever pop — it silently never ran. Late tasks now run
  // inline on the submitting thread.
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* raw = pool.get();
  std::mutex mu;
  std::condition_variable cv;
  bool worker_pinned = false;
  bool release = false;
  // Pin the single worker so the destructor blocks in join() with the
  // shutdown flag already set.
  raw->Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    worker_pinned = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_pinned; });
  }
  std::thread destroyer([&] { pool.reset(); });
  while (!raw->shutdown_started()) {
    std::this_thread::yield();
  }
  // The destructor has begun; a Submit now must still run the task —
  // synchronously, on this thread.
  std::thread::id ran_on{};
  raw->Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  destroyer.join();
}

TEST(ThreadPoolTest, ShutdownStartedFalseWhileAlive) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.shutdown_started());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int at_barrier = 0;
  // Two tasks that can only finish if both are running at the same time.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      ++at_barrier;
      cv.notify_all();
      cv.wait_for(lock, std::chrono::seconds(10),
                  [&] { return at_barrier == 2; });
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  bool both = cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return at_barrier == 2; });
  EXPECT_TRUE(both);
}

}  // namespace
}  // namespace fedflow
