#include "common/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedflow {
namespace {

TEST(CodecTest, ValueRoundTripAllTypes) {
  const std::vector<Value> values = {
      Value::Null(),        Value::Bool(true),      Value::Bool(false),
      Value::Int(-17),      Value::BigInt(1LL << 50), Value::Double(3.25),
      Value::Varchar(""),   Value::Varchar("hello 'quoted'"),
  };
  for (const Value& v : values) {
    ByteWriter w;
    w.PutValue(v);
    ByteReader r(w.buffer());
    auto decoded = r.GetValue();
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(CodecTest, RowRoundTrip) {
  Row row = {Value::Int(1), Value::Null(), Value::Varchar("x")};
  ByteWriter w;
  w.PutRow(row);
  ByteReader r(w.buffer());
  auto decoded = r.GetRow();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
}

TEST(CodecTest, TableRoundTrip) {
  Schema schema;
  schema.AddColumn("a", DataType::kInt);
  schema.AddColumn("b", DataType::kVarchar);
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::Varchar("one")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(2), Value::Null()}).ok());
  ByteWriter w;
  w.PutTable(t);
  ByteReader r(w.buffer());
  auto decoded = r.GetTable();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, t);
}

TEST(CodecTest, EmptyTableRoundTrip) {
  Schema schema;
  schema.AddColumn("only", DataType::kDouble);
  Table t(schema);
  ByteWriter w;
  w.PutTable(t);
  ByteReader r(w.buffer());
  auto decoded = r.GetTable();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, t);
}

TEST(CodecTest, TruncatedBufferFails) {
  ByteWriter w;
  w.PutValue(Value::Varchar("a long enough string"));
  std::vector<uint8_t> truncated(w.buffer().begin(), w.buffer().end() - 3);
  ByteReader r(truncated);
  EXPECT_FALSE(r.GetValue().ok());
}

TEST(CodecTest, BadTagFails) {
  std::vector<uint8_t> buf = {0xFF};
  ByteReader r(buf);
  auto v = r.GetValue();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kExecutionError);
}

TEST(CodecTest, StringWithEmbeddedNulBytes) {
  std::string s("a\0b\0c", 5);
  ByteWriter w;
  w.PutString(s);
  ByteReader r(w.buffer());
  auto decoded = r.GetString();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, s);
}

// Property sweep: random rows survive the round trip bit-exactly.
class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, RandomRowRoundTrip) {
  Rng rng(GetParam());
  Row row;
  const int n = static_cast<int>(rng.Uniform(0, 12));
  for (int i = 0; i < n; ++i) {
    switch (rng.Uniform(0, 4)) {
      case 0:
        row.push_back(Value::Null());
        break;
      case 1:
        row.push_back(Value::Int(static_cast<int32_t>(
            rng.Uniform(INT32_MIN, INT32_MAX))));
        break;
      case 2:
        row.push_back(Value::BigInt(static_cast<int64_t>(rng.Next())));
        break;
      case 3:
        row.push_back(Value::Double(rng.UniformDouble() * 1e9));
        break;
      default:
        row.push_back(Value::Varchar(rng.Word(rng.Uniform(0, 30))));
        break;
    }
  }
  ByteWriter w;
  w.PutRow(row);
  ByteReader r(w.buffer());
  auto decoded = r.GetRow();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, row);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace fedflow
