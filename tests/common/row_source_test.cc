// RowBatch / RowSource streaming protocol: batching boundaries, the
// empty-batch-means-exhausted contract, the Table adapters in both
// directions, and PipelineStats residency accounting.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/row_source.h"
#include "common/table.h"

namespace fedflow {
namespace {

Schema OneIntColumn() {
  Schema s;
  s.AddColumn("v", DataType::kInt);
  return s;
}

Table IntTable(int n) {
  Table t(OneIntColumn());
  for (int i = 0; i < n; ++i) t.AppendRowUnchecked({Value::Int(i)});
  return t;
}

TEST(RowSourceTest, TableSourceStreamsInBatches) {
  RowSourcePtr src = MakeTableSource(IntTable(5), /*batch_size=*/2);
  EXPECT_EQ(src->schema().num_columns(), 1u);
  std::vector<size_t> sizes;
  int next = 0;
  while (true) {
    auto batch = src->Next();
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    sizes.push_back(batch->size());
    for (const Row& r : batch->rows) EXPECT_EQ(r[0].AsInt(), next++);
  }
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 2, 1}));
  // Exhaustion is sticky: further pulls keep returning empty batches.
  auto again = src->Next();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(RowSourceTest, ZeroBatchSizeIsClampedToOne) {
  RowSourcePtr src = MakeTableSource(IntTable(3), /*batch_size=*/0);
  auto batch = src->Next();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 1u);
}

TEST(RowSourceTest, BorrowedTableSourceLeavesTableIntact) {
  Table t = IntTable(4);
  RowSourcePtr src = MakeBorrowedTableSource(&t, /*batch_size=*/3);
  auto drained = DrainToTable(src);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->num_rows(), 4u);
  // The borrowed table still owns its rows (the source copied them).
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.rows()[3][0].AsInt(), 3);
}

TEST(RowSourceTest, GeneratorSourceStopsAtFirstEmptyBatch) {
  auto calls = std::make_shared<int>(0);
  RowSourcePtr src = MakeGeneratorSource(
      OneIntColumn(), [calls]() -> Result<RowBatch> {
        ++*calls;
        RowBatch batch;
        if (*calls == 1) batch.rows.push_back({Value::Int(7)});
        return batch;  // empty from the second call on
      });
  auto first = src->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ(first->rows[0][0].AsInt(), 7);
  ASSERT_TRUE(src->Next().ok());  // empty: generator returns no rows
  ASSERT_TRUE(src->Next().ok());  // sticky: generator must NOT be re-invoked
  EXPECT_EQ(*calls, 2);
}

TEST(RowSourceTest, GeneratorSourcePropagatesErrors) {
  RowSourcePtr src = MakeGeneratorSource(
      OneIntColumn(),
      []() -> Result<RowBatch> { return Status::ExecutionError("boom"); });
  auto batch = src->Next();
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("boom"), std::string::npos);
}

TEST(RowSourceTest, DrainToTableRoundTrip) {
  Table original = IntTable(10);
  auto drained = DrainToTable(MakeTableSource(Table(original), 3));
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(*drained == original);
}

TEST(RowSourceTest, PipelineStatsTracksPeakResidency) {
  PipelineStats stats;
  stats.Acquire(100);
  stats.Acquire(50);
  EXPECT_EQ(stats.resident_rows, 150u);
  EXPECT_EQ(stats.peak_resident_rows, 150u);
  stats.Release(120);
  EXPECT_EQ(stats.resident_rows, 30u);
  stats.Acquire(40);
  EXPECT_EQ(stats.resident_rows, 70u);
  // Peak is a high-water mark: it does not decay on Release.
  EXPECT_EQ(stats.peak_resident_rows, 150u);
  // Release clamps at zero instead of underflowing.
  stats.Release(1000);
  EXPECT_EQ(stats.resident_rows, 0u);

  RowBatch batch;
  batch.rows.resize(3, Row(1, Value::Int(0)));
  stats.Emitted(batch);
  stats.Emitted(batch);
  EXPECT_EQ(stats.batches_emitted, 2u);
  EXPECT_EQ(stats.rows_emitted, 6u);
}

}  // namespace
}  // namespace fedflow
