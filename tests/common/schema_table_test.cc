#include <gtest/gtest.h>

#include "common/schema.h"
#include "common/table.h"

namespace fedflow {
namespace {

Schema TwoColumns() {
  Schema s;
  s.AddColumn("id", DataType::kInt);
  s.AddColumn("name", DataType::kVarchar);
  return s;
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  Schema s = TwoColumns();
  EXPECT_EQ(*s.IndexOf("ID"), 0u);
  EXPECT_EQ(*s.IndexOf("Name"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, FindColumnDetectsAmbiguity) {
  Schema s;
  s.AddColumn("x", DataType::kInt);
  s.AddColumn("X", DataType::kVarchar);
  auto r = s.FindColumn("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindColumnNotFoundMentionsSchema) {
  Schema s = TwoColumns();
  auto r = s.FindColumn("zzz");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("id INT"), std::string::npos);
}

TEST(SchemaTest, ConcatAppendsColumns) {
  Schema s = TwoColumns().Concat(TwoColumns());
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column(2).name, "id");
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TwoColumns().ToString(), "id INT, name VARCHAR");
}

TEST(TableTest, AppendRowChecksArity) {
  Table t(TwoColumns());
  EXPECT_FALSE(t.AppendRow({Value::Int(1)}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Varchar("a")}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AppendRowCoercesTypes) {
  Table t(TwoColumns());
  ASSERT_TRUE(t.AppendRow({Value::BigInt(7), Value::Int(9)}).ok());
  EXPECT_EQ(t.rows()[0][0].type(), DataType::kInt);
  EXPECT_EQ(t.rows()[0][1].type(), DataType::kVarchar);
  EXPECT_EQ(t.rows()[0][1].AsVarchar(), "9");
}

TEST(TableTest, AppendRowRejectsBadCoercion) {
  Table t(TwoColumns());
  EXPECT_FALSE(t.AppendRow({Value::Varchar("abc"), Value::Varchar("x")}).ok());
}

TEST(TableTest, AppendRowAllowsNulls) {
  Table t(TwoColumns());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_TRUE(t.rows()[0][0].is_null());
}

TEST(TableTest, AtBoundsChecked) {
  Table t(TwoColumns());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::Varchar("a")}).ok());
  EXPECT_TRUE(t.At(0, 1).ok());
  EXPECT_FALSE(t.At(1, 0).ok());
  EXPECT_FALSE(t.At(0, 2).ok());
}

TEST(TableTest, ScalarAt00) {
  Table t(TwoColumns());
  EXPECT_FALSE(t.ScalarAt00().ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(5), Value::Varchar("x")}).ok());
  EXPECT_EQ(t.ScalarAt00()->AsInt(), 5);
}

TEST(TableTest, ScalarAt00EmptyTableIsExecutionError) {
  Table no_rows(TwoColumns());
  auto r = no_rows.ScalarAt00();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(r.status().message().find("empty table"), std::string::npos);
  // A table with rows but zero columns is just as empty at (0, 0).
  Table no_columns;
  EXPECT_FALSE(no_columns.ScalarAt00().ok());
}

TEST(TableTest, ScalarAt00IgnoresExtraRowsAndColumns) {
  // Documented relaxed semantics: only (0, 0) matters; callers requiring an
  // exact 1x1 shape must check num_rows() themselves.
  Table t(TwoColumns());
  ASSERT_TRUE(t.AppendRow({Value::Int(5), Value::Varchar("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(9), Value::Varchar("y")}).ok());
  auto r = t.ScalarAt00();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt(), 5);
}

TEST(TableTest, AppendTableRowsSplicesEqualSchemas) {
  Table a(TwoColumns());
  ASSERT_TRUE(a.AppendRow({Value::Int(1), Value::Varchar("x")}).ok());
  Table b(TwoColumns());
  ASSERT_TRUE(b.AppendRow({Value::Int(2), Value::Varchar("y")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int(3), Value::Varchar("z")}).ok());
  ASSERT_TRUE(a.AppendTableRows(std::move(b)).ok());
  ASSERT_EQ(a.num_rows(), 3u);
  EXPECT_EQ(a.rows()[2][0].AsInt(), 3);
  EXPECT_EQ(b.num_rows(), 0u);  // donor rows are moved out
}

TEST(TableTest, AppendTableRowsCoercesAcrossSchemas) {
  Table a(TwoColumns());
  Schema wider;
  wider.AddColumn("id", DataType::kBigInt);
  wider.AddColumn("name", DataType::kVarchar);
  Table b(wider);
  ASSERT_TRUE(b.AppendRow({Value::BigInt(7), Value::Varchar("w")}).ok());
  // Unequal schemas fall back to per-row AppendRow with value coercion.
  ASSERT_TRUE(a.AppendTableRows(std::move(b)).ok());
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.rows()[0][0].type(), DataType::kInt);
  EXPECT_EQ(a.rows()[0][0].AsInt(), 7);
}

TEST(TableTest, AppendTableRowsArityMismatchFails) {
  Table a(TwoColumns());
  Schema one;
  one.AddColumn("id", DataType::kInt);
  Table b(one);
  ASSERT_TRUE(b.AppendRow({Value::Int(1)}).ok());
  EXPECT_FALSE(a.AppendTableRows(std::move(b)).ok());
}

TEST(TableTest, ToStringRendersAsciiTable) {
  Table t(TwoColumns());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::Varchar("abc")}).ok());
  std::string s = t.ToString();
  EXPECT_NE(s.find("| id | name |"), std::string::npos);
  EXPECT_NE(s.find("| 1  | abc  |"), std::string::npos);
  EXPECT_NE(s.find("1 row(s)"), std::string::npos);
}

TEST(TableTest, SameRowsAnyOrder) {
  Table a(TwoColumns());
  Table b(TwoColumns());
  ASSERT_TRUE(a.AppendRow({Value::Int(1), Value::Varchar("x")}).ok());
  ASSERT_TRUE(a.AppendRow({Value::Int(2), Value::Varchar("y")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int(2), Value::Varchar("y")}).ok());
  ASSERT_TRUE(b.AppendRow({Value::Int(1), Value::Varchar("x")}).ok());
  EXPECT_TRUE(Table::SameRowsAnyOrder(a, b));
  EXPECT_FALSE(a == b);  // order-sensitive structural equality
  ASSERT_TRUE(b.AppendRow({Value::Int(3), Value::Varchar("z")}).ok());
  EXPECT_FALSE(Table::SameRowsAnyOrder(a, b));
}

TEST(TableTest, SameRowsAnyOrderRequiresEqualSchema) {
  Table a(TwoColumns());
  Schema other;
  other.AddColumn("id", DataType::kBigInt);
  other.AddColumn("name", DataType::kVarchar);
  Table b(other);
  EXPECT_FALSE(Table::SameRowsAnyOrder(a, b));
}

}  // namespace
}  // namespace fedflow
