#include "common/vclock.h"

#include <gtest/gtest.h>

namespace fedflow {
namespace {

TEST(TimeBreakdownTest, AddAccumulatesPerStep) {
  TimeBreakdown b;
  b.Add("x", 10);
  b.Add("y", 5);
  b.Add("x", 7);
  EXPECT_EQ(b.Of("x"), 17);
  EXPECT_EQ(b.Of("y"), 5);
  EXPECT_EQ(b.Of("z"), 0);
  EXPECT_EQ(b.Total(), 22);
}

TEST(TimeBreakdownTest, PreservesInsertionOrder) {
  TimeBreakdown b;
  b.Add("first", 1);
  b.Add("second", 1);
  b.Add("first", 1);
  b.Add("third", 1);
  auto names = b.StepNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "first");
  EXPECT_EQ(names[1], "second");
  EXPECT_EQ(names[2], "third");
}

TEST(TimeBreakdownTest, MergeAddsOtherEntries) {
  TimeBreakdown a;
  a.Add("x", 10);
  TimeBreakdown b;
  b.Add("x", 5);
  b.Add("y", 2);
  a.Merge(b);
  EXPECT_EQ(a.Of("x"), 15);
  EXPECT_EQ(a.Of("y"), 2);
}

TEST(TimeBreakdownTest, PercentRoundsToNearest) {
  TimeBreakdown b;
  b.Add("a", 1);
  b.Add("b", 2);
  EXPECT_EQ(b.PercentOf("a"), 33);
  EXPECT_EQ(b.PercentOf("b"), 67);
  EXPECT_EQ(b.PercentOf("missing"), 0);
}

TEST(TimeBreakdownTest, PercentOfEmptyIsZero) {
  TimeBreakdown b;
  EXPECT_EQ(b.PercentOf("x"), 0);
}

TEST(TimeBreakdownTest, ToStringShowsUsAndPercent) {
  TimeBreakdown b;
  b.Add("step", 100);
  std::string s = b.ToString();
  EXPECT_NE(s.find("step"), std::string::npos);
  EXPECT_NE(s.find("100 us (100%)"), std::string::npos);
}

TEST(SimClockTest, ChargeAdvancesAndRecords) {
  SimClock clock;
  clock.Charge("a", 10);
  clock.Charge("b", 5);
  EXPECT_EQ(clock.now(), 15);
  EXPECT_EQ(clock.breakdown().Of("a"), 10);
  EXPECT_EQ(clock.breakdown().Total(), 15);
}

TEST(SimClockTest, ChargeWorkRecordsWithoutAdvancing) {
  SimClock clock;
  clock.ChargeWork("parallel", 100);
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.breakdown().Of("parallel"), 100);
}

TEST(SimClockTest, AdvanceToOnlyMovesForward) {
  SimClock clock;
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.now(), 50);
  clock.AdvanceTo(20);
  EXPECT_EQ(clock.now(), 50);
}

TEST(SimClockTest, ParallelBranchesModeledAsMaxPlusWork) {
  // Two parallel branches of 30 and 40 us: elapsed advances by 40, work
  // records 70.
  SimClock clock;
  VTime start = clock.now();
  clock.ChargeWork("branches", 30);
  clock.ChargeWork("branches", 40);
  clock.AdvanceTo(start + std::max<VDuration>(30, 40));
  EXPECT_EQ(clock.now(), 40);
  EXPECT_EQ(clock.breakdown().Of("branches"), 70);
}

TEST(SimClockTest, ResetClearsEverything) {
  SimClock clock;
  clock.Charge("a", 10);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.breakdown().Total(), 0);
}

}  // namespace
}  // namespace fedflow
