#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace fedflow {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::NotFound("table t");
  EXPECT_EQ(st.ToString(), "not found: table t");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status st = Status::TypeError("bad cast").WithContext("column c");
  EXPECT_EQ(st.message(), "column c: bad cast");
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st = Status::OK().WithContext("ignored");
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.message(), "");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueUnsafe();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  FEDFLOW_ASSIGN_OR_RETURN(int h, Half(x));
  FEDFLOW_RETURN_NOT_OK(Status::OK());
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status st = UseMacros(7, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fedflow
