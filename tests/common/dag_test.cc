#include "common/dag.h"

#include <gtest/gtest.h>

namespace fedflow::dag {
namespace {

TEST(StableTopologicalSortTest, IndependentNodesKeepDeclarationOrder) {
  TopoSort sorted = StableTopologicalSort({{}, {}, {}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted.order, (std::vector<size_t>{0, 1, 2}));
}

TEST(StableTopologicalSortTest, RespectsDependencies) {
  // 0 depends on 2, 1 depends on 0: only valid order is 2, 0, 1.
  TopoSort sorted = StableTopologicalSort({{2}, {0}, {}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted.order, (std::vector<size_t>{2, 0, 1}));
}

TEST(StableTopologicalSortTest, LowestReadyIndexWinsTies) {
  // 3 ready up front but 0 declared first; 2 unlocks after 0.
  TopoSort sorted = StableTopologicalSort({{}, {}, {0}, {}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted.order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(StableTopologicalSortTest, ToleratesDuplicateEdges) {
  TopoSort sorted = StableTopologicalSort({{1, 1, 1}, {}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted.order, (std::vector<size_t>{1, 0}));
}

TEST(StableTopologicalSortTest, ReportsCycleMembers) {
  // 1 <-> 2 cycle; 3 sits behind it; 0 is free.
  TopoSort sorted = StableTopologicalSort({{}, {2}, {1}, {2}});
  EXPECT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.order, (std::vector<size_t>{0}));
  EXPECT_EQ(sorted.cyclic, (std::vector<size_t>{1, 2, 3}));
}

TEST(StableTopologicalSortTest, SelfReferenceIsCyclic) {
  TopoSort sorted = StableTopologicalSort({{0}});
  EXPECT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.cyclic, (std::vector<size_t>{0}));
}

TEST(StableTopologicalSortTest, EmptyGraph) {
  TopoSort sorted = StableTopologicalSort({});
  EXPECT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted.order.empty());
}

TEST(ReachabilityTest, TransitiveClosure) {
  // 0 -> 1 -> 2, 3 detached.
  std::vector<std::vector<bool>> reach = Reachability({{1}, {2}, {}, {}});
  EXPECT_TRUE(reach[0][1]);
  EXPECT_TRUE(reach[0][2]);
  EXPECT_TRUE(reach[1][2]);
  EXPECT_FALSE(reach[2][0]);
  EXPECT_FALSE(reach[0][3]);
  EXPECT_FALSE(reach[3][0]);
}

TEST(ReachabilityTest, SelfReachableOnlyOnCycle) {
  std::vector<std::vector<bool>> reach = Reachability({{1}, {0}, {}});
  EXPECT_TRUE(reach[0][0]);
  EXPECT_TRUE(reach[1][1]);
  EXPECT_FALSE(reach[2][2]);
}

}  // namespace
}  // namespace fedflow::dag
