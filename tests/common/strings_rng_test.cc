#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/strings.h"

namespace fedflow {
namespace {

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToUpper("aBc_1"), "ABC_1");
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("z"), "z");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT 1", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("select", "SELECT"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WordHasRequestedLength) {
  Rng rng(13);
  EXPECT_EQ(rng.Word(8).size(), 8u);
  EXPECT_EQ(rng.Word(0).size(), 0u);
}

}  // namespace
}  // namespace fedflow
