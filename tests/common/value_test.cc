#include "common/value.h"

#include <gtest/gtest.h>

namespace fedflow {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_EQ(Value::BigInt(1LL << 40).AsBigInt(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Varchar("abc").AsVarchar(), "abc");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(1).type(), DataType::kInt);
  EXPECT_EQ(Value::BigInt(1).type(), DataType::kBigInt);
  EXPECT_EQ(Value::Double(1).type(), DataType::kDouble);
  EXPECT_EQ(Value::Varchar("").type(), DataType::kVarchar);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Varchar("hi").ToString(), "hi");
}

TEST(ValueTest, ToInt64Widens) {
  EXPECT_EQ(*Value::Int(7).ToInt64(), 7);
  EXPECT_EQ(*Value::BigInt(9).ToInt64(), 9);
  EXPECT_EQ(*Value::Bool(true).ToInt64(), 1);
  EXPECT_EQ(*Value::Double(3.9).ToInt64(), 3);
  EXPECT_FALSE(Value::Varchar("x").ToInt64().ok());
  EXPECT_FALSE(Value::Null().ToInt64().ok());
}

TEST(ValueTest, CastNullYieldsNull) {
  auto v = Value::Null().CastTo(DataType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ValueTest, CastIntToBigIntAndBack) {
  auto big = Value::Int(123).CastTo(DataType::kBigInt);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->AsBigInt(), 123);
  auto back = big->CastTo(DataType::kInt);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsInt(), 123);
}

TEST(ValueTest, CastBigIntOverflowToIntFails) {
  auto r = Value::BigInt(1LL << 40).CastTo(DataType::kInt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, CastStringToNumbers) {
  EXPECT_EQ(Value::Varchar("17").CastTo(DataType::kInt)->AsInt(), 17);
  EXPECT_EQ(Value::Varchar("-3").CastTo(DataType::kBigInt)->AsBigInt(), -3);
  EXPECT_DOUBLE_EQ(Value::Varchar("2.5").CastTo(DataType::kDouble)->AsDouble(),
                   2.5);
  EXPECT_FALSE(Value::Varchar("17x").CastTo(DataType::kInt).ok());
  EXPECT_FALSE(Value::Varchar("").CastTo(DataType::kInt).ok());
}

TEST(ValueTest, CastToVarcharRendersValue) {
  EXPECT_EQ(Value::Int(5).CastTo(DataType::kVarchar)->AsVarchar(), "5");
  EXPECT_EQ(Value::Bool(true).CastTo(DataType::kVarchar)->AsVarchar(), "TRUE");
}

TEST(ValueTest, CastToSameTypeIsIdentity) {
  auto v = Value::Varchar("x").CastTo(DataType::kVarchar);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsVarchar(), "x");
}

TEST(ValueTest, SqlEqualsTreatsNullAsUnequal) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Int(1).SqlEquals(Value::Null()));
  EXPECT_TRUE(Value::Int(1).SqlEquals(Value::Int(1)));
  EXPECT_TRUE(Value::Int(1).SqlEquals(Value::BigInt(1)));  // cross-width
  EXPECT_TRUE(Value::Int(2).SqlEquals(Value::Double(2.0)));
}

TEST(ValueTest, CompareNumericCrossTypes) {
  EXPECT_EQ(*Value::Int(1).Compare(Value::BigInt(2)), -1);
  EXPECT_EQ(*Value::Double(2.5).Compare(Value::Int(2)), 1);
  EXPECT_EQ(*Value::Int(3).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(*Value::Varchar("a").Compare(Value::Varchar("b")), -1);
  EXPECT_EQ(*Value::Varchar("b").Compare(Value::Varchar("a")), 1);
  EXPECT_EQ(*Value::Varchar("a").Compare(Value::Varchar("a")), 0);
}

TEST(ValueTest, CompareNullSortsFirst) {
  EXPECT_EQ(*Value::Null().Compare(Value::Int(0)), -1);
  EXPECT_EQ(*Value::Int(0).Compare(Value::Null()), 1);
  EXPECT_EQ(*Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareIncomparableTypesFails) {
  EXPECT_FALSE(Value::Varchar("1").Compare(Value::Int(1)).ok());
}

TEST(ValueTest, HashConsistentWithCrossTypeEquality) {
  // Equal numerics across representations must land in the same bucket for
  // hash joins.
  EXPECT_EQ(Value::Int(7).Hash(), Value::BigInt(7).Hash());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::BigInt(1));  // structural, not SQL
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (DataType t : {DataType::kBool, DataType::kInt, DataType::kBigInt,
                     DataType::kDouble, DataType::kVarchar}) {
    auto parsed = DataTypeFromName(DataTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(DataTypeTest, AliasesAccepted) {
  EXPECT_EQ(*DataTypeFromName("integer"), DataType::kInt);
  EXPECT_EQ(*DataTypeFromName("long"), DataType::kBigInt);
  EXPECT_EQ(*DataTypeFromName("string"), DataType::kVarchar);
  EXPECT_EQ(*DataTypeFromName("FLOAT"), DataType::kDouble);
  EXPECT_FALSE(DataTypeFromName("blob").ok());
}

}  // namespace
}  // namespace fedflow
