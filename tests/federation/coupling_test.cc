// Unit tests of both couplings: the generated I-UDTF SQL, the compiled
// process definitions, the controller, and the SQL/MED wrapper adapter.
#include <gtest/gtest.h>

#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "federation/binding.h"
#include "federation/controller.h"
#include "federation/sample_scenario.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"
#include "sql/parser.h"
#include "wfms/fdl.h"

namespace fedflow::federation {
namespace {

class CouplingTest : public ::testing::Test {
 protected:
  static wfms::EngineOptions EngineOpts(const sim::LatencyModel& model) {
    wfms::EngineOptions opts;
    opts.navigation_cost_us = model.wf_navigation_us;
    opts.container_cost_us = model.wf_container_us;
    opts.helper_cost_us = model.wf_helper_us;
    return opts;
  }

  CouplingTest()
      : scenario_(appsys::GenerateScenario({})),
        controller_(&systems_, &model_),
        engine_(EngineOpts(model_)),
        udtf_(&db_, &systems_, &controller_, &model_, &state_),
        wfms_(&db_, &engine_, &systems_, &controller_, &model_, &state_) {
    (void)systems_.Add(std::make_shared<appsys::StockKeepingSystem>(scenario_));
    (void)systems_.Add(std::make_shared<appsys::PurchasingSystem>(scenario_));
    (void)systems_.Add(std::make_shared<appsys::PdmSystem>(scenario_));
    controller_.Start();
  }

  appsys::Scenario scenario_;
  appsys::AppSystemRegistry systems_;
  sim::LatencyModel model_;
  sim::SystemState state_;
  fdbs::Database db_;
  Controller controller_;
  wfms::Engine engine_;
  UdtfCoupling udtf_;
  WfmsCoupling wfms_;
};

// --- binding ------------------------------------------------------------------

TEST_F(CouplingTest, BindSpecAcceptsAllSamples) {
  for (const FederatedFunctionSpec& spec : AllSampleSpecs()) {
    EXPECT_TRUE(BindSpec(spec, systems_).ok()) << spec.name;
  }
}

TEST_F(CouplingTest, BindSpecRejectsUnknownSystemFunctionAndColumn) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.calls[0].system = "erp";
  EXPECT_FALSE(BindSpec(spec, systems_).ok());

  spec = GibKompNrSpec();
  spec.calls[0].function = "NoSuchFn";
  EXPECT_FALSE(BindSpec(spec, systems_).ok());

  spec = GibKompNrSpec();
  spec.outputs[0].column = "Ghost";
  EXPECT_FALSE(BindSpec(spec, systems_).ok());
}

TEST_F(CouplingTest, BindSpecChecksCallArity) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.calls[0].args.push_back(SpecArg::Constant(Value::Int(1)));
  auto st = BindSpec(spec, systems_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("expects"), std::string::npos);
}

TEST_F(CouplingTest, ResolveResultSchemaAppliesCasts) {
  auto schema = ResolveResultSchema(GetNumberSupp1234Spec(), systems_);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->column(0).name, "Number");
  EXPECT_EQ(schema->column(0).type, DataType::kBigInt);
}

TEST_F(CouplingTest, NodeColumnTypeResolvesThroughSignature) {
  auto t = NodeColumnType(BuySuppCompSpec(), systems_, "DP", "Answer");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, DataType::kVarchar);
}

// --- UDTF coupling: generated SQL ----------------------------------------------

TEST_F(CouplingTest, GeneratedBuySuppCompSqlMatchesPaperShape) {
  auto sql = udtf_.CompileIUdtfSql(BuySuppCompSpec());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // The generated statement mirrors the paper's CREATE FUNCTION verbatim in
  // structure: parameters referenced as BuySuppComp.X, five lateral
  // TABLE(...) references, outputs projected from the last call.
  EXPECT_NE(sql->find("CREATE FUNCTION BuySuppComp (SupplierNo INT, "
                      "CompName VARCHAR)"),
            std::string::npos);
  EXPECT_NE(sql->find("RETURNS TABLE (Answer VARCHAR)"), std::string::npos);
  EXPECT_NE(sql->find("TABLE (GetQuality(BuySuppComp.SupplierNo)) AS GQ"),
            std::string::npos);
  EXPECT_NE(sql->find("TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG"),
            std::string::npos);
  EXPECT_NE(sql->find("TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP"),
            std::string::npos);
  // And it reparses with our own SQL frontend.
  EXPECT_TRUE(sql::Parse(*sql).ok());
}

TEST_F(CouplingTest, GeneratedSimpleCaseUsesCastAndConstant) {
  auto sql = udtf_.CompileIUdtfSql(GetNumberSupp1234Spec());
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("BIGINT(GN.Number)"), std::string::npos);
  EXPECT_NE(sql->find("GetNumber(1234, GetNumberSupp1234.CompNo)"),
            std::string::npos);
}

TEST_F(CouplingTest, GeneratedIndependentCaseHasJoinPredicate) {
  auto sql = udtf_.CompileIUdtfSql(GetSubCompDiscountsSpec());
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("WHERE GSCD.SubCompNo=GCS4D.CompNo"), std::string::npos);
}

TEST_F(CouplingTest, GeneratedSqlEmitsTopologicalOrder) {
  // Even if the spec lists the dependent call first, the FROM clause lists
  // providers before consumers.
  FederatedFunctionSpec spec = GetSuppQualSpec();
  std::swap(spec.calls[0], spec.calls[1]);
  auto sql = udtf_.CompileIUdtfSql(spec);
  ASSERT_TRUE(sql.ok());
  EXPECT_LT(sql->find("GetSupplierNo"), sql->find("GetQuality"));
}

TEST_F(CouplingTest, CyclicSpecUnsupportedByUdtf) {
  auto sql = udtf_.CompileIUdtfSql(AllCompNamesSpec());
  ASSERT_FALSE(sql.ok());
  EXPECT_EQ(sql.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(sql.status().message().find("cyclic"), std::string::npos);
}

TEST_F(CouplingTest, StringConstantsEscapedInGeneratedSql) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.params.clear();
  spec.calls[0].args[0] = SpecArg::Constant(Value::Varchar("o'ring"));
  auto sql = udtf_.CompileIUdtfSql(spec);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("'o''ring'"), std::string::npos);
  EXPECT_TRUE(sql::Parse(*sql).ok());
}

TEST_F(CouplingTest, RegisterFederatedFunctionMakesItQueryable) {
  ASSERT_TRUE(udtf_.RegisterAccessUdtfs().ok());
  ASSERT_TRUE(udtf_.RegisterFederatedFunction(GibKompNrSpec()).ok());
  auto result =
      db_.Execute("SELECT G.Nr FROM TABLE (GibKompNr('brakepad')) AS G");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows()[0][0].AsInt(), 17);
}

TEST_F(CouplingTest, AccessUdtfRegistrationIsIdempotentlyRejected) {
  ASSERT_TRUE(udtf_.RegisterAccessUdtfs().ok());
  EXPECT_FALSE(udtf_.RegisterAccessUdtfs().ok());  // duplicates
}

TEST_F(CouplingTest, AccessUdtfGoesThroughControllerAndCharges) {
  ASSERT_TRUE(udtf_.RegisterAccessUdtfs().ok());
  SimClock clock;
  fdbs::ExecContext ctx;
  ctx.clock = &clock;
  auto result = db_.Execute(
      "SELECT GQ.Qual FROM TABLE (GetQuality(1234)) AS GQ", ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(controller_.dispatch_count(), 1);
  EXPECT_GT(clock.breakdown().Of(sim::steps::kUdtfPrepareA), 0);
  EXPECT_GT(clock.breakdown().Of(sim::steps::kUdtfRmiCalls), 0);
  EXPECT_GT(clock.breakdown().Of(sim::steps::kUdtfProcessActivities), 0);
}

TEST_F(CouplingTest, StoppedControllerFailsAccessUdtfs) {
  ASSERT_TRUE(udtf_.RegisterAccessUdtfs().ok());
  controller_.Stop();
  auto result =
      db_.Execute("SELECT GQ.Qual FROM TABLE (GetQuality(1234)) AS GQ");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("controller"), std::string::npos);
}

// --- WfMS coupling: compiled processes ------------------------------------------

TEST_F(CouplingTest, CompiledBuySuppCompProcessShape) {
  auto compiled = wfms_.CompileProcess(BuySuppCompSpec());
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const wfms::ProcessDefinition& p = compiled->process;
  EXPECT_EQ(p.activities.size(), 6u);  // 5 programs + RESULT helper
  EXPECT_EQ(p.output_activity, "RESULT");
  // The precedence graph of Fig. 1.
  int edges = 0;
  for (const wfms::ControlConnector& c : p.connectors) {
    (void)c;
    ++edges;
  }
  EXPECT_EQ(edges, 5);  // GQ->GG, GR->GG, GG->DP, GCN->DP, DP->RESULT
}

TEST_F(CouplingTest, CompiledIndependentProcessUsesJoinHelper) {
  auto compiled = wfms_.CompileProcess(GetSubCompDiscountsSpec());
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  bool has_join_activity = false;
  for (const wfms::ActivityDef& a : compiled->process.activities) {
    if (a.kind == wfms::ActivityKind::kHelper && a.name == "JOIN1") {
      has_join_activity = true;
    }
  }
  EXPECT_TRUE(has_join_activity);
  ASSERT_EQ(compiled->helpers.size(), 2u);  // join + result
}

TEST_F(CouplingTest, CompiledLoopProcessUsesBlock) {
  auto compiled = wfms_.CompileProcess(AllCompNamesSpec());
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const wfms::ProcessDefinition& p = compiled->process;
  ASSERT_EQ(p.activities.size(), 1u);
  EXPECT_EQ(p.activities[0].kind, wfms::ActivityKind::kBlock);
  EXPECT_EQ(p.activities[0].accumulate, wfms::BlockAccumulate::kUnionAll);
  ASSERT_NE(p.activities[0].exit_condition, nullptr);
  EXPECT_EQ(p.activities[0].exit_condition->ToSql(), "(ITERATION >= MaxNo)");
  // The sub-process got the implicit ITERATION parameter.
  ASSERT_NE(p.activities[0].sub, nullptr);
  EXPECT_EQ(p.activities[0].sub->input_params.back().name, "ITERATION");
}

TEST_F(CouplingTest, CompiledProcessesRenderAsFdl) {
  for (const FederatedFunctionSpec& spec : AllSampleSpecs()) {
    auto compiled = wfms_.CompileProcess(spec);
    ASSERT_TRUE(compiled.ok()) << spec.name << ": " << compiled.status();
    std::string fdl = wfms::ToFdl(compiled->process);
    auto reparsed = wfms::ParseFdl(fdl);
    EXPECT_TRUE(reparsed.ok()) << spec.name << ":\n" << fdl << "\n"
                               << reparsed.status();
  }
}

TEST_F(CouplingTest, WfmsRegisterFederatedFunctionMakesItQueryable) {
  ASSERT_TRUE(wfms_.RegisterFederatedFunction(GetSuppQualReliaSpec()).ok());
  auto result = db_.Execute(
      "SELECT R.Qual, R.Relia FROM TABLE (GetSuppQualRelia(1234)) AS R");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows()[0][0].AsInt(), 9);
  EXPECT_EQ(result->rows()[0][1].AsInt(), 8);
}

TEST_F(CouplingTest, WrapperListsRegisteredFunctions) {
  ASSERT_TRUE(wfms_.RegisterFederatedFunction(GibKompNrSpec()).ok());
  ASSERT_TRUE(wfms_.RegisterFederatedFunction(GetSuppQualSpec()).ok());
  auto fns = wfms_.wrapper()->Functions();
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(wfms_.wrapper()->Name(), "wfms");
}

TEST_F(CouplingTest, WrapperChargesWfmsCostCategories) {
  ASSERT_TRUE(wfms_.RegisterFederatedFunction(GetSuppQualSpec()).ok());
  SimClock clock;
  fdbs::ExecContext ctx;
  ctx.clock = &clock;
  auto result = db_.Execute(
      "SELECT R.Qual FROM TABLE (GetSuppQual('Stark')) AS R", ctx);
  ASSERT_TRUE(result.ok()) << result.status();
  const TimeBreakdown& b = clock.breakdown();
  EXPECT_GT(b.Of(sim::steps::kWfStartUdtf), 0);
  EXPECT_GT(b.Of(sim::steps::kWfProcessStart), 0);
  EXPECT_GT(b.Of(wfms::steps::kProcessActivities), 0);
  EXPECT_GT(b.Of(wfms::steps::kWorkflowNavigation), 0);
  EXPECT_GT(b.Of(sim::steps::kWfController), 0);
  // Cold call charged warm-up.
  EXPECT_GT(b.Of(sim::steps::kWarmup), 0);
}

TEST_F(CouplingTest, StoppedControllerFailsWrapper) {
  ASSERT_TRUE(wfms_.RegisterFederatedFunction(GibKompNrSpec()).ok());
  controller_.Stop();
  auto result =
      db_.Execute("SELECT G.Nr FROM TABLE (GibKompNr('brakepad')) AS G");
  EXPECT_FALSE(result.ok());
}

TEST_F(CouplingTest, ControllerDispatchRoutesAndCounts) {
  auto r = controller_.Dispatch("pdm", "GetCompNo",
                                {Value::Varchar("brakepad")});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 17);
  EXPECT_GT(r->app_cost_us, 0);
  EXPECT_EQ(controller_.dispatch_count(), 1);
  EXPECT_FALSE(controller_.Dispatch("ghost", "f", {}).ok());
}

TEST_F(CouplingTest, DuplicateWfmsRegistrationRejected) {
  ASSERT_TRUE(wfms_.RegisterFederatedFunction(GibKompNrSpec()).ok());
  EXPECT_FALSE(wfms_.RegisterFederatedFunction(GibKompNrSpec()).ok());
}

}  // namespace
}  // namespace fedflow::federation
