// End-to-end tests: both architectures over the full sample scenario.
#include <gtest/gtest.h>

#include "federation/sample_scenario.h"

namespace fedflow::federation {
namespace {

using appsys::ScenarioConfig;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto wfms = MakeSampleServer(Architecture::kWfms);
    ASSERT_TRUE(wfms.ok()) << wfms.status();
    wfms_ = std::move(*wfms);
    auto udtf = MakeSampleServer(Architecture::kUdtf);
    ASSERT_TRUE(udtf.ok()) << udtf.status();
    udtf_ = std::move(*udtf);
  }

  std::unique_ptr<IntegrationServer> wfms_;
  std::unique_ptr<IntegrationServer> udtf_;
};

TEST_F(IntegrationTest, BuySuppCompRunsOnBothArchitectures) {
  const std::string sql =
      "SELECT BSC.Answer FROM TABLE (BuySuppComp(1001, 'brakepad')) AS BSC";
  auto via_wfms = wfms_->Query(sql);
  ASSERT_TRUE(via_wfms.ok()) << via_wfms.status();
  auto via_udtf = udtf_->Query(sql);
  ASSERT_TRUE(via_udtf.ok()) << via_udtf.status();
  ASSERT_EQ(via_wfms->num_rows(), 1u);
  ASSERT_EQ(via_udtf->num_rows(), 1u);
  EXPECT_EQ(via_wfms->rows()[0][0].AsVarchar(),
            via_udtf->rows()[0][0].AsVarchar());
  const std::string answer = via_wfms->rows()[0][0].AsVarchar();
  EXPECT_TRUE(answer == "BUY" || answer == "REJECT") << answer;
}

TEST_F(IntegrationTest, AllSharedFunctionsAgreeAcrossArchitectures) {
  struct Case {
    std::string name;
    std::vector<Value> args;
  };
  const std::vector<Case> cases = {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetNumberSupp1234", {Value::Int(17)}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetSuppQualRelia", {Value::Int(1234)}},
      {"GetSubCompDiscounts", {Value::Int(3), Value::Int(5)}},
      {"GetNoSuppComp", {Value::Varchar("Stark"), Value::Varchar("brakepad")}},
      {"GetSuppInfo", {Value::Varchar("Acme")}},
      {"BuySuppComp", {Value::Int(1234), Value::Varchar("brakepad")}},
  };
  for (const Case& c : cases) {
    auto w = wfms_->CallFederated(c.name, c.args);
    ASSERT_TRUE(w.ok()) << c.name << ": " << w.status();
    auto u = udtf_->CallFederated(c.name, c.args);
    ASSERT_TRUE(u.ok()) << c.name << ": " << u.status();
    EXPECT_TRUE(Table::SameRowsAnyOrder(w->table, u->table))
        << c.name << "\nWfMS:\n"
        << w->table.ToString() << "UDTF:\n"
        << u->table.ToString();
  }
}

TEST_F(IntegrationTest, CyclicFunctionOnlyOnWfms) {
  auto w = wfms_->CallFederated("AllCompNames", {Value::Int(5)});
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->table.num_rows(), 5u);
  EXPECT_EQ(w->table.rows()[4][0].AsVarchar(), "comp_5");

  // The UDTF server never even registered it.
  auto u = udtf_->CallFederated("AllCompNames", {Value::Int(5)});
  EXPECT_FALSE(u.ok());
}

TEST_F(IntegrationTest, TrivialCaseMapsGermanNameToLocalFunction) {
  auto result = udtf_->Query(
      "SELECT GKN.Nr FROM TABLE (GibKompNr('brakepad')) AS GKN");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->rows()[0][0].AsInt(), 17);
}

TEST_F(IntegrationTest, SimpleCaseCastsToBigInt) {
  auto result = wfms_->CallFederated("GetNumberSupp1234", {Value::Int(17)});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->table.num_rows(), 1u);
  EXPECT_EQ(result->table.schema().column(0).type, DataType::kBigInt);
  EXPECT_EQ(result->table.rows()[0][0].AsBigInt(), 100000 + 234 * 100 + 17);
}

TEST_F(IntegrationTest, FederatedFunctionCombinesWithLocalTables) {
  // The paper's motivation: federated functions referencable in SQL together
  // with ordinary tables.
  for (IntegrationServer* server : {wfms_.get(), udtf_.get()}) {
    ASSERT_TRUE(server->Query("CREATE TABLE watchlist (name VARCHAR)").ok());
    ASSERT_TRUE(
        server->Query("INSERT INTO watchlist VALUES ('Stark'), ('Acme')")
            .ok());
    auto result = server->Query(
        "SELECT W.name, GSQ.Qual FROM watchlist AS W, "
        "TABLE (GetSuppQual(W.name)) AS GSQ ORDER BY W.name");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->num_rows(), 2u);
    EXPECT_EQ(result->rows()[0][0].AsVarchar(), "Acme");
  }
}

TEST_F(IntegrationTest, UdtfArchitectureExposesAccessUdtfsDirectly) {
  // The "simple UDTF architecture": applications integrate A-UDTFs manually.
  auto result = udtf_->Query(
      "SELECT DP.Answer "
      "FROM TABLE (GetQuality(1234)) AS GQ, "
      "TABLE (GetReliability(1234)) AS GR, "
      "TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG, "
      "TABLE (GetCompNo('brakepad')) AS GCN, "
      "TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  // Stark: quality 9, reliability 8 -> grade 8 -> BUY.
  EXPECT_EQ(result->rows()[0][0].AsVarchar(), "BUY");
}

TEST_F(IntegrationTest, WfmsElapsedExceedsUdtfElapsed) {
  // Warm both up first.
  (void)wfms_->CallFederated("GetNoSuppComp",
                             {Value::Varchar("Stark"), Value::Varchar("brakepad")});
  (void)udtf_->CallFederated("GetNoSuppComp",
                             {Value::Varchar("Stark"), Value::Varchar("brakepad")});
  auto w = wfms_->CallFederated(
      "GetNoSuppComp", {Value::Varchar("Stark"), Value::Varchar("brakepad")});
  auto u = udtf_->CallFederated(
      "GetNoSuppComp", {Value::Varchar("Stark"), Value::Varchar("brakepad")});
  ASSERT_TRUE(w.ok() && u.ok());
  EXPECT_EQ(w->warmth, sim::SystemState::Warmth::kHot);
  double ratio = static_cast<double>(w->elapsed_us) /
                 static_cast<double>(u->elapsed_us);
  EXPECT_GT(ratio, 2.0) << "WfMS should be roughly 3x slower";
  EXPECT_LT(ratio, 4.5);
}

TEST_F(IntegrationTest, FaultInAppSystemSurfacesThroughBothArchitectures) {
  for (IntegrationServer* server : {wfms_.get(), udtf_.get()}) {
    auto stock = server->systems().Get("stock");
    ASSERT_TRUE(stock.ok());
    (*stock)->InjectFault("GetQuality",
                          Status::ExecutionError("backend down"));
    auto result = server->CallFederated(
        "BuySuppComp", {Value::Int(1001), Value::Varchar("brakepad")});
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("backend down"),
              std::string::npos)
        << result.status();
    (*stock)->InjectFault("GetQuality", Status::OK());
    auto retry = server->CallFederated(
        "BuySuppComp", {Value::Int(1001), Value::Varchar("brakepad")});
    EXPECT_TRUE(retry.ok()) << retry.status();
  }
}

}  // namespace
}  // namespace fedflow::federation
