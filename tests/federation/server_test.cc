// IntegrationServer facade behavior across the three architectures.
#include <gtest/gtest.h>

#include "federation/sample_scenario.h"

namespace fedflow::federation {
namespace {

TEST(ServerTest, ArchitectureNamesStable) {
  EXPECT_STREQ(ArchitectureName(Architecture::kWfms), "WfMS approach");
  EXPECT_STREQ(ArchitectureName(Architecture::kUdtf), "UDTF approach");
  EXPECT_STREQ(ArchitectureName(Architecture::kJavaUdtf),
               "Java UDTF approach");
}

TEST(ServerTest, EngineOnlyPresentUnderWfms) {
  auto wfms = MakeSampleServer(Architecture::kWfms);
  auto udtf = MakeSampleServer(Architecture::kUdtf);
  ASSERT_TRUE(wfms.ok() && udtf.ok());
  EXPECT_NE((*wfms)->engine(), nullptr);
  EXPECT_NE((*wfms)->program_invoker(), nullptr);
  EXPECT_EQ((*udtf)->engine(), nullptr);
  EXPECT_EQ((*udtf)->program_invoker(), nullptr);
}

TEST(ServerTest, QueryTimedOnPlainSqlChargesNothing) {
  auto server = MakeSampleServer(Architecture::kUdtf);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Query("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE((*server)->Query("INSERT INTO t VALUES (1)").ok());
  auto timed = (*server)->QueryTimed("SELECT * FROM t");
  ASSERT_TRUE(timed.ok());
  // Local-only SQL crosses no modeled boundary: zero virtual time.
  EXPECT_EQ(timed->elapsed_us, 0);
}

TEST(ServerTest, CallFederatedQuotesStringArguments) {
  auto server = MakeSampleServer(Architecture::kUdtf);
  ASSERT_TRUE(server.ok());
  // A name containing a quote must survive literal rendering.
  auto r = (*server)->CallFederated("GibKompNr",
                                    {Value::Varchar("o'brien pad")});
  ASSERT_TRUE(r.ok()) << r.status();  // unknown component: empty result
  EXPECT_EQ(r->table.num_rows(), 0u);
}

TEST(ServerTest, RebootResetsWarmth) {
  auto server = MakeSampleServer(Architecture::kUdtf);
  ASSERT_TRUE(server.ok());
  (void)(*server)->CallFederated("GibKompNr", {Value::Varchar("brakepad")});
  EXPECT_EQ((*server)->state().QueryWarmth("GibKompNr"),
            sim::SystemState::Warmth::kHot);
  (*server)->Reboot();
  EXPECT_EQ((*server)->state().QueryWarmth("GibKompNr"),
            sim::SystemState::Warmth::kCold);
  EXPECT_TRUE((*server)->controller().started());
}

TEST(ServerTest, RegisteringUnsupportedSpecFailsCleanly) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  auto server = IntegrationServer::Create(Architecture::kUdtf, scenario);
  ASSERT_TRUE(server.ok());
  auto st = (*server)->RegisterFederatedFunction(AllCompNamesSpec());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(ServerTest, UnknownSystemInSpecFails) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  auto server = IntegrationServer::Create(Architecture::kWfms, scenario);
  ASSERT_TRUE(server.ok());
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.calls[0].system = "sap_r3";
  auto st = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(st.ok());
  // The fedlint gate rejects the spec before any coupling sees it.
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("fedlint"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("FF005"), std::string::npos) << st.message();
}

TEST(ServerTest, ScenarioConfigScalesLoopExperiment) {
  // Bigger component catalog => longer AllCompNames loops still work.
  auto server = MakeSampleServer(Architecture::kWfms, {8, 120, 42});
  ASSERT_TRUE(server.ok());
  auto r = (*server)->CallFederated("AllCompNames", {Value::Int(100)});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.num_rows(), 100u);
}

TEST(ServerTest, WarmthReportedOnTimedCalls) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok());
  auto first = (*server)->CallFederated("GetSuppQual",
                                        {Value::Varchar("Stark")});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->warmth, sim::SystemState::Warmth::kCold);
  auto second = (*server)->CallFederated("GetSuppQual",
                                         {Value::Varchar("Stark")});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->warmth, sim::SystemState::Warmth::kHot);
}

TEST(ServerTest, UnknownInputsDivergenceDocumented) {
  // Known behavioral difference (see EXPERIMENTS.md): unknown supplier name
  // yields an empty table through the UDTF lateral join but a failed process
  // through the WfMS (scalar input from an empty predecessor output).
  auto udtf = MakeSampleServer(Architecture::kUdtf);
  auto wfms = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(udtf.ok() && wfms.ok());
  auto u = (*udtf)->CallFederated("GetSuppQual", {Value::Varchar("Ghost")});
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->table.num_rows(), 0u);
  auto w = (*wfms)->CallFederated("GetSuppQual", {Value::Varchar("Ghost")});
  EXPECT_FALSE(w.ok());
}

}  // namespace
}  // namespace fedflow::federation
