// Integration tests for the caching layer on the integration server: the
// headline compile-exactly-once fix (plans are never rebuilt per call or per
// registration consumer), the opt-in result cache's hot-hit fast path,
// versioned invalidation on private-store writes, reboot/eviction flushes,
// and the guarantee that the default (caching off) leaves every virtual-time
// total untouched.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/plan_cache.h"
#include "cache/result_cache.h"
#include "federation/sample_scenario.h"
#include "plan/optimizer.h"
#include "sim/latency.h"

namespace fedflow::federation {
namespace {

std::unique_ptr<IntegrationServer> MakeServer(
    Architecture arch, ControllerPoolOptions pool_options = {}) {
  auto server = MakeSampleServer(arch, {}, {}, pool_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

IntegrationServer::TimedResult Call(IntegrationServer* server,
                                    const std::string& name,
                                    const std::vector<Value>& args) {
  auto result = server->CallFederated(name, args);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

void WriteQuality(IntegrationServer* server, int supplier, int qual) {
  auto stock = server->systems().Get("stock");
  ASSERT_TRUE(stock.ok());
  auto written =
      (*stock)->Call("SetQuality", {Value::Int(supplier), Value::Int(qual)});
  ASSERT_TRUE(written.ok()) << written.status().ToString();
}

class CachingTest : public ::testing::TestWithParam<Architecture> {};

INSTANTIATE_TEST_SUITE_P(AllArchitectures, CachingTest,
                         ::testing::Values(Architecture::kWfms,
                                           Architecture::kUdtf,
                                           Architecture::kJavaUdtf));

TEST_P(CachingTest, BuildPlanRunsExactlyOncePerRegisteredSpec) {
  // Every BuildPlan during server construction went through the plan cache
  // (one compile per registered spec; the lint gate, dataflow analyses and
  // coupling lowerings all share that instance) ...
  const int64_t before = plan::BuildPlanInvocations();
  auto server = MakeServer(GetParam());
  const int64_t registration = plan::BuildPlanInvocations() - before;
  EXPECT_EQ(registration, server->plan_cache().stats().compiles);
  EXPECT_GT(registration, 0);
  // ... and calling — cold, then repeatedly hot — never compiles again. This
  // is the headline regression test for the per-call recompilation bug.
  const int64_t after_boot = plan::BuildPlanInvocations();
  server->Reboot();
  for (int i = 0; i < 3; ++i) {
    (void)Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
    (void)Call(server.get(), "GetSuppQualRelia", {Value::Int(1234)});
  }
  EXPECT_EQ(plan::BuildPlanInvocations(), after_boot);
}

TEST_P(CachingTest, ParallelizeRegistrationAlsoCompilesOnce) {
  auto server = MakeServer(GetParam());
  // Register a fresh spec under the optimizing passes; the parallelize
  // dataflow analyses and the lowering must reuse the one cached plan.
  FederatedFunctionSpec spec;
  for (const FederatedFunctionSpec& s : SampleSpecs()) {
    if (s.name == "GetSuppQualRelia") spec = s;
  }
  spec.name = "GetSuppQualReliaPar";
  plan::PlanOptions options;
  options.sequential_baseline = true;
  options.parallelize = true;
  const int64_t before = plan::BuildPlanInvocations();
  ASSERT_TRUE(server->RegisterFederatedFunction(spec, options).ok());
  EXPECT_EQ(plan::BuildPlanInvocations() - before, 1);
  const int64_t after = plan::BuildPlanInvocations();
  (void)Call(server.get(), "GetSuppQualReliaPar", {Value::Int(1234)});
  EXPECT_EQ(plan::BuildPlanInvocations(), after);
}

TEST_P(CachingTest, HotCallWithResidentEntryIsServedAtCacheHitCost) {
  auto uncached = MakeServer(GetParam());
  (void)Call(uncached.get(), "GetSuppQual", {Value::Varchar("Stark")});
  auto uncached_hot =
      Call(uncached.get(), "GetSuppQual", {Value::Varchar("Stark")});

  auto server = MakeServer(GetParam());
  server->set_caching_enabled(true);
  auto cold = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  auto hit = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  // The hit skips the modeled call entirely: exactly cache_hit_us, strictly
  // below the uncached hot path, same table, single-step breakdown.
  EXPECT_EQ(hit.elapsed_us, server->model().cache_hit_us);
  EXPECT_LT(hit.elapsed_us, uncached_hot.elapsed_us);
  EXPECT_EQ(hit.table, cold.table);
  EXPECT_EQ(hit.breakdown.Of(sim::steps::kCacheHit),
            server->model().cache_hit_us);
  EXPECT_EQ(hit.breakdown.Total(), hit.elapsed_us);
  EXPECT_GE(server->result_cache().stats().hits, 1);
}

TEST_P(CachingTest, PrivateStoreWriteInvalidatesAndFreshDataIsServed) {
  auto server = MakeServer(GetParam());
  server->set_caching_enabled(true);
  (void)Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  auto hit = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  ASSERT_EQ(hit.elapsed_us, server->model().cache_hit_us);

  // The write bumps stock's data version: the resident entry's key can never
  // match again, so the next call runs the real chain and sees the new data.
  WriteQuality(server.get(), 1234, 77);
  auto fresh = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  EXPECT_NE(fresh.elapsed_us, server->model().cache_hit_us);
  auto qual = fresh.table.ScalarAt00();
  ASSERT_TRUE(qual.ok());
  EXPECT_EQ(qual->AsInt(), 77);
  // ... and re-memoizes at the new version: the call after hits and still
  // serves the post-write value.
  auto rehit = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  EXPECT_EQ(rehit.elapsed_us, server->model().cache_hit_us);
  auto requal = rehit.table.ScalarAt00();
  ASSERT_TRUE(requal.ok());
  EXPECT_EQ(requal->AsInt(), 77);
  EXPECT_GE(server->result_cache().stats().invalidations, 1);
}

TEST_P(CachingTest, RebootFlushesTheResultCache) {
  auto server = MakeServer(GetParam());
  server->set_caching_enabled(true);
  (void)Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  auto hit = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  ASSERT_EQ(hit.elapsed_us, server->model().cache_hit_us);
  ASSERT_GT(server->result_cache().size(), 0u);

  // A rebooted controller is cold; serving its first call from the cache at
  // hot cost would undo the experiment the reboot sets up.
  server->Reboot();
  EXPECT_EQ(server->result_cache().size(), 0u);
  auto cold = Call(server.get(), "GetSuppQual", {Value::Varchar("Stark")});
  EXPECT_NE(cold.elapsed_us, server->model().cache_hit_us);
  EXPECT_GT(cold.elapsed_us, hit.elapsed_us);
}

TEST_P(CachingTest, CachingOffLeavesVirtualTimeUntouched) {
  // Default-off: two fresh servers running the same sequence agree exactly,
  // the result cache is never consulted, and no cache step ever appears in a
  // breakdown — the bit-identity contract all pre-cache goldens pin.
  auto a = MakeServer(GetParam());
  auto b = MakeServer(GetParam());
  for (int i = 0; i < 2; ++i) {
    auto ra = Call(a.get(), "GetSuppQual", {Value::Varchar("Stark")});
    auto rb = Call(b.get(), "GetSuppQual", {Value::Varchar("Stark")});
    EXPECT_EQ(ra.elapsed_us, rb.elapsed_us);
    EXPECT_EQ(ra.breakdown.Of(sim::steps::kCacheProbe), 0);
    EXPECT_EQ(ra.breakdown.Of(sim::steps::kCacheHit), 0);
  }
  EXPECT_EQ(a->result_cache().stats().hits, 0);
  EXPECT_EQ(a->result_cache().stats().misses, 0);
  EXPECT_EQ(a->result_cache().size(), 0u);
}

TEST(CachingPoolTest, EvictedSlotEntriesNeverServeHits) {
  // Pool of two with a warm target of one: returning the second slot evicts
  // it, which must flush the whole-call entries produced on it.
  ControllerPoolOptions pool;
  pool.max_size = 2;
  pool.warm_target = 1;
  auto server = MakeServer(Architecture::kUdtf, pool);
  server->set_caching_enabled(true);

  // Two concurrent leases: the flow on the second (evictable) slot memoizes
  // its result there.
  auto lease1 = server->controller_pool().Checkout("default", "GetSuppQual");
  ASSERT_TRUE(lease1.ok());
  auto lease2 = server->controller_pool().Checkout("default", "GetSuppQual");
  ASSERT_TRUE(lease2.ok());
  auto first = server->CallFederatedOnLease(*lease2, "default", "GetSuppQual",
                                            {Value::Varchar("Stark")});
  ASSERT_TRUE(first.ok());
  ASSERT_GT(server->result_cache().size(), 0u);
  // Releasing beyond the warm target evicts slot 2 and flushes its entries.
  lease2->Release();
  lease1->Release();
  EXPECT_EQ(server->result_cache().size(), 0u);
  EXPECT_GE(server->result_cache().stats().invalidations, 1);
}

}  // namespace
}  // namespace fedflow::federation
