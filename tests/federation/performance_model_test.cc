// Tests asserting the reproduced experimental findings (§4): these encode
// the paper's qualitative claims as invariants of the cost model, so a
// regression in the simulation substrate fails loudly.
#include <gtest/gtest.h>

#include "federation/sample_scenario.h"

namespace fedflow::federation {
namespace {

class PerformanceModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto wfms = MakeSampleServer(Architecture::kWfms);
    ASSERT_TRUE(wfms.ok()) << wfms.status();
    wfms_ = std::move(*wfms);
    auto udtf = MakeSampleServer(Architecture::kUdtf);
    ASSERT_TRUE(udtf.ok()) << udtf.status();
    udtf_ = std::move(*udtf);
  }

  IntegrationServer::TimedResult Hot(IntegrationServer* server,
                                     const std::string& name,
                                     const std::vector<Value>& args) {
    auto a = server->CallFederated(name, args);
    EXPECT_TRUE(a.ok()) << a.status();
    auto b = server->CallFederated(name, args);
    EXPECT_TRUE(b.ok()) << b.status();
    auto c = server->CallFederated(name, args);
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(*c);
  }

  std::unique_ptr<IntegrationServer> wfms_;
  std::unique_ptr<IntegrationServer> udtf_;
};

const std::vector<Value>& NoSuppArgs() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Varchar("brakepad")};
  return args;
}

TEST_F(PerformanceModelTest, WorkRatioAtFig6AnchorIsAboutThree) {
  auto w = Hot(wfms_.get(), "GetNoSuppComp", NoSuppArgs());
  auto u = Hot(udtf_.get(), "GetNoSuppComp", NoSuppArgs());
  double work_ratio = static_cast<double>(w.breakdown.Total()) /
                      static_cast<double>(u.breakdown.Total());
  EXPECT_GT(work_ratio, 2.5) << "paper: ratio ~3";
  EXPECT_LT(work_ratio, 3.6);
}

TEST_F(PerformanceModelTest, Fig6WfmsSharesMatchPaperWithinTolerance) {
  auto w = Hot(wfms_.get(), "GetNoSuppComp", NoSuppArgs());
  const TimeBreakdown& b = w.breakdown;
  struct Expectation {
    const char* step;
    int paper_pct;
    int tolerance;
  };
  const Expectation expectations[] = {
      {"Start UDTF", 9, 4},
      {"Process UDTF", 11, 4},
      {"RMI call", 3, 3},
      {"Start workflow and Java environment", 10, 4},
      {"Process activities", 51, 7},
      {"Workflow", 9, 5},
      {"Controller", 5, 3},
      {"RMI return", 0, 2},
      {"Finish UDTF", 2, 2},
  };
  for (const Expectation& e : expectations) {
    int measured = b.PercentOf(e.step);
    EXPECT_NEAR(measured, e.paper_pct, e.tolerance) << e.step;
  }
}

TEST_F(PerformanceModelTest, Fig6UdtfSharesMatchPaperWithinTolerance) {
  auto u = Hot(udtf_.get(), "GetNoSuppComp", NoSuppArgs());
  const TimeBreakdown& b = u.breakdown;
  struct Expectation {
    const char* step;
    int paper_pct;
    int tolerance;
  };
  const Expectation expectations[] = {
      {"Start I-UDTF", 11, 4},   {"Prepare A-UDTFs", 28, 6},
      {"RMI calls", 24, 6},      {"Controller runs", 0, 2},
      {"Process activities", 6, 6}, {"Finish A-UDTFs", 21, 6},
      {"RMI returns", 1, 2},     {"Finish I-UDTF", 9, 4},
  };
  for (const Expectation& e : expectations) {
    int measured = b.PercentOf(e.step);
    EXPECT_NEAR(measured, e.paper_pct, e.tolerance) << e.step;
  }
}

TEST_F(PerformanceModelTest, ColdWarmHotOrderingHoldsOnBothArchitectures) {
  for (IntegrationServer* server : {wfms_.get(), udtf_.get()}) {
    server->Reboot();
    auto cold = server->CallFederated("BuySuppComp",
                                      {Value::Int(1234),
                                       Value::Varchar("brakepad")});
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(cold->warmth, sim::SystemState::Warmth::kCold);
    server->Reboot();
    (void)server->CallFederated("GibKompNr", {Value::Varchar("brakepad")});
    auto warm = server->CallFederated("BuySuppComp",
                                      {Value::Int(1234),
                                       Value::Varchar("brakepad")});
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->warmth, sim::SystemState::Warmth::kWarm);
    auto hot = server->CallFederated("BuySuppComp",
                                     {Value::Int(1234),
                                      Value::Varchar("brakepad")});
    ASSERT_TRUE(hot.ok());
    EXPECT_EQ(hot->warmth, sim::SystemState::Warmth::kHot);
    EXPECT_GT(cold->elapsed_us, warm->elapsed_us);
    EXPECT_GT(warm->elapsed_us, hot->elapsed_us);
  }
}

TEST_F(PerformanceModelTest, WarmthHistogramsPinHotWarmColdOrdering) {
  // Same ordering claim, but read off the server's metrics registry: the
  // per-warmth elapsed histograms must be disjoint and ordered —
  // every hot call is faster than every warm call is faster than every cold
  // call — and the warmth-transition counters must match the protocol.
  for (IntegrationServer* server : {wfms_.get(), udtf_.get()}) {
    server->metrics().Reset();
    const std::vector<Value> args = {Value::Int(1234),
                                     Value::Varchar("brakepad")};
    for (int round = 0; round < 3; ++round) {
      server->Reboot();
      ASSERT_TRUE(server->CallFederated("BuySuppComp", args).ok());  // cold
      server->Reboot();
      (void)server->CallFederated("GibKompNr", {Value::Varchar("brakepad")});
      ASSERT_TRUE(server->CallFederated("BuySuppComp", args).ok());  // warm
      ASSERT_TRUE(server->CallFederated("BuySuppComp", args).ok());  // hot
    }
    obs::MetricsRegistry& metrics = server->metrics();
    obs::Histogram cold = metrics.histogram("call.elapsed_us.BuySuppComp.cold");
    obs::Histogram warm = metrics.histogram("call.elapsed_us.BuySuppComp.warm");
    obs::Histogram hot = metrics.histogram("call.elapsed_us.BuySuppComp.hot");
    ASSERT_EQ(cold.count(), 3u);
    ASSERT_EQ(warm.count(), 3u);
    ASSERT_EQ(hot.count(), 3u);
    EXPECT_LT(hot.max(), warm.min());
    EXPECT_LT(warm.max(), cold.min());
    // Each round boots twice and re-warms infrastructure + both functions.
    EXPECT_EQ(metrics.counter("warmth.boot"), 6u);
    EXPECT_EQ(metrics.counter("warmth.to_warm"), 6u);
  }
}

TEST_F(PerformanceModelTest, LoopScalesLinearlyInIterationCount) {
  // Paper: "the overall processing time rises linearly to the number of
  // function calls." The per-iteration marginal cost must be constant.
  auto t1 = Hot(wfms_.get(), "AllCompNames", {Value::Int(1)});
  auto t2 = Hot(wfms_.get(), "AllCompNames", {Value::Int(2)});
  auto t9 = Hot(wfms_.get(), "AllCompNames", {Value::Int(9)});
  VDuration step = t2.elapsed_us - t1.elapsed_us;
  EXPECT_GT(step, 0);
  // Near-exact linearity: the only deviation is result-marshalling cost,
  // which varies with the byte length of the returned component names.
  EXPECT_NEAR(static_cast<double>(t9.elapsed_us),
              static_cast<double>(t1.elapsed_us + 8 * step),
              0.002 * static_cast<double>(t9.elapsed_us));
}

TEST_F(PerformanceModelTest, ParallelBeatsSequentialOnWfmsOnly) {
  auto w_seq = Hot(wfms_.get(), "GetSuppQual", {Value::Varchar("Stark")});
  auto w_par = Hot(wfms_.get(), "GetSuppQualRelia", {Value::Int(1234)});
  EXPECT_LT(w_par.elapsed_us, w_seq.elapsed_us)
      << "WfMS: parallel activities must be faster";
  auto u_seq = Hot(udtf_.get(), "GetSuppQual", {Value::Varchar("Stark")});
  auto u_par = Hot(udtf_.get(), "GetSuppQualRelia", {Value::Int(1234)});
  EXPECT_GE(u_par.elapsed_us, u_seq.elapsed_us)
      << "UDTF: the contrary result (paper §4)";
}

TEST_F(PerformanceModelTest, ControllerAblationMatchesPaperDirection) {
  auto without = sim::WithoutController({});
  auto wfms_nc = MakeSampleServer(Architecture::kWfms, {}, without);
  auto udtf_nc = MakeSampleServer(Architecture::kUdtf, {}, without);
  ASSERT_TRUE(wfms_nc.ok() && udtf_nc.ok());

  auto w_with = Hot(wfms_.get(), "GetNoSuppComp", NoSuppArgs());
  auto u_with = Hot(udtf_.get(), "GetNoSuppComp", NoSuppArgs());
  auto w_without = Hot(wfms_nc->get(), "GetNoSuppComp", NoSuppArgs());
  auto u_without = Hot(udtf_nc->get(), "GetNoSuppComp", NoSuppArgs());

  double w_decrease = 1.0 - static_cast<double>(w_without.elapsed_us) /
                                static_cast<double>(w_with.elapsed_us);
  double u_decrease = 1.0 - static_cast<double>(u_without.elapsed_us) /
                                static_cast<double>(u_with.elapsed_us);
  // Paper: WfMS decreases ~8%, UDTF ~25%.
  EXPECT_NEAR(w_decrease, 0.08, 0.04);
  EXPECT_NEAR(u_decrease, 0.25, 0.05);
  // And the ratio between the approaches increases without the controller.
  double ratio_with = static_cast<double>(w_with.elapsed_us) /
                      static_cast<double>(u_with.elapsed_us);
  double ratio_without = static_cast<double>(w_without.elapsed_us) /
                         static_cast<double>(u_without.elapsed_us);
  EXPECT_GT(ratio_without, ratio_with);
}

TEST_F(PerformanceModelTest, ElapsedRatioStaysInPaperBand) {
  // Across the Fig. 5 workload the WfMS approach is slower by roughly 2-4x.
  struct Call {
    const char* name;
    std::vector<Value> args;
  };
  const std::vector<Call> calls = {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetNoSuppComp", NoSuppArgs()},
      {"BuySuppComp", {Value::Int(1234), Value::Varchar("brakepad")}},
  };
  for (const Call& c : calls) {
    auto w = Hot(wfms_.get(), c.name, c.args);
    auto u = Hot(udtf_.get(), c.name, c.args);
    double ratio = static_cast<double>(w.elapsed_us) /
                   static_cast<double>(u.elapsed_us);
    EXPECT_GT(ratio, 1.5) << c.name;
    EXPECT_LT(ratio, 4.5) << c.name;
  }
}

TEST_F(PerformanceModelTest, HotCallsAreDeterministic) {
  auto a = Hot(wfms_.get(), "BuySuppComp",
               {Value::Int(1234), Value::Varchar("brakepad")});
  auto b = Hot(wfms_.get(), "BuySuppComp",
               {Value::Int(1234), Value::Varchar("brakepad")});
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.breakdown.Total(), b.breakdown.Total());
}

TEST_F(PerformanceModelTest, WfmsRecoveryReExecutesFewerLocalFunctions) {
  // The fault/recovery claim: after a transient failure in the last local
  // function, the WfMS engine resumes the failed instance from its
  // checkpoint (only GetNumber re-runs), while the stateless I-UDTF restarts
  // the whole statement (all three A-UDTFs re-run).
  auto w_clean = Hot(wfms_.get(), "GetNoSuppComp", NoSuppArgs());
  auto u_clean = Hot(udtf_.get(), "GetNoSuppComp", NoSuppArgs());

  for (IntegrationServer* server : {wfms_.get(), udtf_.get()}) {
    server->retry_policy().max_attempts = 4;
    server->fault_injector().ResetCounters();
    server->fault_injector().InjectTransientFailures("GetNumber", 1);
  }
  auto w_fault = wfms_->CallFederated("GetNoSuppComp", NoSuppArgs());
  auto u_fault = udtf_->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(w_fault.ok()) << w_fault.status();
  ASSERT_TRUE(u_fault.ok()) << u_fault.status();
  EXPECT_EQ(w_fault->table.rows().size(), w_clean.table.rows().size());

  sim::FaultInjector& wf = wfms_->fault_injector();
  sim::FaultInjector& uf = udtf_->fault_injector();
  // Both architectures retried the failed function once.
  EXPECT_EQ(wf.attempts("GetNumber"), 2);
  EXPECT_EQ(uf.attempts("GetNumber"), 2);
  // WfMS forward recovery: the completed activities were restored from the
  // checkpoint, not re-executed.
  EXPECT_EQ(wf.attempts("GetSupplierNo"), 1);
  EXPECT_EQ(wf.attempts("GetCompNo"), 1);
  // UDTF whole-statement restart: every A-UDTF ran again.
  EXPECT_EQ(uf.attempts("GetSupplierNo"), 2);
  EXPECT_EQ(uf.attempts("GetCompNo"), 2);
  auto local_attempts = [](sim::FaultInjector& f) {
    return f.attempts("GetSupplierNo") + f.attempts("GetCompNo") +
           f.attempts("GetNumber");
  };
  EXPECT_LT(local_attempts(wf), local_attempts(uf))
      << "WfMS recovery must re-execute strictly fewer local functions";

  // The redundant work also shows in virtual time: the WfMS failure penalty
  // (retry backoff + one extra wrapper round trip + the re-run activity) is
  // smaller than the UDTF penalty of re-running the whole statement.
  VDuration w_penalty = w_fault->elapsed_us - w_clean.elapsed_us;
  VDuration u_penalty = u_fault->elapsed_us - u_clean.elapsed_us;
  EXPECT_GT(w_penalty, 0);
  EXPECT_GT(u_penalty, 0);
  EXPECT_LT(w_penalty, u_penalty);

  // Both calls succeeded, so no recovery state lingers.
  EXPECT_EQ(wfms_->recovery_checkpoint("GetNoSuppComp"), nullptr);
  // Both runs charged the backoff step.
  EXPECT_GT(w_fault->breakdown.Of(sim::steps::kRetryBackoff), 0);
  EXPECT_GT(u_fault->breakdown.Of(sim::steps::kRetryBackoff), 0);
}

TEST_F(PerformanceModelTest, CheckpointSurvivesExhaustedRetriesAcrossCalls) {
  // A permanent outage exhausts the retry budget and the federated call
  // fails — but the WfMS keeps the failed instance's checkpoint, so once the
  // outage clears, the next call resumes instead of restarting.
  (void)Hot(wfms_.get(), "GetNoSuppComp", NoSuppArgs());
  wfms_->retry_policy().max_attempts = 3;
  sim::FaultProfile down;
  down.permanent_outage = true;
  wfms_->fault_injector().SetProfile("GetNumber", down);
  wfms_->fault_injector().ResetCounters();

  auto failed = wfms_->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  const wfms::InstanceCheckpoint* ckpt =
      wfms_->recovery_checkpoint("GetNoSuppComp");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_TRUE(ckpt->valid);
  EXPECT_EQ(wfms_->fault_injector().attempts("GetNumber"), 3);
  EXPECT_EQ(wfms_->fault_injector().attempts("GetSupplierNo"), 1)
      << "completed siblings ran once and were checkpointed";

  wfms_->fault_injector().ClearProfiles();
  auto recovered = wfms_->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(wfms_->fault_injector().attempts("GetSupplierNo"), 1)
      << "recovery after the outage must not re-run completed activities";
  EXPECT_EQ(wfms_->fault_injector().attempts("GetNumber"), 4);
  EXPECT_EQ(wfms_->recovery_checkpoint("GetNoSuppComp"), nullptr);
}

TEST_F(PerformanceModelTest, DisabledInjectorLeavesTotalsUntouched) {
  // Touching the fault APIs without enabling anything must not perturb the
  // virtual-time model: a server whose injector was consulted-but-inert
  // produces the same totals as a pristine one.
  auto pristine = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(pristine.ok());
  auto baseline = Hot(pristine->get(), "GetNoSuppComp", NoSuppArgs());

  wfms_->fault_injector().InjectTransientFailures("GetNumber", 0);
  wfms_->fault_injector().SetProfile("GetCompNo", sim::FaultProfile{});
  auto touched = Hot(wfms_.get(), "GetNoSuppComp", NoSuppArgs());
  EXPECT_EQ(touched.elapsed_us, baseline.elapsed_us);
  EXPECT_EQ(touched.breakdown.Total(), baseline.breakdown.Total());
  EXPECT_EQ(touched.breakdown.Of(sim::steps::kRetryBackoff), 0);
}

TEST_F(PerformanceModelTest, MoreLocalFunctionsCostMore) {
  auto one = Hot(udtf_.get(), "GibKompNr", {Value::Varchar("brakepad")});
  auto three = Hot(udtf_.get(), "GetNoSuppComp", NoSuppArgs());
  auto five = Hot(udtf_.get(), "BuySuppComp",
                  {Value::Int(1234), Value::Varchar("brakepad")});
  EXPECT_LT(one.elapsed_us, three.elapsed_us);
  EXPECT_LT(three.elapsed_us, five.elapsed_us);
}

}  // namespace
}  // namespace fedflow::federation
