// Property tests: for randomly generated mapping graphs, the UDTF coupling
// (compiled to SQL and run by the FDBS) and the WfMS coupling (compiled to a
// workflow process and run by the engine) must produce exactly the same
// result as a direct oracle evaluation of the spec.
#include <gtest/gtest.h>

#include <map>

#include "appsys/appsystem.h"
#include "common/rng.h"
#include "federation/controller.h"
#include "federation/spec.h"
#include "federation/java_coupling.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"

namespace fedflow::federation {
namespace {

/// Synthetic application system with deterministic single-row functions of
/// arity 1 and 2, plus a multi-row function for join properties.
class PropSystem : public appsys::AppSystem {
 public:
  PropSystem() : AppSystem("propsys") {
    auto single = [](const std::string& name, int arity, auto fn) {
      appsys::LocalFunction f;
      f.name = name;
      for (int i = 0; i < arity; ++i) {
        f.params.push_back(Column{"p" + std::to_string(i), DataType::kInt});
      }
      f.result_schema.AddColumn("v", DataType::kInt);
      f.body = [fn](const std::vector<Value>& args) -> Result<Table> {
        Schema s;
        s.AddColumn("v", DataType::kInt);
        Table t(s);
        t.AppendRowUnchecked({Value::Int(fn(args))});
        return t;
      };
      return f;
    };
    (void)Register(single("F1", 1, [](const std::vector<Value>& a) {
      return 2 * a[0].AsInt() + 1;
    }));
    (void)Register(single("F2", 1, [](const std::vector<Value>& a) {
      return (a[0].AsInt() * a[0].AsInt()) % 97;
    }));
    (void)Register(single("F3", 1, [](const std::vector<Value>& a) {
      return a[0].AsInt() - 7;
    }));
    (void)Register(single("G1", 2, [](const std::vector<Value>& a) {
      return a[0].AsInt() + 3 * a[1].AsInt();
    }));
    (void)Register(single("G2", 2, [](const std::vector<Value>& a) {
      return a[0].AsInt() * 5 - a[1].AsInt();
    }));
    // Multi-row: M(x) -> rows v = x, x+1, ..., x + (|x| mod 4).
    appsys::LocalFunction multi;
    multi.name = "M";
    multi.params = {Column{"p0", DataType::kInt}};
    multi.result_schema.AddColumn("v", DataType::kInt);
    multi.body = [](const std::vector<Value>& args) -> Result<Table> {
      Schema s;
      s.AddColumn("v", DataType::kInt);
      Table t(s);
      int x = args[0].AsInt();
      int n = (x < 0 ? -x : x) % 4;
      for (int i = 0; i <= n; ++i) {
        t.AppendRowUnchecked({Value::Int(x + i)});
      }
      return t;
    };
    (void)Register(std::move(multi));
  }
};

/// One fully wired harness per architecture.
struct Harness {
  appsys::AppSystemRegistry systems;
  sim::LatencyModel model;
  sim::SystemState state;
  // Separate FDBS instances per architecture (both registrations use the
  // federated function's own name).
  fdbs::Database db;
  fdbs::Database db_wfms;
  fdbs::Database db_java;
  Controller controller{&systems, &model};
  wfms::Engine engine;
  UdtfCoupling udtf{&db, &systems, &controller, &model, &state};
  WfmsCoupling wfms{&db_wfms, &engine, &systems, &controller, &model, &state};
  UdtfCoupling udtf_for_java{&db_java, &systems, &controller, &model, &state};
  JavaUdtfCoupling java{&db_java, &systems, &model, &state};

  Harness() {
    (void)systems.Add(std::make_shared<PropSystem>());
    controller.Start();
    (void)udtf.RegisterAccessUdtfs();
    (void)udtf_for_java.RegisterAccessUdtfs();
  }
};

/// Oracle: evaluates the spec directly against the application systems in
/// topological order (single-row functions only; no joins).
Result<Table> OracleEvaluate(const FederatedFunctionSpec& spec,
                             const appsys::AppSystemRegistry& systems,
                             const std::vector<Value>& params) {
  FEDFLOW_ASSIGN_OR_RETURN(std::vector<size_t> order,
                           TopologicalCallOrder(spec));
  std::map<std::string, Table> outputs;
  for (size_t idx : order) {
    const SpecCall& call = spec.calls[idx];
    std::vector<Value> args;
    for (const SpecArg& arg : call.args) {
      switch (arg.kind) {
        case SpecArg::Kind::kConstant:
          args.push_back(arg.constant);
          break;
        case SpecArg::Kind::kParam: {
          bool found = false;
          for (size_t p = 0; p < spec.params.size(); ++p) {
            if (spec.params[p].name == arg.param) {
              args.push_back(params[p]);
              found = true;
            }
          }
          if (!found) return Status::NotFound("param " + arg.param);
          break;
        }
        case SpecArg::Kind::kNodeColumn: {
          const Table& src = outputs.at(arg.node);
          FEDFLOW_ASSIGN_OR_RETURN(size_t col,
                                   src.schema().FindColumn(arg.column));
          if (src.num_rows() != 1) {
            return Status::ExecutionError("oracle: multi-row scalar source");
          }
          args.push_back(src.rows()[0][col]);
          break;
        }
      }
    }
    FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem * sys,
                             systems.Get(call.system));
    FEDFLOW_ASSIGN_OR_RETURN(appsys::AppSystem::CallResult result,
                             sys->Call(call.function, args));
    outputs[call.id] = std::move(result.table);
  }
  // Assemble outputs (single combined row; all sources single-row here).
  Schema schema;
  Row row;
  for (const SpecOutput& out : spec.outputs) {
    const Table& src = outputs.at(out.node);
    FEDFLOW_ASSIGN_OR_RETURN(size_t col, src.schema().FindColumn(out.column));
    Value v = src.rows()[0][col];
    DataType t = src.schema().column(col).type;
    if (out.cast_to != DataType::kNull) {
      FEDFLOW_ASSIGN_OR_RETURN(v, v.CastTo(out.cast_to));
      t = out.cast_to;
    }
    schema.AddColumn(out.name, t);
    row.push_back(std::move(v));
  }
  Table result(schema);
  FEDFLOW_RETURN_NOT_OK(result.AppendRow(std::move(row)));
  return result;
}

/// Generates a random acyclic single-row mapping spec.
FederatedFunctionSpec RandomSpec(Rng* rng, uint64_t tag) {
  FederatedFunctionSpec spec;
  spec.name = "Rand" + std::to_string(tag);
  spec.params = {Column{"P1", DataType::kInt}, Column{"P2", DataType::kInt}};
  const char* unary[] = {"F1", "F2", "F3"};
  const char* binary[] = {"G1", "G2"};
  const int n = static_cast<int>(rng->Uniform(1, 5));
  for (int i = 0; i < n; ++i) {
    SpecCall call;
    call.id = "N" + std::to_string(i);
    call.system = "propsys";
    const bool is_binary = rng->Chance(0.4);
    call.function = is_binary ? binary[rng->Uniform(0, 1)]
                              : unary[rng->Uniform(0, 2)];
    const int arity = is_binary ? 2 : 1;
    for (int a = 0; a < arity; ++a) {
      SpecArg arg;
      // Prefer node references when earlier nodes exist (builds real DAGs).
      if (i > 0 && rng->Chance(0.6)) {
        arg = SpecArg::NodeColumn(
            "N" + std::to_string(rng->Uniform(0, i - 1)), "v");
      } else if (rng->Chance(0.5)) {
        arg = SpecArg::Param(rng->Chance(0.5) ? "P1" : "P2");
      } else {
        arg = SpecArg::Constant(
            Value::Int(static_cast<int32_t>(rng->Uniform(-20, 20))));
      }
      call.args.push_back(std::move(arg));
    }
    spec.calls.push_back(std::move(call));
  }
  // 1-2 outputs from random nodes (concat path needs distinct names).
  const int outs = static_cast<int>(rng->Uniform(1, 2));
  for (int o = 0; o < outs; ++o) {
    SpecOutput out;
    out.name = "O" + std::to_string(o);
    out.node = "N" + std::to_string(rng->Uniform(0, n - 1));
    out.column = "v";
    if (rng->Chance(0.3)) out.cast_to = DataType::kBigInt;
    spec.outputs.push_back(std::move(out));
  }
  return spec;
}

class EquivalencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalencePropertyTest, BothArchitecturesMatchTheOracle) {
  Rng rng(GetParam() * 7919 + 17);
  Harness harness;
  for (int round = 0; round < 5; ++round) {
    FederatedFunctionSpec spec =
        RandomSpec(&rng, GetParam() * 100 + static_cast<uint64_t>(round));
    ASSERT_TRUE(ValidateSpec(spec).ok()) << spec.name;

    ASSERT_TRUE(harness.udtf.RegisterFederatedFunction(spec).ok())
        << spec.name;
    ASSERT_TRUE(harness.wfms.RegisterFederatedFunction(spec).ok())
        << spec.name;
    ASSERT_TRUE(harness.java.RegisterFederatedFunction(spec).ok())
        << spec.name;

    std::vector<Value> args = {
        Value::Int(static_cast<int32_t>(rng.Uniform(-50, 50))),
        Value::Int(static_cast<int32_t>(rng.Uniform(-50, 50)))};
    auto oracle = OracleEvaluate(spec, harness.systems, args);
    ASSERT_TRUE(oracle.ok()) << oracle.status();

    std::string call_sql = "SELECT * FROM TABLE (" + spec.name + "(" +
                           args[0].ToString() + ", " + args[1].ToString() +
                           ")) AS R";
    // Note: the WfMS wrapper shadows nothing here because both couplings
    // registered the same name in the same catalog would collide; the UDTF
    // coupling registered first, so query it, then run the process directly.
    auto via_udtf = harness.db.Execute(call_sql);
    ASSERT_TRUE(via_udtf.ok()) << spec.name << ": " << via_udtf.status();
    EXPECT_TRUE(Table::SameRowsAnyOrder(*via_udtf, *oracle))
        << spec.name << "\nUDTF:\n"
        << via_udtf->ToString() << "oracle:\n"
        << oracle->ToString();

    // WfMS path: run the registered process through the engine directly.
    auto process_result = harness.engine.Run(
        spec.name, args, harness.wfms.wrapper()->invoker());
    ASSERT_TRUE(process_result.ok())
        << spec.name << ": " << process_result.status();
    Table wfms_out(oracle->schema());
    for (const Row& r : process_result->output.rows()) {
      Row copy = r;
      ASSERT_TRUE(wfms_out.AppendRow(std::move(copy)).ok());
    }
    EXPECT_TRUE(Table::SameRowsAnyOrder(wfms_out, *oracle))
        << spec.name << "\nWfMS:\n"
        << wfms_out.ToString() << "oracle:\n"
        << oracle->ToString();

    // Java UDTF path (the procedural third architecture).
    auto via_java = harness.db_java.Execute(call_sql);
    ASSERT_TRUE(via_java.ok()) << spec.name << ": " << via_java.status();
    EXPECT_TRUE(Table::SameRowsAnyOrder(*via_java, *oracle))
        << spec.name << "\nJava:\n"
        << via_java->ToString() << "oracle:\n"
        << oracle->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalencePropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

// --- join property ------------------------------------------------------------

class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, JoinSpecsAgreeAcrossArchitectures) {
  Rng rng(GetParam() * 104729 + 3);
  Harness harness;
  // Two multi-row calls joined on their value columns.
  FederatedFunctionSpec spec;
  spec.name = "Join" + std::to_string(GetParam());
  spec.params = {Column{"P1", DataType::kInt}, Column{"P2", DataType::kInt}};
  spec.calls = {
      {"A", "propsys", "M", {SpecArg::Param("P1")}},
      {"B", "propsys", "M", {SpecArg::Param("P2")}},
  };
  spec.joins = {{"A", "v", "B", "v"}};
  spec.outputs = {{"AV", "A", "v", DataType::kNull},
                  {"BV", "B", "v", DataType::kNull}};
  ASSERT_TRUE(harness.udtf.RegisterFederatedFunction(spec).ok());
  ASSERT_TRUE(harness.wfms.RegisterFederatedFunction(spec).ok());

  for (int round = 0; round < 8; ++round) {
    int x = static_cast<int32_t>(rng.Uniform(-10, 10));
    int y = static_cast<int32_t>(rng.Uniform(-10, 10));
    std::vector<Value> args = {Value::Int(x), Value::Int(y)};
    auto via_udtf = harness.db.Execute(
        "SELECT * FROM TABLE (" + spec.name + "(" + std::to_string(x) + ", " +
        std::to_string(y) + ")) AS R");
    ASSERT_TRUE(via_udtf.ok()) << via_udtf.status();
    auto process_result =
        harness.engine.Run(spec.name, args, harness.wfms.wrapper()->invoker());
    ASSERT_TRUE(process_result.ok()) << process_result.status();
    Table wfms_out(via_udtf->schema());
    for (const Row& r : process_result->output.rows()) {
      Row copy = r;
      ASSERT_TRUE(wfms_out.AppendRow(std::move(copy)).ok());
    }
    EXPECT_TRUE(Table::SameRowsAnyOrder(*via_udtf, wfms_out))
        << "x=" << x << " y=" << y << "\nUDTF:\n"
        << via_udtf->ToString() << "WfMS:\n"
        << wfms_out.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace fedflow::federation
