// Tests of the enhanced Java UDTF architecture (procedural I-UDTFs) and the
// underlying fdbs::ProceduralTableFunction / SqlClient machinery.
#include <gtest/gtest.h>

#include "fdbs/procedural_function.h"
#include "federation/sample_scenario.h"

namespace fedflow::federation {
namespace {

class JavaArchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto java = MakeSampleServer(Architecture::kJavaUdtf);
    ASSERT_TRUE(java.ok()) << java.status();
    java_ = std::move(*java);
    auto sql = MakeSampleServer(Architecture::kUdtf);
    ASSERT_TRUE(sql.ok()) << sql.status();
    sql_ = std::move(*sql);
    auto wfms = MakeSampleServer(Architecture::kWfms);
    ASSERT_TRUE(wfms.ok()) << wfms.status();
    wfms_ = std::move(*wfms);
  }

  std::unique_ptr<IntegrationServer> java_;
  std::unique_ptr<IntegrationServer> sql_;
  std::unique_ptr<IntegrationServer> wfms_;
};

TEST_F(JavaArchTest, NonCyclicFunctionsAgreeWithSqlArchitecture) {
  struct Case {
    std::string name;
    std::vector<Value> args;
  };
  const std::vector<Case> cases = {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetNumberSupp1234", {Value::Int(17)}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetSubCompDiscounts", {Value::Int(3), Value::Int(5)}},
      {"GetNoSuppComp", {Value::Varchar("Stark"), Value::Varchar("brakepad")}},
      {"BuySuppComp", {Value::Int(1234), Value::Varchar("brakepad")}},
  };
  for (const Case& c : cases) {
    auto j = java_->CallFederated(c.name, c.args);
    ASSERT_TRUE(j.ok()) << c.name << ": " << j.status();
    auto s = sql_->CallFederated(c.name, c.args);
    ASSERT_TRUE(s.ok()) << c.name << ": " << s.status();
    EXPECT_TRUE(Table::SameRowsAnyOrder(j->table, s->table))
        << c.name << "\nJava:\n"
        << j->table.ToString() << "SQL:\n"
        << s->table.ToString();
  }
}

TEST_F(JavaArchTest, CyclicCaseSupportedUnlikeSqlVariant) {
  // The paper's key point about the Java architecture: control structures
  // become available, so the loop works — where the SQL variant cannot even
  // register the function.
  auto j = java_->CallFederated("AllCompNames", {Value::Int(5)});
  ASSERT_TRUE(j.ok()) << j.status();
  EXPECT_EQ(j->table.num_rows(), 5u);
  EXPECT_EQ(j->table.rows()[0][0].AsVarchar(), "comp_1");
  EXPECT_EQ(j->table.rows()[4][0].AsVarchar(), "comp_5");

  EXPECT_FALSE(sql_->CallFederated("AllCompNames", {Value::Int(5)}).ok());

  // And it agrees with the WfMS do-until loop.
  auto w = wfms_->CallFederated("AllCompNames", {Value::Int(5)});
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(Table::SameRowsAnyOrder(j->table, w->table));
}

TEST_F(JavaArchTest, JavaSupportsMatrix) {
  EXPECT_TRUE(JavaUdtfSupports(MappingCase::kTrivial));
  EXPECT_TRUE(JavaUdtfSupports(MappingCase::kDependentCyclic));
  EXPECT_FALSE(JavaUdtfSupports(MappingCase::kGeneral));
}

TEST_F(JavaArchTest, ChargesJavaAndJdbcCosts) {
  (void)java_->CallFederated("GetSuppQual", {Value::Varchar("Stark")});
  auto timed = java_->CallFederated("GetSuppQual", {Value::Varchar("Stark")});
  ASSERT_TRUE(timed.ok());
  const TimeBreakdown& b = timed->breakdown;
  EXPECT_GT(b.Of(sim::steps::kJavaStartI), 0);
  EXPECT_GT(b.Of(sim::steps::kJavaFinishI), 0);
  EXPECT_GT(b.Of(sim::steps::kJdbcCalls), 0);
  // The A-UDTF layer is shared with the SQL variant.
  EXPECT_GT(b.Of(sim::steps::kUdtfPrepareA), 0);
}

TEST_F(JavaArchTest, LoopChargesOneStatementPerIteration) {
  (void)java_->CallFederated("AllCompNames", {Value::Int(1)});
  auto one = java_->CallFederated("AllCompNames", {Value::Int(1)});
  auto four = java_->CallFederated("AllCompNames", {Value::Int(4)});
  ASSERT_TRUE(one.ok() && four.ok());
  sim::LatencyModel model;
  EXPECT_EQ(four->breakdown.Of(sim::steps::kJdbcCalls) -
                one->breakdown.Of(sim::steps::kJdbcCalls),
            3 * model.jdbc_statement_us);
}

TEST_F(JavaArchTest, SitsBetweenTheOtherArchitecturesInCost) {
  auto hot = [](IntegrationServer* server, const std::string& name,
                const std::vector<Value>& args) {
    (void)server->CallFederated(name, args);
    (void)server->CallFederated(name, args);
    return *server->CallFederated(name, args);
  };
  const std::vector<Value> args = {Value::Varchar("Stark"),
                                   Value::Varchar("brakepad")};
  auto j = hot(java_.get(), "GetNoSuppComp", args);
  auto s = hot(sql_.get(), "GetNoSuppComp", args);
  auto w = hot(wfms_.get(), "GetNoSuppComp", args);
  // Java pays the SQL variant's A-UDTF costs plus JDBC/JVM overheads, but
  // nowhere near the per-activity process starts of the WfMS.
  EXPECT_GT(j.elapsed_us, s.elapsed_us);
  EXPECT_LT(j.elapsed_us, w.elapsed_us);
}

TEST_F(JavaArchTest, ColdWarmHotAppliesToJavaArchitecture) {
  java_->Reboot();
  auto cold = java_->CallFederated("GibKompNr", {Value::Varchar("brakepad")});
  auto hot = java_->CallFederated("GibKompNr", {Value::Varchar("brakepad")});
  ASSERT_TRUE(cold.ok() && hot.ok());
  EXPECT_GT(cold->elapsed_us, hot->elapsed_us);
}

// --- fdbs-level procedural function tests --------------------------------------

TEST(ProceduralFunctionTest, BodyIssuesMultipleStatements) {
  fdbs::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (v INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  auto body = [](const std::vector<Value>& args,
                 fdbs::SqlClient* client) -> Result<Table> {
    // Control structures + several statements: sum values above a threshold
    // by issuing one statement per probe.
    int64_t total = 0;
    for (int v = 1; v <= args[0].AsInt(); ++v) {
      FEDFLOW_ASSIGN_OR_RETURN(
          Table t, client->Query("SELECT COUNT(*) FROM t WHERE v = " +
                                 std::to_string(v)));
      FEDFLOW_ASSIGN_OR_RETURN(Value count, t.ScalarAt00());
      total += count.AsBigInt() * v;
    }
    Schema s;
    s.AddColumn("total", DataType::kBigInt);
    Table out(s);
    out.AppendRowUnchecked({Value::BigInt(total)});
    return out;
  };
  Schema result;
  result.AddColumn("total", DataType::kBigInt);
  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      "SumUpTo", std::vector<Column>{Column{"n", DataType::kInt}}, result,
      body);
  ASSERT_TRUE(db.catalog().RegisterTableFunction(fn).ok());
  auto out = db.Execute("SELECT S.total FROM TABLE (SumUpTo(3)) AS S");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows()[0][0].AsBigInt(), 6);
}

TEST(ProceduralFunctionTest, ResultCoercedToDeclaredSchema) {
  fdbs::Database db;
  auto body = [](const std::vector<Value>&,
                 fdbs::SqlClient*) -> Result<Table> {
    Schema s;
    s.AddColumn("x", DataType::kInt);
    Table t(s);
    t.AppendRowUnchecked({Value::Int(7)});
    return t;
  };
  Schema result;
  result.AddColumn("x", DataType::kBigInt);
  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      "Coerced", std::vector<Column>{}, result, body);
  ASSERT_TRUE(db.catalog().RegisterTableFunction(fn).ok());
  auto out = db.Execute("SELECT * FROM TABLE (Coerced()) AS C");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows()[0][0].type(), DataType::kBigInt);
}

TEST(ProceduralFunctionTest, BodyErrorsPropagate) {
  fdbs::Database db;
  auto body = [](const std::vector<Value>&,
                 fdbs::SqlClient* client) -> Result<Table> {
    return client->Query("SELECT * FROM missing_table");
  };
  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      "Broken", std::vector<Column>{}, Schema{}, body);
  ASSERT_TRUE(db.catalog().RegisterTableFunction(fn).ok());
  auto out = db.Execute("SELECT * FROM TABLE (Broken()) AS B");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(ProceduralFunctionTest, DepthGuardStopsRecursion) {
  fdbs::Database db;
  auto body = [](const std::vector<Value>&,
                 fdbs::SqlClient* client) -> Result<Table> {
    return client->Query("SELECT * FROM TABLE (Recurse()) AS R");
  };
  Schema result;
  result.AddColumn("x", DataType::kInt);
  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      "Recurse", std::vector<Column>{}, result, body);
  ASSERT_TRUE(db.catalog().RegisterTableFunction(fn).ok());
  auto out = db.Execute("SELECT * FROM TABLE (Recurse()) AS R");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("depth"), std::string::npos);
}

TEST(ProceduralFunctionTest, StatementOverheadCharged) {
  fdbs::Database db;
  auto body = [](const std::vector<Value>&,
                 fdbs::SqlClient* client) -> Result<Table> {
    FEDFLOW_RETURN_NOT_OK(client->Query("SELECT 1").status());
    FEDFLOW_RETURN_NOT_OK(client->Query("SELECT 2").status());
    Schema s;
    s.AddColumn("n", DataType::kInt);
    Table t(s);
    t.AppendRowUnchecked({Value::Int(client->statements_issued())});
    return t;
  };
  Schema result;
  result.AddColumn("n", DataType::kInt);
  auto fn = std::make_shared<fdbs::ProceduralTableFunction>(
      "TwoStatements", std::vector<Column>{}, result, body,
      /*statement_overhead_us=*/100);
  ASSERT_TRUE(db.catalog().RegisterTableFunction(fn).ok());
  SimClock clock;
  fdbs::ExecContext ctx;
  ctx.clock = &clock;
  auto out = db.Execute("SELECT * FROM TABLE (TwoStatements()) AS T", ctx);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows()[0][0].AsInt(), 2);
  EXPECT_EQ(clock.breakdown().Of("JDBC calls"), 200);
}

}  // namespace
}  // namespace fedflow::federation
