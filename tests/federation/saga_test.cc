// The saga subsystem end to end: registration builds the saga view and the
// plan's write barriers, commits apply every write exactly once, a seeded
// fault sweep drives a lost acknowledgement into every write boundary of
// every architecture (retry => dedup replay, no retry => abort + reverse
// compensation restoring the pre-saga state), the FF45x gates reject broken
// write specs, write calls never ride the result cache, and a ThreadPool
// smoke run exercises the coordinator's locking for the TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dataflow/saga_analysis.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "federation/sample_scenario.h"
#include "plan/fed_plan.h"
#include "plan/optimizer.h"

namespace fedflow::federation {
namespace {

constexpr Architecture kAllArchitectures[] = {
    Architecture::kWfms, Architecture::kUdtf, Architecture::kJavaUdtf};

const std::vector<Value>& ProcureArgs() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Int(17), Value::Int(5)};
  return args;
}

std::unique_ptr<IntegrationServer> MakeSagaServer(
    Architecture arch, const plan::PlanOptions& options = {},
    ControllerPoolOptions pool_options = {}) {
  auto server = MakeSampleServer(arch, {}, {}, pool_options);
  EXPECT_TRUE(server.ok()) << server.status();
  if (!server.ok()) return nullptr;
  Status registered =
      (*server)->RegisterFederatedFunction(ProcureComponentSpec(), options);
  EXPECT_TRUE(registered.ok()) << registered;
  if (!registered.ok()) return nullptr;
  return std::move(*server);
}

appsys::StockKeepingSystem* Stock(IntegrationServer* server) {
  auto sys = server->systems().Get("stock");
  EXPECT_TRUE(sys.ok());
  return static_cast<appsys::StockKeepingSystem*>(*sys);
}

appsys::PurchasingSystem* Purchasing(IntegrationServer* server) {
  auto sys = server->systems().Get("purchasing");
  EXPECT_TRUE(sys.ok());
  return static_cast<appsys::PurchasingSystem*>(*sys);
}

/// Canonical snapshot of every application system's private store — the
/// abort oracle: an aborted saga must leave this string unchanged.
std::string Fingerprints(IntegrationServer* server) {
  std::string out;
  for (const std::string& name : server->systems().Names()) {
    auto sys = server->systems().Get(name);
    EXPECT_TRUE(sys.ok());
    out += name + "=" + (*sys)->StateFingerprint() + ";";
  }
  return out;
}

int32_t IntCell(const Table& table, const std::string& column) {
  auto col = table.schema().FindColumn(column);
  EXPECT_TRUE(col.ok()) << column;
  EXPECT_EQ(table.rows().size(), 1u);
  return table.rows()[0][*col].AsInt();
}

int64_t CallCount(const appsys::AppSystem* sys, const std::string& function) {
  auto counts = sys->FunctionCallCounts();  // keyed by upper-cased name
  auto it = counts.find(ToUpper(function));
  return it == counts.end() ? 0 : it->second;
}

TEST(SagaTest, RegistrationBuildsSagaViewForWriteSpecsOnly) {
  auto server = MakeSagaServer(Architecture::kWfms);
  ASSERT_NE(server, nullptr);
  const txn::SagaSpecInfo* info =
      server->saga_runtime().Find("ProcureComponent");
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->writes.size(), 2u);
  // Steps in execution order, each paired with its undo function.
  EXPECT_EQ(info->writes[0].node, "RS");
  EXPECT_EQ(info->writes[0].function, "ReserveStock");
  EXPECT_EQ(info->writes[0].compensation, "ReleaseStock");
  EXPECT_EQ(info->writes[1].node, "PO");
  EXPECT_EQ(info->writes[1].function, "PlaceOrder");
  EXPECT_EQ(info->writes[1].compensation, "CancelOrder");
  // GSN feeds undo arguments, so it is a registered capture source.
  EXPECT_EQ(info->captures.at("PURCHASING.GETSUPPLIERNO"), "GSN");
  // Read-only sample functions never touch the coordinator.
  EXPECT_EQ(server->saga_runtime().Find("GetSuppQual"), nullptr);
  EXPECT_EQ(server->saga_runtime().Find("BuySuppComp"), nullptr);
}

TEST(SagaTest, OptimizerKeepsWriteBarriersUnderParallelize) {
  // RS and PO share no data dependency — a read-only spec of this shape
  // would parallelize. The write barrier chains them so the apply order
  // (what backward recovery reverses) is total.
  plan::PlanOptions options;
  options.parallelize = true;
  auto server = MakeSagaServer(Architecture::kWfms, options);
  ASSERT_NE(server, nullptr);
  std::shared_ptr<const plan::FedPlan> plan =
      server->plan_cache().Lookup("ProcureComponent");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->HasMutatingCalls());
  auto rs = plan->CallIndex("RS");
  auto po = plan->CallIndex("PO");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(po.ok());
  bool barrier = false;
  for (const auto& [from, to] : plan->sequencing_edges) {
    if (from == *rs && to == *po) barrier = true;
  }
  EXPECT_TRUE(barrier) << "RS -> PO write barrier must survive parallelize";
  // The schedule honors it: RS strictly before PO, in different stages.
  std::vector<size_t> position(plan->calls.size(), 0);
  for (size_t k = 0; k < plan->order.size(); ++k) position[plan->order[k]] = k;
  EXPECT_LT(position[*rs], position[*po]);
}

TEST(SagaTest, CommitAppliesEveryWriteExactlyOnce) {
  for (Architecture arch : kAllArchitectures) {
    SCOPED_TRACE(ArchitectureName(arch));
    auto server = MakeSagaServer(arch);
    ASSERT_NE(server, nullptr);
    appsys::StockKeepingSystem* stock = Stock(server.get());
    appsys::PurchasingSystem* purchasing = Purchasing(server.get());
    ASSERT_EQ(stock->reserved(1234, 17), 0);
    ASSERT_EQ(purchasing->open_order_count(), 0);

    auto result = server->CallFederated("ProcureComponent", ProcureArgs());
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(IntCell(result->table, "OrderNo"), 9000);
    EXPECT_EQ(IntCell(result->table, "Reserved"), 5);
    EXPECT_GT(result->elapsed_us, 0);

    EXPECT_EQ(stock->reserved(1234, 17), 5);
    EXPECT_EQ(purchasing->open_order_count(), 1);
    EXPECT_EQ(CallCount(stock, "ReserveStock"), 1);
    EXPECT_EQ(CallCount(purchasing, "PlaceOrder"), 1);
    EXPECT_EQ(CallCount(stock, "ReleaseStock"), 0);
    EXPECT_EQ(CallCount(purchasing, "CancelOrder"), 0);

    auto outcome = server->saga_runtime().LastOutcome("ProcureComponent");
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->aborted);
    EXPECT_EQ(outcome->steps_applied, 2);
    EXPECT_EQ(outcome->dedup_hits, 0);
    EXPECT_EQ(outcome->compensations_run, 0);
    // Commit dropped the saga's ledger entries; the log tells the story.
    EXPECT_EQ(server->saga_runtime().ledger_size(), 0);
    std::vector<txn::SagaLogRecord> log = server->saga_runtime().LogSnapshot();
    ASSERT_GE(log.size(), 4u);
    EXPECT_EQ(log.front().kind, txn::SagaLogRecord::Kind::kBegin);
    EXPECT_EQ(log.back().kind, txn::SagaLogRecord::Kind::kCommit);

    // The next saga is a distinct order on top of the first reservation.
    auto again = server->CallFederated("ProcureComponent", ProcureArgs());
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(IntCell(again->table, "OrderNo"), 9001);
    EXPECT_EQ(stock->reserved(1234, 17), 10);
    EXPECT_EQ(purchasing->open_order_count(), 2);
  }
}

TEST(SagaFaultSweepTest, LostAcknowledgementIsDeduplicatedNotReapplied) {
  // Exactly-once forward sweep: a transient fault drops the acknowledgement
  // of each write boundary in turn, on every architecture. The retried
  // attempt must present the same idempotency key and be served from the
  // dedup ledger — the store applies each write once, whether recovery is
  // a WfMS checkpoint resume or an I-UDTF whole-statement restart.
  for (Architecture arch : kAllArchitectures) {
    for (const char* faulted : {"ReserveStock", "PlaceOrder"}) {
      SCOPED_TRACE(std::string(ArchitectureName(arch)) + " fault@" + faulted);
      auto server = MakeSagaServer(arch);
      ASSERT_NE(server, nullptr);
      server->retry_policy().max_attempts = 3;
      server->fault_injector().InjectTransientFailures(faulted, 1);

      auto result = server->CallFederated("ProcureComponent", ProcureArgs());
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(IntCell(result->table, "OrderNo"), 9000);

      appsys::StockKeepingSystem* stock = Stock(server.get());
      appsys::PurchasingSystem* purchasing = Purchasing(server.get());
      EXPECT_EQ(stock->reserved(1234, 17), 5) << "applied exactly once";
      EXPECT_EQ(purchasing->open_order_count(), 1);
      EXPECT_EQ(CallCount(stock, "ReserveStock"), 1);
      EXPECT_EQ(CallCount(purchasing, "PlaceOrder"), 1);
      EXPECT_EQ(CallCount(stock, "ReleaseStock"), 0);
      EXPECT_EQ(CallCount(purchasing, "CancelOrder"), 0);
      // The dedup path replays the recorded acknowledgement without a new
      // store call, so the injector saw exactly one attempt of the write.
      EXPECT_EQ(server->fault_injector().attempts(faulted), 1);

      auto outcome = server->saga_runtime().LastOutcome("ProcureComponent");
      ASSERT_TRUE(outcome.has_value());
      EXPECT_FALSE(outcome->aborted);
      EXPECT_EQ(outcome->steps_applied, 2);
      EXPECT_GE(outcome->dedup_hits, 1);
      EXPECT_GT(result->breakdown.Of(sim::steps::kSagaDedup), 0);
      EXPECT_EQ(server->saga_runtime().ledger_size(), 0);
    }
  }
}

TEST(SagaFaultSweepTest, ExhaustedBudgetAbortsAndCompensatesInReverse) {
  // Backward-recovery sweep: with retries disabled, a lost acknowledgement
  // at each write boundary aborts the saga. The coordinator must undo the
  // applied prefix in reverse order and leave every store's fingerprint
  // exactly as before the call.
  for (Architecture arch : kAllArchitectures) {
    for (const char* faulted : {"ReserveStock", "PlaceOrder"}) {
      SCOPED_TRACE(std::string(ArchitectureName(arch)) + " fault@" + faulted);
      auto server = MakeSagaServer(arch);
      ASSERT_NE(server, nullptr);
      appsys::StockKeepingSystem* stock = Stock(server.get());
      appsys::PurchasingSystem* purchasing = Purchasing(server.get());
      const std::string before = Fingerprints(server.get());
      const int64_t stock_version = stock->data_version();
      const bool both_applied = std::string(faulted) == "PlaceOrder";

      server->fault_injector().InjectTransientFailures(faulted, 1);
      auto result = server->CallFederated("ProcureComponent", ProcureArgs());
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

      // The oracle: state restored bit for bit...
      EXPECT_EQ(Fingerprints(server.get()), before);
      EXPECT_EQ(stock->reserved(1234, 17), 0);
      EXPECT_EQ(purchasing->open_order_count(), 0);
      // ...through compensating writes, not by rollback magic — the store's
      // data version moved strictly forward (apply + undo), so no cache can
      // serve state derived from the aborted saga.
      EXPECT_GE(stock->data_version(), stock_version + 2);
      EXPECT_EQ(CallCount(stock, "ReserveStock"), 1);
      EXPECT_EQ(CallCount(stock, "ReleaseStock"), 1);
      EXPECT_EQ(CallCount(purchasing, "PlaceOrder"), both_applied ? 1 : 0);
      EXPECT_EQ(CallCount(purchasing, "CancelOrder"), both_applied ? 1 : 0);

      auto outcome = server->saga_runtime().LastOutcome("ProcureComponent");
      ASSERT_TRUE(outcome.has_value());
      EXPECT_TRUE(outcome->aborted);
      EXPECT_EQ(outcome->steps_applied, both_applied ? 2 : 1);
      EXPECT_EQ(outcome->compensations_run, outcome->steps_applied);
      EXPECT_EQ(outcome->compensation_failures, 0);
      EXPECT_GT(outcome->failed_elapsed_us, 0);
      EXPECT_GT(outcome->abort_cost_us, 0);
      EXPECT_FALSE(outcome->error.empty());
      EXPECT_EQ(server->saga_runtime().ledger_size(), 0);

      // Compensations ran in reverse apply order: PO undone before RS.
      std::vector<std::string> undone;
      for (const txn::SagaLogRecord& rec :
           server->saga_runtime().LogSnapshot()) {
        if (rec.kind == txn::SagaLogRecord::Kind::kCompensate) {
          undone.push_back(rec.node);
        }
      }
      if (both_applied) {
        ASSERT_EQ(undone.size(), 2u);
        EXPECT_EQ(undone[0], "PO");
        EXPECT_EQ(undone[1], "RS");
      } else {
        ASSERT_EQ(undone.size(), 1u);
        EXPECT_EQ(undone[0], "RS");
      }

      // Backward recovery invalidated forward recovery: no checkpoint may
      // survive an abort, or a later resume would skip re-applying writes
      // the compensations just undid.
      EXPECT_EQ(server->recovery_checkpoint("ProcureComponent"), nullptr);
      auto clean = server->CallFederated("ProcureComponent", ProcureArgs());
      ASSERT_TRUE(clean.ok()) << clean.status();
      EXPECT_EQ(stock->reserved(1234, 17), 5);
      EXPECT_EQ(purchasing->open_order_count(), 1);
      // When PlaceOrder had applied, its cancelled order consumed 9000 and
      // the fresh saga gets the next number; an abort before PlaceOrder
      // consumed nothing.
      EXPECT_EQ(IntCell(clean->table, "OrderNo"), both_applied ? 9001 : 9000);
    }
  }
}

TEST(SagaFaultSweepTest, FaultBeforeAnyWriteAbortsWithoutCompensation) {
  // The read prefix fails before a single write applied: the abort must not
  // run any compensation and must not move any data version.
  for (Architecture arch : kAllArchitectures) {
    SCOPED_TRACE(ArchitectureName(arch));
    auto server = MakeSagaServer(arch);
    ASSERT_NE(server, nullptr);
    const std::string before = Fingerprints(server.get());
    const int64_t stock_version = Stock(server.get())->data_version();
    sim::FaultProfile down;
    down.permanent_outage = true;
    server->fault_injector().SetProfile("GetSupplierNo", down);

    auto result = server->CallFederated("ProcureComponent", ProcureArgs());
    ASSERT_FALSE(result.ok());
    auto outcome = server->saga_runtime().LastOutcome("ProcureComponent");
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(outcome->aborted);
    EXPECT_EQ(outcome->steps_applied, 0);
    EXPECT_EQ(outcome->compensations_run, 0);
    EXPECT_EQ(Fingerprints(server.get()), before);
    EXPECT_EQ(Stock(server.get())->data_version(), stock_version);

    server->fault_injector().ClearProfiles();
    auto clean = server->CallFederated("ProcureComponent", ProcureArgs());
    ASSERT_TRUE(clean.ok()) << clean.status();
  }
}

TEST(SagaGateTest, MissingCompensationIsRejected) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  FederatedFunctionSpec spec = ProcureComponentSpec();
  spec.name = "ProcureNoUndo";
  spec.compensations.clear();
  Status status = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FF450"), std::string::npos) << status;
  EXPECT_EQ((*server)->saga_runtime().Find("ProcureNoUndo"), nullptr);
}

TEST(SagaGateTest, UnknownAndReadOnlyCompensationsAreRejected) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  FederatedFunctionSpec spec = ProcureComponentSpec();
  spec.name = "ProcureBadUndo";
  spec.compensations[0].function = "NoSuchFunction";
  Status status = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FF451"), std::string::npos) << status;

  // A read-only undo cannot restore the store either.
  spec.name = "ProcureReadUndo";
  spec.compensations[0].function = "GetReserved";
  spec.compensations[0].args = {SpecArg::NodeColumn("GSN", "SupplierNo"),
                                SpecArg::Param("CompNo")};
  status = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FF451"), std::string::npos) << status;
}

TEST(SagaGateTest, WriteInsideLoopIsRejected) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  FederatedFunctionSpec spec;
  spec.name = "ResetAllQualities";
  spec.params = {Column{"MaxNo", DataType::kInt}};
  spec.calls = {{"SQ", "stock", "SetQuality",
                 {SpecArg::Param("ITERATION"), SpecArg::Constant(Value::Int(0))}}};
  // The undo args avoid the loop pseudo-parameter (ITERATION is not a
  // federated parameter); the write-in-loop gate must still fire.
  spec.compensations = {{"SQ", "RestoreQuality",
                         {SpecArg::Constant(Value::Int(1234)),
                          SpecArg::NodeColumn("SQ", "Qual")}}};
  spec.outputs = {{"Qual", "SQ", "Qual", DataType::kNull}};
  spec.loop.enabled = true;
  spec.loop.count_param = "MaxNo";
  spec.loop.union_all = true;
  Status status = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FF452"), std::string::npos) << status;
}

TEST(SagaGateTest, RetryWithoutLedgerFailsTheDataflowCheck) {
  // FF453 guards deployments that retry but bypass the coordinator — the
  // integration server always coordinates, so the bare analysis is driven
  // directly the way a standalone coupling would be checked.
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  FederatedFunctionSpec spec = ProcureComponentSpec();
  auto plan = plan::CompilePlan(spec, (*server)->systems());
  ASSERT_TRUE(plan.ok()) << plan.status();
  sim::RetryPolicy retry;
  retry.max_attempts = 3;
  analysis::dataflow::SagaAnalysisResult without =
      analysis::dataflow::AnalyzeSaga(*plan, spec, (*server)->systems(), retry,
                                      /*saga_coordination=*/false);
  ASSERT_EQ(without.write_nodes, 2u);
  bool found = false;
  for (const analysis::Diagnostic& d : without.diagnostics) {
    if (d.code == analysis::kSagaRetryWithoutLedger) found = true;
  }
  EXPECT_TRUE(found) << "retrying uncoordinated deployment must raise FF453";
  // With the ledger (the server's configuration) the same spec is clean.
  analysis::dataflow::SagaAnalysisResult with =
      analysis::dataflow::AnalyzeSaga(*plan, spec, (*server)->systems(), retry,
                                      /*saga_coordination=*/true);
  EXPECT_TRUE(with.diagnostics.empty());
}

TEST(SagaGateTest, AmbiguousStepsAreRejected) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  FederatedFunctionSpec spec;
  spec.name = "DoubleReserve";
  spec.params = {Column{"SupplierNo", DataType::kInt},
                 Column{"CompNo", DataType::kInt}};
  spec.calls = {
      {"R1", "stock", "ReserveStock",
       {SpecArg::Param("SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Constant(Value::Int(1))}},
      {"R2", "stock", "ReserveStock",
       {SpecArg::Param("SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Constant(Value::Int(2))}},
  };
  spec.compensations = {
      {"R1", "ReleaseStock",
       {SpecArg::Param("SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Constant(Value::Int(1))}},
      {"R2", "ReleaseStock",
       {SpecArg::Param("SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Constant(Value::Int(2))}},
  };
  spec.outputs = {{"Reserved", "R2", "Reserved", DataType::kNull}};
  Status status = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FF454"), std::string::npos) << status;
}

TEST(SagaGateTest, UnorderedCaptureSourceIsRejected) {
  // The undo argument reads GR, which has no dependency ordering it before
  // the write — its output would not be captured when the write applies.
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  FederatedFunctionSpec spec;
  spec.name = "ProcureUnordered";
  spec.params = {Column{"SupplierNo", DataType::kInt},
                 Column{"CompNo", DataType::kInt}};
  spec.calls = {
      {"RS", "stock", "ReserveStock",
       {SpecArg::Param("SupplierNo"), SpecArg::Param("CompNo"),
        SpecArg::Constant(Value::Int(1))}},
      {"GR", "purchasing", "GetReliability", {SpecArg::Param("SupplierNo")}},
  };
  spec.compensations = {{"RS", "ReleaseStock",
                         {SpecArg::Param("SupplierNo"), SpecArg::Param("CompNo"),
                          SpecArg::NodeColumn("GR", "Relia")}}};
  spec.outputs = {{"Relia", "GR", "Relia", DataType::kNull}};
  Status status = (*server)->RegisterFederatedFunction(spec);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("FF455"), std::string::npos) << status;
}

TEST(SagaTest, WriteCallsNeverRideTheResultCache) {
  for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf}) {
    SCOPED_TRACE(ArchitectureName(arch));
    auto server = MakeSagaServer(arch);
    ASSERT_NE(server, nullptr);
    server->set_caching_enabled(true);

    // A cached read function establishes the baseline behavior...
    for (int i = 0; i < 3; ++i) {
      auto read = server->CallFederated("GetNumberSupp1234", {Value::Int(17)});
      ASSERT_TRUE(read.ok()) << read.status();
    }
    const int64_t invalidations_before =
        server->result_cache().stats().invalidations;

    // ...while every saga call runs for real: three calls, three orders.
    for (int i = 0; i < 3; ++i) {
      auto result = server->CallFederated("ProcureComponent", ProcureArgs());
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(IntCell(result->table, "OrderNo"), 9000 + i);
    }
    EXPECT_EQ(Stock(server.get())->reserved(1234, 17), 15);
    EXPECT_EQ(Purchasing(server.get())->open_order_count(), 3);
    EXPECT_EQ(CallCount(Stock(server.get()), "ReserveStock"), 3)
        << "write calls must not be memoized";

    // The writes bumped the stock data version, so the resident read entry
    // is versioned out instead of served stale.
    auto read = server->CallFederated("GetNumberSupp1234", {Value::Int(17)});
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_GT(server->result_cache().stats().invalidations,
              invalidations_before);
  }
}

TEST(SagaTest, ConcurrentSagasCommitExactlyOncePerFlow) {
  // TSan smoke: concurrent write-path flows on a pooled deployment. Every
  // flow is its own saga; the coordinator's ledger, log, and the stores'
  // mutexes must serialize them without losing or doubling an apply.
  ControllerPoolOptions pool;
  pool.max_size = 4;
  auto server = MakeSagaServer(Architecture::kWfms, {}, pool);
  ASSERT_NE(server, nullptr);
  std::atomic<int> committed{0};
  {
    ThreadPool threads(4);
    for (int t = 0; t < 8; ++t) {
      threads.Submit([&server, &committed, t] {
        auto result = server->CallFederatedFor(
            "tenant" + std::to_string(t % 4), "ProcureComponent",
            ProcureArgs());
        if (result.ok()) committed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(committed.load(), 8);
  EXPECT_EQ(Stock(server.get())->reserved(1234, 17), 8 * 5);
  EXPECT_EQ(Purchasing(server.get())->open_order_count(), 8);
  EXPECT_EQ(CallCount(Stock(server.get()), "ReserveStock"), 8);
  EXPECT_EQ(CallCount(Purchasing(server.get()), "PlaceOrder"), 8);
  EXPECT_EQ(server->saga_runtime().ledger_size(), 0);
}

}  // namespace
}  // namespace fedflow::federation
