// End-to-end fedtrace tests over the sample scenario: the trace-derived
// Fig. 6 per-step breakdown must equal the clock's step accounting exactly,
// tracing must be cost-neutral (disabled AND enabled), the RMI boundary must
// propagate trace context so server-side spans parent under the client call
// span, and the metrics registry must record the stack's activity.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "federation/sample_scenario.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace fedflow::federation {
namespace {

const std::vector<Value>& NoSuppArgs() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Varchar("brakepad")};
  return args;
}

std::map<obs::SpanId, obs::Span> ById(const std::vector<obs::Span>& spans) {
  std::map<obs::SpanId, obs::Span> by_id;
  for (const obs::Span& s : spans) by_id[s.id] = s;
  return by_id;
}

class TraceIntegrationTest : public ::testing::TestWithParam<Architecture> {};

/// The tentpole proof: reassembling the breakdown from span charges yields
/// the clock's TimeBreakdown bit-identically — same steps, same insertion
/// order, same durations — for the paper's Fig. 6 function.
TEST_P(TraceIntegrationTest, TraceDerivedBreakdownEqualsClockExactly) {
  auto server = MakeSampleServer(GetParam());
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->tracer().Enable();
  auto result = (*server)->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<obs::Span> spans = (*server)->tracer().Snapshot();
  ASSERT_FALSE(spans.empty());
  TimeBreakdown derived = obs::BreakdownFromSpans(spans);
  EXPECT_EQ(derived.entries(), result->breakdown.entries());
  EXPECT_GT(result->breakdown.Total(), 0);
}

/// Tracing is free in virtual time: a traced run reports the same elapsed
/// time and breakdown as an untraced run of the same call.
TEST_P(TraceIntegrationTest, TracingIsVirtualTimeNeutral) {
  auto plain = MakeSampleServer(GetParam());
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto traced = MakeSampleServer(GetParam());
  ASSERT_TRUE(traced.ok()) << traced.status();
  (*traced)->tracer().Enable();

  auto p = (*plain)->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(p.ok()) << p.status();
  auto t = (*traced)->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(t.ok()) << t.status();

  EXPECT_EQ(p->elapsed_us, t->elapsed_us);
  EXPECT_EQ(p->breakdown.entries(), t->breakdown.entries());
  EXPECT_EQ((*plain)->tracer().span_count(), 0u);
}

/// Cross-boundary propagation, verified on the whole stack: every serve-side
/// RMI span is a child of a client-side `rmi:` span via the wire context.
TEST_P(TraceIntegrationTest, ServeSpansParentUnderClientCallSpans) {
  auto server = MakeSampleServer(GetParam());
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->tracer().Enable();
  auto result = (*server)->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<obs::Span> spans = (*server)->tracer().Snapshot();
  auto by_id = ById(spans);
  size_t serve_count = 0;
  for (const obs::Span& s : spans) {
    if (s.name.rfind("serve:", 0) != 0) continue;
    ++serve_count;
    EXPECT_TRUE(s.remote_parent) << s.name;
    ASSERT_NE(s.parent, 0u) << s.name;
    const obs::Span& parent = by_id.at(s.parent);
    EXPECT_EQ(parent.layer, obs::Layer::kRmi);
    EXPECT_EQ(parent.name.rfind("rmi:", 0), 0u) << parent.name;
    EXPECT_EQ(parent.trace_id, s.trace_id);
  }
  EXPECT_GT(serve_count, 0u);
}

/// Every architectural layer the coupling exercises shows up in the trace,
/// and appsys spans sit under the serve span via an unbroken parent chain.
TEST_P(TraceIntegrationTest, AllLayersAppearWithUnbrokenAncestry) {
  auto server = MakeSampleServer(GetParam());
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->tracer().Enable();
  auto result = (*server)->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<obs::Span> spans = (*server)->tracer().Snapshot();
  auto by_id = ById(spans);
  std::map<obs::Layer, size_t> layer_counts;
  for (const obs::Span& s : spans) ++layer_counts[s.layer];
  EXPECT_GT(layer_counts[obs::Layer::kFdbs], 0u);
  EXPECT_GT(layer_counts[obs::Layer::kCoupling], 0u);
  EXPECT_GT(layer_counts[obs::Layer::kRmi], 0u);
  EXPECT_GT(layer_counts[obs::Layer::kAppsys], 0u);
  if (GetParam() == Architecture::kWfms) {
    EXPECT_GT(layer_counts[obs::Layer::kWfms], 0u);
  }

  // Each appsys span reaches the root "query" span by walking parents.
  for (const obs::Span& s : spans) {
    if (s.layer != obs::Layer::kAppsys) continue;
    obs::SpanId cursor = s.id;
    size_t hops = 0;
    while (by_id.at(cursor).parent != 0 && hops < 64) {
      cursor = by_id.at(cursor).parent;
      ++hops;
    }
    EXPECT_EQ(by_id.at(cursor).name, "query") << "orphaned: " << s.name;
  }
}

INSTANTIATE_TEST_SUITE_P(BothArchitectures, TraceIntegrationTest,
                         ::testing::Values(Architecture::kWfms,
                                           Architecture::kUdtf),
                         [](const auto& info) {
                           return info.param == Architecture::kWfms ? "Wfms"
                                                                    : "Udtf";
                         });

/// The WfMS trace mirrors the engine's audit trail: process and activity
/// spans carry the audit records as span events, under the process span
/// hierarchy.
TEST(WfmsTraceTest, ProcessSpanMirrorsAuditTrail) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  (*server)->tracer().Enable();
  auto result = (*server)->CallFederated("GetNoSuppComp", NoSuppArgs());
  ASSERT_TRUE(result.ok()) << result.status();

  std::vector<obs::Span> spans = (*server)->tracer().Snapshot();
  auto by_id = ById(spans);
  const obs::Span* proc = nullptr;
  for (const obs::Span& s : spans) {
    if (s.name.rfind("wf:", 0) == 0) proc = &by_id.at(s.id);
  }
  ASSERT_NE(proc, nullptr);
  bool started = false;
  bool finished = false;
  for (const obs::SpanEvent& e : proc->events) {
    if (e.name == "process started") started = true;
    if (e.name == "process finished") finished = true;
  }
  EXPECT_TRUE(started);
  EXPECT_TRUE(finished);

  // One activity span per executed activity, each a child of the process
  // span, with checkpoint events (RunRecoverable persists every completion).
  size_t activities = 0;
  for (const obs::Span& s : spans) {
    if (s.name.rfind("activity:", 0) != 0) continue;
    ++activities;
    EXPECT_EQ(s.parent, proc->id);
    EXPECT_EQ(s.layer, obs::Layer::kWfms);
    bool checkpointed = false;
    for (const obs::SpanEvent& e : s.events) {
      if (e.name == "activity checkpointed") checkpointed = true;
    }
    EXPECT_TRUE(checkpointed) << s.name;
  }
  EXPECT_EQ(activities, 4u);  // GSN, GCN, GN, RESULT
}

/// Satellite: audit records are deterministically ordered by (virtual time,
/// activity index) under parallel forks — repeated runs of a forking process
/// produce the identical trail regardless of pool scheduling.
TEST(WfmsTraceTest, AuditOrderingIsDeterministicUnderParallelForks) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  wfms::Engine* engine = (*server)->engine();
  ASSERT_NE(engine, nullptr);
  wfms::ProgramInvoker* invoker = (*server)->program_invoker();
  ASSERT_NE(invoker, nullptr);

  // GetSuppQualRelia forks GQ and GR in parallel from the same input.
  std::vector<wfms::AuditEntry> reference;
  for (int run = 0; run < 10; ++run) {
    auto result =
        engine->Run("GetSuppQualRelia", {Value::Int(1234)}, invoker);
    ASSERT_TRUE(result.ok()) << result.status();
    const std::vector<wfms::AuditEntry>& entries = result->audit.entries();
    ASSERT_FALSE(entries.empty());
    // Ordered by (time, activity index); process-started leads.
    EXPECT_EQ(entries.front().event, wfms::AuditEvent::kProcessStarted);
    EXPECT_EQ(entries.back().event, wfms::AuditEvent::kProcessFinished);
    for (size_t i = 1; i < entries.size(); ++i) {
      EXPECT_LE(entries[i - 1].time, entries[i].time) << "entry " << i;
      if (entries[i - 1].time == entries[i].time &&
          entries[i - 1].event != wfms::AuditEvent::kProcessStarted &&
          entries[i].event != wfms::AuditEvent::kProcessFinished) {
        EXPECT_LE(entries[i - 1].activity_index, entries[i].activity_index)
            << "entry " << i;
      }
    }
    if (run == 0) {
      reference = entries;
    } else {
      ASSERT_EQ(entries.size(), reference.size());
      for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].time, reference[i].time) << "entry " << i;
        EXPECT_EQ(entries[i].event, reference[i].event) << "entry " << i;
        EXPECT_EQ(entries[i].activity, reference[i].activity) << "entry " << i;
        EXPECT_EQ(entries[i].activity_index, reference[i].activity_index)
            << "entry " << i;
      }
    }
  }
}

/// The metrics registry aggregates the stack's activity: call counts,
/// warmth transitions, and (WfMS) activity/checkpoint counts.
TEST(MetricsIntegrationTest, ServerRecordsCallAndWarmthMetrics) {
  auto server = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(server.ok()) << server.status();
  obs::MetricsRegistry& metrics = (*server)->metrics();
  EXPECT_EQ(metrics.counter("warmth.boot"), 1u);  // Create() boots once

  // The paper's cold/warm/hot protocol: boot, call another function (cold),
  // first call of the target (warm), repeat call of the target (hot).
  ASSERT_TRUE(
      (*server)->CallFederated("GibKompNr", {Value::Varchar("brakepad")}).ok());
  ASSERT_TRUE((*server)->CallFederated("GetNoSuppComp", NoSuppArgs()).ok());
  ASSERT_TRUE((*server)->CallFederated("GetNoSuppComp", NoSuppArgs()).ok());

  EXPECT_EQ(metrics.counter("call.count"), 3u);
  EXPECT_EQ(metrics.counter("call.function.GetNoSuppComp"), 2u);
  EXPECT_EQ(metrics.counter("call.warmth.cold"), 1u);
  EXPECT_EQ(metrics.counter("call.warmth.warm"), 1u);
  EXPECT_EQ(metrics.counter("call.warmth.hot"), 1u);
  EXPECT_EQ(metrics.counter("warmth.to_warm"), 1u);
  EXPECT_EQ(metrics.counter("warmth.to_hot"), 2u);  // one per first run
  // Every executed activity is checkpointed by the recoverable runner.
  EXPECT_GE(metrics.counter("wfms.activities"), 8u);
  EXPECT_EQ(metrics.counter("wfms.checkpoints"),
            metrics.counter("wfms.activities"));
  EXPECT_EQ(metrics.counter("wfms.resumes"), 0u);

  EXPECT_EQ(metrics.histogram("call.elapsed_us.cold").count(), 1u);
  EXPECT_EQ(metrics.histogram("call.elapsed_us.warm").count(), 1u);
  EXPECT_EQ(metrics.histogram("call.elapsed_us.hot").count(), 1u);

  // Reboot re-boots the infrastructure.
  (*server)->Reboot();
  EXPECT_EQ(metrics.counter("warmth.boot"), 2u);
}

}  // namespace
}  // namespace fedflow::federation
