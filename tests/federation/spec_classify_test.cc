#include <gtest/gtest.h>

#include "federation/classify.h"
#include "federation/sample_scenario.h"
#include "federation/spec.h"

namespace fedflow::federation {
namespace {

TEST(SpecValidateTest, SampleSpecsAreValid) {
  for (const FederatedFunctionSpec& spec : AllSampleSpecs()) {
    EXPECT_TRUE(ValidateSpec(spec).ok()) << spec.name;
  }
}

TEST(SpecValidateTest, RejectsEmptySpecs) {
  FederatedFunctionSpec spec;
  EXPECT_FALSE(ValidateSpec(spec).ok());
  spec.name = "f";
  EXPECT_FALSE(ValidateSpec(spec).ok());  // no calls
}

TEST(SpecValidateTest, RejectsDuplicateCallIds) {
  FederatedFunctionSpec spec = GetSuppQualSpec();
  spec.calls.push_back(spec.calls[0]);
  auto st = ValidateSpec(spec);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
}

TEST(SpecValidateTest, RejectsUnknownParamReference) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.calls[0].args[0] = SpecArg::Param("Ghost");
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(SpecValidateTest, RejectsIterationOutsideLoop) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.calls[0].args[0] = SpecArg::Param("ITERATION");
  auto st = ValidateSpec(spec);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ITERATION"), std::string::npos);
}

TEST(SpecValidateTest, RejectsUnknownNodeReference) {
  FederatedFunctionSpec spec = GetSuppQualSpec();
  spec.calls[1].args[0] = SpecArg::NodeColumn("Ghost", "x");
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(SpecValidateTest, RejectsSelfReference) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.calls[0].args[0] = SpecArg::NodeColumn("GCN", "No");
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(SpecValidateTest, RejectsCyclicDependencies) {
  FederatedFunctionSpec spec;
  spec.name = "cycle";
  spec.calls = {
      {"A", "s", "f", {SpecArg::NodeColumn("B", "v")}},
      {"B", "s", "f", {SpecArg::NodeColumn("A", "v")}},
  };
  spec.outputs = {{"v", "A", "v", DataType::kNull}};
  auto st = ValidateSpec(spec);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cyclic"), std::string::npos);
}

TEST(SpecValidateTest, RejectsMissingOutputs) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.outputs.clear();
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(SpecValidateTest, LoopNeedsDeclaredCountParam) {
  FederatedFunctionSpec spec = AllCompNamesSpec();
  spec.loop.count_param = "Ghost";
  EXPECT_FALSE(ValidateSpec(spec).ok());
  spec.loop.count_param = "";
  EXPECT_FALSE(ValidateSpec(spec).ok());
}

TEST(TopologicalOrderTest, RespectsDependencies) {
  FederatedFunctionSpec spec = BuySuppCompSpec();
  auto order = TopologicalCallOrder(spec);
  ASSERT_TRUE(order.ok());
  auto pos = [&](const std::string& id) {
    for (size_t i = 0; i < order->size(); ++i) {
      if (spec.calls[(*order)[i]].id == id) return i;
    }
    return SIZE_MAX;
  };
  EXPECT_LT(pos("GQ"), pos("GG"));
  EXPECT_LT(pos("GR"), pos("GG"));
  EXPECT_LT(pos("GG"), pos("DP"));
  EXPECT_LT(pos("GCN"), pos("DP"));
}

TEST(TopologicalOrderTest, StableForIndependentCalls) {
  FederatedFunctionSpec spec = GetSuppQualReliaSpec();
  auto order = TopologicalCallOrder(spec);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[0], 0u);
  EXPECT_EQ((*order)[1], 1u);
}

// --- classification ----------------------------------------------------------

struct ClassifyCase {
  const char* name;
  MappingCase expected;
};

class ClassifySampleTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifySampleTest, SampleSpecClassifiesAsExpected) {
  for (const FederatedFunctionSpec& spec : AllSampleSpecs()) {
    if (spec.name == GetParam().name) {
      auto c = ClassifySpec(spec);
      ASSERT_TRUE(c.ok()) << c.status();
      EXPECT_EQ(*c, GetParam().expected)
          << spec.name << " -> " << MappingCaseName(*c);
      return;
    }
  }
  FAIL() << "sample spec not found: " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, ClassifySampleTest,
    ::testing::Values(
        ClassifyCase{"GibKompNr", MappingCase::kTrivial},
        ClassifyCase{"GetNumberSupp1234", MappingCase::kSimple},
        ClassifyCase{"GetSuppQualRelia", MappingCase::kIndependent},
        ClassifyCase{"GetSuppQual", MappingCase::kDependentLinear},
        ClassifyCase{"GetSubCompDiscounts", MappingCase::kIndependent},
        ClassifyCase{"GetNoSuppComp", MappingCase::kDependent1N},
        ClassifyCase{"GetSuppInfo", MappingCase::kDependentN1},
        ClassifyCase{"BuySuppComp", MappingCase::kDependent1N},
        ClassifyCase{"AllCompNames", MappingCase::kDependentCyclic}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ClassifyTest, RenamedOutputStaysTrivial) {
  // "Only the names of the functions and parameters may differ."
  auto c = ClassifySpec(GibKompNrSpec());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, MappingCase::kTrivial);
}

TEST(ClassifyTest, CastMakesItSimple) {
  FederatedFunctionSpec spec = GibKompNrSpec();
  spec.outputs[0].cast_to = DataType::kBigInt;
  EXPECT_EQ(*ClassifySpec(spec), MappingCase::kSimple);
}

TEST(ClassifyTest, ParamReorderMakesItSimple) {
  FederatedFunctionSpec spec;
  spec.name = "Swapped";
  spec.params = {Column{"A", DataType::kInt}, Column{"B", DataType::kInt}};
  spec.calls = {{"N", "stock", "GetNumber",
                 {SpecArg::Param("B"), SpecArg::Param("A")}}};
  spec.outputs = {{"Number", "N", "Number", DataType::kNull}};
  EXPECT_EQ(*ClassifySpec(spec), MappingCase::kSimple);
}

TEST(ClassifyTest, ChainPlusDetachedNodeIsMixedNotLinear) {
  // Regression: a two-call chain plus a detached third call mixes parallel
  // and sequential execution — the matrix's dependent (1:n) row. The
  // classifier used to call this shape dependent-linear; the rule now lives
  // in plan/shape.h, shared with the plan-IR classifier.
  FederatedFunctionSpec spec;
  spec.name = "Mixed";
  spec.params = {Column{"X", DataType::kInt}};
  spec.calls = {
      {"A", "s", "f", {SpecArg::Param("X")}},
      {"B", "s", "g", {SpecArg::NodeColumn("A", "v")}},
      {"C", "s", "h", {SpecArg::Param("X")}},
  };
  spec.outputs = {{"v", "B", "v", DataType::kNull}};
  auto c = ClassifySpec(spec);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(*c, MappingCase::kDependent1N);
}

TEST(ClassifySetTest, SharedLocalFunctionsMakeGeneralCase) {
  auto c = ClassifySet({BuySuppCompSpec(), GetSuppQualReliaSpec()});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, MappingCase::kGeneral);
}

TEST(ClassifySetTest, DisjointSetTakesWorstIndividualCase) {
  auto c = ClassifySet({GibKompNrSpec(), GetNumberSupp1234Spec()});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, MappingCase::kSimple);
}

TEST(ClassifySetTest, SingleSpecSetIsItsOwnCase) {
  auto c = ClassifySet({GetSuppQualSpec()});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, MappingCase::kDependentLinear);
}

TEST(ClassifySetTest, EmptySetRejected) {
  EXPECT_FALSE(ClassifySet({}).ok());
}

TEST(SupportMatrixTest, MatchesPaperTable) {
  auto matrix = SupportMatrix();
  ASSERT_EQ(matrix.size(), 8u);
  for (const SupportEntry& e : matrix) {
    EXPECT_EQ(e.udtf_supported, UdtfSupports(e.mapping_case));
    EXPECT_EQ(e.wfms_supported, WfmsSupports(e.mapping_case));
  }
  EXPECT_FALSE(UdtfSupports(MappingCase::kDependentCyclic));
  EXPECT_FALSE(UdtfSupports(MappingCase::kGeneral));
  EXPECT_TRUE(UdtfSupports(MappingCase::kDependent1N));
  EXPECT_TRUE(WfmsSupports(MappingCase::kDependentCyclic));
}

TEST(MappingCaseNameTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(MappingCase::kGeneral); ++i) {
    names.insert(MappingCaseName(static_cast<MappingCase>(i)));
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace fedflow::federation
