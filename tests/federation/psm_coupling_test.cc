// Tests of the PSM path in the UDTF coupling: stored procedures DO express
// the cyclic case (control structures), but remain CALL-only — exactly the
// trade-off the paper's §2/§3 describe.
#include <gtest/gtest.h>

#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "federation/sample_scenario.h"
#include "federation/udtf_coupling.h"

namespace fedflow::federation {
namespace {

class PsmCouplingTest : public ::testing::Test {
 protected:
  PsmCouplingTest()
      : scenario_(appsys::GenerateScenario({})),
        controller_(&systems_, &model_),
        udtf_(&db_, &systems_, &controller_, &model_, &state_) {
    (void)systems_.Add(std::make_shared<appsys::StockKeepingSystem>(scenario_));
    (void)systems_.Add(std::make_shared<appsys::PurchasingSystem>(scenario_));
    (void)systems_.Add(std::make_shared<appsys::PdmSystem>(scenario_));
    controller_.Start();
    EXPECT_TRUE(udtf_.RegisterAccessUdtfs().ok());
  }

  appsys::Scenario scenario_;
  appsys::AppSystemRegistry systems_;
  sim::LatencyModel model_;
  sim::SystemState state_;
  fdbs::Database db_;
  Controller controller_;
  UdtfCoupling udtf_;
};

TEST_F(PsmCouplingTest, GeneratedPsmForCyclicSpecParsesAndRuns) {
  auto sql = udtf_.CompilePsmSql(AllCompNamesSpec());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("CREATE PROCEDURE AllCompNames (MaxNo INT)"),
            std::string::npos);
  EXPECT_NE(sql->find("WHILE ITERATION < AllCompNames.MaxNo DO"),
            std::string::npos);
  EXPECT_NE(sql->find("EMIT SELECT"), std::string::npos);

  ASSERT_TRUE(udtf_.RegisterPsmProcedure(AllCompNamesSpec()).ok());
  auto result = db_.Execute("CALL AllCompNames(5)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 5u);
  EXPECT_EQ(result->rows()[0][0].AsVarchar(), "comp_1");
  EXPECT_EQ(result->rows()[4][0].AsVarchar(), "comp_5");
}

TEST_F(PsmCouplingTest, PsmProcedureNotReferencableInFrom) {
  ASSERT_TRUE(udtf_.RegisterPsmProcedure(AllCompNamesSpec()).ok());
  // The paper: "a user is not able to reference a stored procedure ... in a
  // select statement. Hence, such a mechanism cannot be combined with
  // references to other federated functions or tables."
  auto r = db_.Execute(
      "SELECT * FROM TABLE (AllCompNames(3)) AS A");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PsmCouplingTest, NonCyclicSpecCompilesToReturnSelect) {
  auto sql = udtf_.CompilePsmSql(GetSuppQualSpec());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("RETURN SELECT"), std::string::npos);
  EXPECT_EQ(sql->find("WHILE"), std::string::npos);

  ASSERT_TRUE(udtf_.RegisterPsmProcedure(GetSuppQualSpec()).ok());
  auto result = db_.Execute("CALL GetSuppQual('Stark')");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->num_rows(), 1u);
  EXPECT_EQ(result->rows()[0][0].AsInt(), 9);
}

TEST_F(PsmCouplingTest, PsmAgreesWithIUdtfOnSharedCases) {
  ASSERT_TRUE(udtf_.RegisterFederatedFunction(BuySuppCompSpec()).ok());
  // Procedures and functions live in different namespaces, so the same
  // federated function can exist in both shapes.
  ASSERT_TRUE(udtf_.RegisterPsmProcedure(BuySuppCompSpec()).ok());
  auto via_function = db_.Execute(
      "SELECT * FROM TABLE (BuySuppComp(1234, 'brakepad')) AS B");
  auto via_call = db_.Execute("CALL BuySuppComp(1234, 'brakepad')");
  ASSERT_TRUE(via_function.ok()) << via_function.status();
  ASSERT_TRUE(via_call.ok()) << via_call.status();
  ASSERT_EQ(via_call->num_rows(), 1u);
  EXPECT_EQ(via_function->rows()[0][0].AsVarchar(),
            via_call->rows()[0][0].AsVarchar());
}

TEST_F(PsmCouplingTest, GeneralCaseStillUnsupported) {
  auto sql = udtf_.CompilePsmSql(AllCompNamesSpec());
  ASSERT_TRUE(sql.ok());
  // The general-case rejection is at the set level; single specs compile.
  FederatedFunctionSpec spec = GibKompNrSpec();
  EXPECT_TRUE(udtf_.CompilePsmSql(spec).ok());
}

TEST_F(PsmCouplingTest, PsmLoopAgreesWithWfmsLoop) {
  ASSERT_TRUE(udtf_.RegisterPsmProcedure(AllCompNamesSpec()).ok());
  auto wfms = MakeSampleServer(Architecture::kWfms);
  ASSERT_TRUE(wfms.ok());
  auto via_wfms = (*wfms)->CallFederated("AllCompNames", {Value::Int(7)});
  ASSERT_TRUE(via_wfms.ok());
  auto via_psm = db_.Execute("CALL AllCompNames(7)");
  ASSERT_TRUE(via_psm.ok());
  EXPECT_TRUE(Table::SameRowsAnyOrder(via_wfms->table, *via_psm));
}

}  // namespace
}  // namespace fedflow::federation
