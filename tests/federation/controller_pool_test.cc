#include "federation/controller_pool.h"

#include <gtest/gtest.h>

#include <utility>

#include "appsys/registry.h"
#include "sim/latency.h"
#include "sim/system_state.h"

namespace fedflow::federation {
namespace {

ControllerPoolOptions Opts(size_t max_size, size_t warm_target = 0,
                           size_t quota = 0) {
  ControllerPoolOptions o;
  o.max_size = max_size;
  o.warm_target = warm_target;
  o.per_tenant_quota = quota;
  return o;
}

class ControllerPoolTest : public ::testing::Test {
 protected:
  appsys::AppSystemRegistry systems_;
  sim::LatencyModel model_;
};

TEST_F(ControllerPoolTest, SizeOneCheckoutIsThePinnedPrimary) {
  ControllerPool pool(&systems_, &model_, Opts(1));
  ASSERT_NE(pool.primary(), nullptr);
  ASSERT_NE(pool.primary_state(), nullptr);

  auto lease = pool.Checkout("default", "F");
  ASSERT_TRUE(lease.ok());
  // The single-flow identity: the lease hands out exactly the controller and
  // ledger the couplings were wired with.
  EXPECT_EQ(lease->controller(), pool.primary());
  EXPECT_EQ(lease->ledger(), pool.primary_state());
  EXPECT_EQ(pool.in_use(), 1u);

  auto second = pool.Checkout("default", "F");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
}

TEST_F(ControllerPoolTest, LeaseReturnsSlotOnDestructionAndOnRelease) {
  ControllerPool pool(&systems_, &model_, Opts(1));
  {
    auto lease = pool.Checkout("default", "");
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(pool.in_use(), 1u);
  }  // RAII return
  EXPECT_EQ(pool.in_use(), 0u);

  auto lease = pool.Checkout("default", "");
  ASSERT_TRUE(lease.ok());
  lease->Release();
  EXPECT_FALSE(lease->valid());
  EXPECT_EQ(pool.in_use(), 0u);
  lease->Release();  // idempotent
  EXPECT_EQ(pool.pool().stats().returns, 2);
}

TEST_F(ControllerPoolTest, CheckoutReturnOrderingIsMostRecentlyUsedFirst) {
  ControllerPool pool(&systems_, &model_, Opts(3));
  auto a = pool.Checkout("t", "");
  auto b = pool.Checkout("t", "");
  auto c = pool.Checkout("t", "");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  Controller* b_ctrl = b->controller();
  Controller* c_ctrl = c->controller();
  ASSERT_NE(b_ctrl, c_ctrl);

  // Return b, then c: the next flow gets c's controller (MRU keeps caches
  // warmest), and after that b's.
  b->Release();
  c->Release();
  auto next = pool.Checkout("t", "");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->controller(), c_ctrl);
  auto after = pool.Checkout("t", "");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->controller(), b_ctrl);
}

TEST_F(ControllerPoolTest, WarmToHotPromotionCountsAcrossCheckouts) {
  ControllerPool pool(&systems_, &model_, Opts(1));
  auto first = pool.Checkout("t", "F");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->warmth(), sim::SystemState::Warmth::kCold);
  first->ledger()->MarkRun("F");
  first->Release();

  auto warm = pool.Checkout("t", "G");  // infrastructure warm, G never ran
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->warmth(), sim::SystemState::Warmth::kWarm);
  warm->ledger()->MarkRun("G");
  warm->Release();

  auto hot = pool.Checkout("t", "F");  // F ran before on this controller
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->warmth(), sim::SystemState::Warmth::kHot);
  hot->Release();

  sim::WarmPool::Stats stats = pool.pool().stats();
  EXPECT_EQ(stats.cold_checkouts, 1);
  EXPECT_EQ(stats.warm_checkouts, 1);
  EXPECT_EQ(stats.hot_checkouts, 1);
}

TEST_F(ControllerPoolTest, LruEvictionDestroysControllersDeterministically) {
  ControllerPool pool(&systems_, &model_, Opts(3, /*warm_target=*/1));
  auto a = pool.Checkout("t", "");  // pinned
  auto b = pool.Checkout("t", "");
  auto c = pool.Checkout("t", "");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->controller(), pool.primary());
  EXPECT_EQ(pool.size(), 3u);

  // Releasing beyond the warm target trims LRU-first; the pinned primary is
  // never trimmed even when it is the least recently used idle slot.
  a->Release();
  EXPECT_EQ(pool.size(), 3u);
  b->Release();
  EXPECT_EQ(pool.size(), 2u);  // b evicted (LRU among evictable)
  c->Release();
  EXPECT_EQ(pool.size(), 1u);  // c evicted, primary survives
  EXPECT_EQ(pool.pool().stats().evicted, 2);
  EXPECT_EQ(pool.primary(), pool.Checkout("t", "")->controller());
}

TEST_F(ControllerPoolTest, TenantQuotaExhaustionIsUnavailable) {
  ControllerPool pool(&systems_, &model_, Opts(4, 0, /*quota=*/1));
  auto alice = pool.Checkout("alice", "");
  ASSERT_TRUE(alice.ok());

  auto again = pool.Checkout("alice", "");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.pool().stats().quota_rejections, 1);

  // The quota is per tenant, and frees with the lease.
  EXPECT_TRUE(pool.Checkout("bob", "").ok());
  alice->Release();
  EXPECT_TRUE(pool.Checkout("alice", "").ok());
}

TEST_F(ControllerPoolTest, StartPropagatesToLazilyCreatedControllers) {
  ControllerPool pool(&systems_, &model_, Opts(2));
  EXPECT_FALSE(pool.primary()->started());
  pool.Start();
  EXPECT_TRUE(pool.primary()->started());

  auto a = pool.Checkout("t", "");
  auto b = pool.Checkout("t", "");  // created after Start
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(b->controller()->started());
}

TEST_F(ControllerPoolTest, RebootRequiresNoOutstandingLeases) {
  ControllerPool pool(&systems_, &model_, Opts(2));
  pool.Start();
  auto lease = pool.Checkout("t", "F");
  ASSERT_TRUE(lease.ok());
  lease->ledger()->MarkRun("F");
  EXPECT_FALSE(pool.Reboot().ok());

  lease->Release();
  ASSERT_TRUE(pool.Reboot().ok());
  // Cold again, extra controllers gone, primary restarted.
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.primary()->started());
  auto after = pool.Checkout("t", "F");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->warmth(), sim::SystemState::Warmth::kCold);
}

}  // namespace
}  // namespace fedflow::federation
