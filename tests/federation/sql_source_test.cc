// Tests of remote SQL sources: external tables federated next to function
// access (the paper's "SQL subqueries for the SQL sources").
#include <gtest/gtest.h>

#include "federation/sample_scenario.h"
#include "federation/sql_source.h"

namespace fedflow::federation {
namespace {

class SqlSourceTest : public ::testing::Test {
 protected:
  SqlSourceTest() : source_("warehouse_db", &model_) {
    EXPECT_TRUE(source_.database()
                    .Execute("CREATE TABLE bins (comp VARCHAR, bin INT)")
                    .ok());
    EXPECT_TRUE(source_.database()
                    .Execute("INSERT INTO bins VALUES ('brakepad', 12), "
                             "('wheel', 7), ('brakepad', 13)")
                    .ok());
  }

  sim::LatencyModel model_;
  RemoteSqlSource source_;
  fdbs::Database federation_;
};

TEST_F(SqlSourceTest, AttachAndScan) {
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins", "bins").ok());
  auto r = federation_.Execute("SELECT * FROM bins ORDER BY bin");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->rows()[0][1].AsInt(), 7);
  EXPECT_EQ(source_.subqueries_shipped(), 1);
}

TEST_F(SqlSourceTest, AttachUnderDifferentLocalName) {
  ASSERT_TRUE(
      source_.AttachTable(&federation_, "warehouse_bins", "bins").ok());
  auto r = federation_.Execute(
      "SELECT COUNT(*) FROM warehouse_bins WHERE comp = 'brakepad'");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows()[0][0].AsBigInt(), 2);
}

TEST_F(SqlSourceTest, AttachUnknownRemoteTableFails) {
  EXPECT_FALSE(source_.AttachTable(&federation_, "x", "ghost").ok());
}

TEST_F(SqlSourceTest, NameCollisionWithLocalTableRejected) {
  ASSERT_TRUE(federation_.Execute("CREATE TABLE bins (x INT)").ok());
  EXPECT_FALSE(source_.AttachTable(&federation_, "bins", "bins").ok());
  // And the other direction: external first, CREATE TABLE second.
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins2", "bins").ok());
  EXPECT_FALSE(federation_.Execute("CREATE TABLE bins2 (x INT)").ok());
}

TEST_F(SqlSourceTest, ScansSeeRemoteUpdates) {
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins", "bins").ok());
  auto before = federation_.Execute("SELECT COUNT(*) FROM bins");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows()[0][0].AsBigInt(), 3);
  // The source stays autonomous: its own clients keep writing.
  ASSERT_TRUE(source_.database()
                  .Execute("INSERT INTO bins VALUES ('axle', 1)")
                  .ok());
  auto after = federation_.Execute("SELECT COUNT(*) FROM bins");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows()[0][0].AsBigInt(), 4);
}

TEST_F(SqlSourceTest, SubqueryShippingCostCharged) {
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins", "bins").ok());
  SimClock clock;
  fdbs::ExecContext ctx;
  ctx.clock = &clock;
  ASSERT_TRUE(federation_.Execute("SELECT * FROM bins", ctx).ok());
  EXPECT_GE(clock.breakdown().Of(sim::steps::kSqlSubqueries),
            model_.sql_subquery_base_us);
}

TEST_F(SqlSourceTest, JoinExternalTableWithLocalTable) {
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins", "bins").ok());
  ASSERT_TRUE(
      federation_.Execute("CREATE TABLE prices (comp VARCHAR, price INT)")
          .ok());
  ASSERT_TRUE(federation_
                  .Execute("INSERT INTO prices VALUES ('brakepad', 40), "
                           "('wheel', 120)")
                  .ok());
  auto r = federation_.Execute(
      "SELECT B.comp, B.bin, P.price FROM bins AS B, prices AS P "
      "WHERE B.comp = P.comp ORDER BY B.bin");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->rows()[0][2].AsInt(), 120);
}

TEST_F(SqlSourceTest, ExternalTableCombinesWithFederatedFunctions) {
  // The paper's full vision in one statement: a remote SQL source, the
  // federation's own data, and a federated function over application
  // systems.
  auto server = MakeSampleServer(Architecture::kUdtf);
  ASSERT_TRUE(server.ok());
  RemoteSqlSource warehouse("warehouse", &model_);
  ASSERT_TRUE(warehouse.database()
                  .Execute("CREATE TABLE shelf (name VARCHAR, qty INT)")
                  .ok());
  ASSERT_TRUE(warehouse.database()
                  .Execute("INSERT INTO shelf VALUES ('Stark', 4), "
                           "('Acme', 11)")
                  .ok());
  ASSERT_TRUE(
      warehouse.AttachTable(&(*server)->database(), "shelf", "shelf").ok());
  auto r = (*server)->Query(
      "SELECT S.name, S.qty, Q.Qual FROM shelf AS S, "
      "TABLE (GetSuppQual(S.name)) AS Q ORDER BY Q.Qual DESC");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->rows()[0][0].AsVarchar(), "Stark");
}

TEST_F(SqlSourceTest, TwoSourcesFederatedTogether) {
  RemoteSqlSource other("erp_db", &model_);
  ASSERT_TRUE(
      other.database().Execute("CREATE TABLE costs (comp VARCHAR, c INT)").ok());
  ASSERT_TRUE(other.database()
                  .Execute("INSERT INTO costs VALUES ('brakepad', 9)")
                  .ok());
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins", "bins").ok());
  ASSERT_TRUE(other.AttachTable(&federation_, "costs", "costs").ok());
  auto r = federation_.Execute(
      "SELECT B.bin, C.c FROM bins AS B, costs AS C "
      "WHERE B.comp = C.comp ORDER BY B.bin");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(source_.subqueries_shipped(), 1);
  EXPECT_EQ(other.subqueries_shipped(), 1);
}

TEST_F(SqlSourceTest, DropExternalTable) {
  ASSERT_TRUE(source_.AttachTable(&federation_, "bins", "bins").ok());
  ASSERT_TRUE(federation_.catalog().DropExternalTable("bins").ok());
  EXPECT_FALSE(federation_.Execute("SELECT * FROM bins").ok());
  EXPECT_FALSE(federation_.catalog().DropExternalTable("bins").ok());
}

}  // namespace
}  // namespace fedflow::federation
