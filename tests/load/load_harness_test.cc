#include "load/load_harness.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "federation/sample_scenario.h"
#include "obs/metrics.h"

namespace fedflow::load {
namespace {

using federation::Architecture;
using federation::ControllerPoolOptions;
using federation::IntegrationServer;

std::unique_ptr<IntegrationServer> MakeServer(Architecture arch,
                                              size_t pool_size) {
  ControllerPoolOptions pool;
  pool.max_size = pool_size;
  auto server = federation::MakeSampleServer(arch, {}, {}, pool);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

std::vector<Invocation> MixedWorkload() {
  return {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetNumberSupp1234", {Value::Int(17)}},
  };
}

LoadReport MustRun(IntegrationServer* server, const LoadOptions& options,
                   const std::vector<Invocation>& workload) {
  LoadHarness harness(server, options);
  auto report = harness.Run(workload);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

TEST(LoadHarnessTest, ClosedLoopCompletesEveryFlow) {
  auto server = MakeServer(Architecture::kUdtf, 2);
  LoadOptions options;
  options.mode = ArrivalMode::kClosed;
  options.concurrency = 4;
  options.total_invocations = 24;
  LoadReport report = MustRun(server.get(), options, MixedWorkload());

  EXPECT_EQ(report.completed, 24);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.short_circuited, 0);
  EXPECT_EQ(static_cast<int64_t>(report.sojourn_us.count()), 24);
  EXPECT_GT(report.makespan_us, 0);
  EXPECT_GT(report.ThroughputPerKiloSecond(), 0);
  // Four clients over two controllers: the queue backs up.
  EXPECT_GT(report.max_queue_depth, 0);
  EXPECT_EQ(server->metrics().counter("call.count"), 24u);
}

TEST(LoadHarnessTest, VirtualModeIsDeterministic) {
  LoadOptions options;
  options.mode = ArrivalMode::kOpen;
  options.mean_interarrival_us = 5000;
  options.total_invocations = 30;
  options.seed = 7;

  auto server_a = MakeServer(Architecture::kUdtf, 2);
  auto server_b = MakeServer(Architecture::kUdtf, 2);
  LoadReport a = MustRun(server_a.get(), options, MixedWorkload());
  LoadReport b = MustRun(server_b.get(), options, MixedWorkload());

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.sojourn_us.Percentile(500), b.sojourn_us.Percentile(500));
  EXPECT_EQ(a.sojourn_us.Percentile(999), b.sojourn_us.Percentile(999));
  EXPECT_EQ(a.pool.cold_checkouts, b.pool.cold_checkouts);
  EXPECT_EQ(a.pool.hot_checkouts, b.pool.hot_checkouts);
}

TEST(LoadHarnessTest, PooledControllersImproveTailLatencyOverSingleton) {
  // The acceptance experiment in miniature: same closed-loop load, pool of
  // 4 vs the paper's single controller. Contending clients queue behind the
  // singleton, so its sojourn tail and makespan must both be strictly worse.
  LoadOptions options;
  options.mode = ArrivalMode::kClosed;
  options.concurrency = 8;
  options.total_invocations = 48;

  auto single = MakeServer(Architecture::kUdtf, 1);
  auto pooled = MakeServer(Architecture::kUdtf, 4);
  LoadReport single_report = MustRun(single.get(), options, MixedWorkload());
  LoadReport pooled_report = MustRun(pooled.get(), options, MixedWorkload());

  EXPECT_EQ(single_report.completed, 48);
  EXPECT_EQ(pooled_report.completed, 48);
  EXPECT_LT(pooled_report.sojourn_us.Percentile(990),
            single_report.sojourn_us.Percentile(990));
  EXPECT_LT(pooled_report.makespan_us, single_report.makespan_us);
  EXPECT_GT(pooled_report.ThroughputPerKiloSecond(),
            single_report.ThroughputPerKiloSecond());
  // The pooled run had to create extra controllers (cold checkouts beyond
  // the pinned one), which is the price the tail improvement pays once.
  EXPECT_GT(pooled_report.pool.created, 0);
}

TEST(LoadHarnessTest, BoundedQueueRejectsOverflowArrivals) {
  auto server = MakeServer(Architecture::kUdtf, 1);
  LoadOptions options;
  options.mode = ArrivalMode::kOpen;
  options.mean_interarrival_us = 100;  // far above the service rate
  options.total_invocations = 40;
  options.queue_capacity = 2;
  LoadReport report = MustRun(server.get(), options, MixedWorkload());

  EXPECT_GT(report.rejected, 0);
  EXPECT_LE(report.max_queue_depth, 2);
  EXPECT_EQ(report.completed + report.failed + report.rejected +
                report.short_circuited,
            40);
}

TEST(LoadHarnessTest, RetryBudgetRecoversInjectedTransientFailure) {
  auto server = MakeServer(Architecture::kUdtf, 1);
  // Faults target local functions; GetSupplierNo is the first local call
  // behind the federated GetSuppQual. With coupling-level retries disabled
  // (the default policy) the transient failure bubbles out of the flow.
  server->fault_injector().InjectTransientFailures("GetSupplierNo", 1);
  LoadOptions options;
  options.mode = ArrivalMode::kClosed;
  options.concurrency = 1;
  options.total_invocations = 1;
  options.retry_budget = 2;
  options.retry_backoff_us = 500;
  LoadReport report =
      MustRun(server.get(), options, {{"GetSuppQual", {Value::Varchar("Stark")}}});

  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.retried, 1);
  // The retry waited out its backoff on the virtual timeline.
  EXPECT_GE(report.sojourn_us.min(), 500);
}

TEST(LoadHarnessTest, CircuitBreakerShortCircuitsAfterConsecutiveFailures) {
  auto server = MakeServer(Architecture::kUdtf, 1);
  server->fault_injector().InjectTransientFailures("GetSupplierNo", 2);
  LoadOptions options;
  options.mode = ArrivalMode::kClosed;
  options.concurrency = 1;
  options.total_invocations = 5;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_us = 1000000;
  LoadReport report =
      MustRun(server.get(), options, {{"GetSuppQual", {Value::Varchar("Stark")}}});

  // Two forced failures trip the breaker; the remaining closed-loop arrivals
  // land inside the cooldown and are short-circuited without touching the
  // pool.
  EXPECT_EQ(report.failed, 2);
  EXPECT_EQ(report.short_circuited, 3);
  EXPECT_EQ(report.completed, 0);
}

TEST(LoadHarnessTest, TenantsRoundRobinAndGetScopedMetrics) {
  auto server = MakeServer(Architecture::kUdtf, 2);
  LoadOptions options;
  options.mode = ArrivalMode::kClosed;
  options.concurrency = 2;
  options.total_invocations = 12;
  options.tenants = {"alice", "bob"};
  LoadReport report = MustRun(server.get(), options, MixedWorkload());

  EXPECT_EQ(report.completed, 12);
  EXPECT_EQ(server->metrics().counter(
                obs::TenantMetricName("alice", "call.count")),
            6u);
  EXPECT_EQ(server->metrics().counter(
                obs::TenantMetricName("bob", "call.count")),
            6u);
}

TEST(LoadHarnessTest, ThreadedSmokeCompletesAllFlows) {
  // The TSan mode: real workers through the per-call checkout path. Only
  // counts are asserted — timing is wall-dependent here.
  auto server = MakeServer(Architecture::kUdtf, 2);
  LoadOptions options;
  options.threads = 4;
  options.total_invocations = 32;
  LoadReport report = MustRun(server.get(), options, MixedWorkload());

  EXPECT_EQ(report.completed, 32);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(server->metrics().counter("call.count"), 32u);
}

TEST(LoadHarnessTest, EmptyWorkloadIsInvalid) {
  auto server = MakeServer(Architecture::kUdtf, 1);
  LoadHarness harness(server.get(), LoadOptions{});
  auto report = harness.Run({});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fedflow::load
