#include "sim/resource_pools.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fedflow::sim {
namespace {

WarmPoolOptions Opts(size_t max_size, size_t warm_target = 0,
                     size_t quota = 0) {
  WarmPoolOptions o;
  o.max_size = max_size;
  o.warm_target = warm_target;
  o.per_tenant_quota = quota;
  return o;
}

TEST(WarmPoolTest, PinnedSlotIsTheDefaultCheckout) {
  WarmPool pool("p");
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_NE(pool.pinned_slot(), 0u);

  auto out = pool.Acquire("default", "F");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->slot, pool.pinned_slot());
  EXPECT_FALSE(out->created);  // the pinned slot pre-exists
  // A never-booted ledger is cold for every function.
  EXPECT_EQ(out->warmth, SystemState::Warmth::kCold);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.stats().cold_checkouts, 1);
  EXPECT_EQ(pool.stats().created, 0);
}

TEST(WarmPoolTest, ExhaustedPoolRejectsWithUnavailable) {
  WarmPool pool("p", Opts(1));
  auto a = pool.Acquire("default", "");
  ASSERT_TRUE(a.ok());
  auto b = pool.Acquire("default", "");
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.stats().exhausted_rejections, 1);

  // A return unblocks the next checkout.
  pool.Release(a->slot);
  EXPECT_TRUE(pool.Acquire("default", "").ok());
}

TEST(WarmPoolTest, WarmthProgressesColdWarmHot) {
  WarmPool pool("p", Opts(1));
  auto first = pool.Acquire("t", "F");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->warmth, SystemState::Warmth::kCold);
  first->ledger->MarkRun("F");
  pool.Release(first->slot);

  // Infrastructure warm, G never ran: warm. F ran before: hot.
  auto warm = pool.Acquire("t", "G");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->warmth, SystemState::Warmth::kWarm);
  warm->ledger->MarkRun("G");
  pool.Release(warm->slot);

  auto hot = pool.Acquire("t", "F");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->warmth, SystemState::Warmth::kHot);

  WarmPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.cold_checkouts, 1);
  EXPECT_EQ(stats.warm_checkouts, 1);
  EXPECT_EQ(stats.hot_checkouts, 1);
}

TEST(WarmPoolTest, CheckoutPrefersMostRecentlyReturnedSlot) {
  WarmPool pool("p", Opts(3));
  auto a = pool.Acquire("t", "");
  auto b = pool.Acquire("t", "");
  auto c = pool.Acquire("t", "");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(pool.stats().created, 2);  // pinned slot plus two fresh ones

  // Return b, then c: c is the most recently used idle slot.
  pool.Release(b->slot);
  pool.Release(c->slot);
  auto next = pool.Acquire("t", "");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->slot, c->slot);
}

TEST(WarmPoolTest, HotAffinityBeatsMruRecency) {
  WarmPool pool("p", Opts(3));
  auto a = pool.Acquire("t", "");
  auto b = pool.Acquire("t", "");
  auto c = pool.Acquire("t", "");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  b->ledger->MarkRun("F");
  pool.Release(b->slot);
  pool.Release(c->slot);  // c is MRU, but only b is hot for F

  auto hot = pool.Acquire("t", "F");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->slot, b->slot);
  EXPECT_EQ(hot->warmth, SystemState::Warmth::kHot);
}

TEST(WarmPoolTest, LruEvictionBeyondWarmTargetIsDeterministic) {
  // warm_target 1: after a burst of three, returns trim idle slots down to
  // one, least recently used first. The pinned slot is never evicted even
  // when it is the LRU.
  WarmPool pool("p", Opts(3, 1));
  auto a = pool.Acquire("t", "");  // pinned
  auto b = pool.Acquire("t", "");
  auto c = pool.Acquire("t", "");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  const uint64_t pinned = pool.pinned_slot();
  EXPECT_EQ(a->slot, pinned);

  // Release the pinned slot first (making it LRU-idle), then b: idle is
  // {pinned, b} = 2 > warm_target 1, and the evictee must be b — the LRU
  // among evictable slots.
  std::vector<uint64_t> evicted = pool.Release(a->slot);
  EXPECT_TRUE(evicted.empty());
  evicted = pool.Release(b->slot);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], b->slot);

  // Releasing c evicts c for the same reason; the pool is back to the
  // pinned slot only.
  evicted = pool.Release(c->slot);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], c->slot);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().evicted, 2);
}

TEST(WarmPoolTest, TenantQuotaRejectsWithoutTouchingThePool) {
  WarmPool pool("p", Opts(3, 0, 1));
  auto a = pool.Acquire("alice", "");
  ASSERT_TRUE(a.ok());

  auto again = pool.Acquire("alice", "");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(pool.stats().quota_rejections, 1);
  EXPECT_EQ(pool.in_use(), 1u);  // the rejection consumed nothing

  // Another tenant still fits; alice fits again after her return.
  EXPECT_TRUE(pool.Acquire("bob", "").ok());
  pool.Release(a->slot);
  EXPECT_TRUE(pool.Acquire("alice", "").ok());
}

TEST(WarmPoolTest, RebootDropsWarmSlotsAndBootsThePinnedLedger) {
  WarmPool pool("p", Opts(3));
  auto a = pool.Acquire("t", "");
  auto b = pool.Acquire("t", "");
  ASSERT_TRUE(a.ok() && b.ok());
  a->ledger->MarkRun("F");
  pool.Release(a->slot);
  pool.Release(b->slot);
  ASSERT_EQ(pool.size(), 2u);

  std::vector<uint64_t> evicted = pool.Reboot();
  EXPECT_EQ(evicted.size(), 1u);
  EXPECT_EQ(pool.size(), 1u);
  // Everything is cold again, including the pinned ledger.
  auto out = pool.Acquire("t", "F");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->warmth, SystemState::Warmth::kCold);
}

TEST(WarmPoolTest, GaugesTrackOccupancy) {
  obs::MetricsRegistry metrics;
  WarmPool pool("ctrl", Opts(2));
  pool.AttachMetrics(&metrics);
  auto a = pool.Acquire("t", "");
  auto b = pool.Acquire("t", "");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(metrics.gauge("pool.ctrl.in_use"), 2);
  EXPECT_EQ(metrics.gauge("pool.ctrl.idle"), 0);
  pool.Release(a->slot);
  pool.Release(b->slot);
  EXPECT_EQ(metrics.gauge("pool.ctrl.in_use"), 0);
  EXPECT_EQ(metrics.gauge("pool.ctrl.idle"), 2);
  EXPECT_EQ(metrics.gauge("pool.ctrl.max_in_use"), 2);  // high-water mark
  EXPECT_EQ(metrics.counter("pool.ctrl.created"), 1u);
}

TEST(ResourcePoolsTest, RegistryCreatesOnceAndListsSorted) {
  ResourcePools pools;
  WarmPool* jvm = pools.GetOrCreate("jvm", Opts(4));
  WarmPool* conn = pools.GetOrCreate("connection", Opts(8));
  ASSERT_NE(jvm, nullptr);
  ASSERT_NE(conn, nullptr);
  // Second GetOrCreate returns the same pool; new options are ignored.
  EXPECT_EQ(pools.GetOrCreate("jvm", Opts(99)), jvm);
  EXPECT_EQ(jvm->options().max_size, 4u);
  EXPECT_EQ(pools.Get("nope"), nullptr);
  EXPECT_EQ(pools.Names(), (std::vector<std::string>{"connection", "jvm"}));
}

}  // namespace
}  // namespace fedflow::sim
