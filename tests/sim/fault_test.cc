// Fault injection, retry policies, and the failure behaviour of the RMI
// channel: injected faults carry wire costs, streams stay well-defined on
// empty/drained/malformed responses, and everything is seed-deterministic.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/vclock.h"
#include "sim/latency.h"
#include "sim/rmi.h"

namespace fedflow::sim {
namespace {

TEST(FaultInjectorTest, WithoutProfilesEveryDecisionIsInert) {
  FaultInjector faults(42);
  for (int i = 0; i < 10; ++i) {
    FaultInjector::Decision d = faults.Consult("GetNumber");
    EXPECT_EQ(d.fault, FaultInjector::Fault::kNone);
    EXPECT_EQ(d.extra_latency_us, 0);
  }
  EXPECT_EQ(faults.attempts("GetNumber"), 10);
  EXPECT_EQ(faults.injected_failures("GetNumber"), 0);
  EXPECT_EQ(faults.total_attempts(), 10);
}

TEST(FaultInjectorTest, ForcedFailuresConsumeBeforeAnyDraw) {
  FaultInjector faults;
  faults.InjectTransientFailures("F", 2);
  EXPECT_EQ(faults.Consult("F").fault, FaultInjector::Fault::kTransient);
  EXPECT_EQ(faults.Consult("f").fault, FaultInjector::Fault::kTransient);
  EXPECT_EQ(faults.Consult("F").fault, FaultInjector::Fault::kNone);
  EXPECT_EQ(faults.attempts("F"), 3);
  EXPECT_EQ(faults.injected_failures("F"), 2);
}

TEST(FaultInjectorTest, PermanentOutageFailsEveryAttempt) {
  FaultInjector faults;
  FaultProfile down;
  down.permanent_outage = true;
  faults.SetProfile("Dead", down);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(faults.Consult("DEAD").fault, FaultInjector::Fault::kPermanent);
  }
  EXPECT_EQ(faults.injected_failures("dead"), 5);
}

TEST(FaultInjectorTest, CertainRatesAlwaysFire) {
  FaultInjector faults(7);
  FaultProfile p;
  p.transient_failure_rate = 1.0;
  p.latency_spike_rate = 1.0;
  p.latency_spike_us = 250;
  faults.SetProfile("Flaky", p);
  FaultInjector::Decision d = faults.Consult("Flaky");
  EXPECT_EQ(d.fault, FaultInjector::Fault::kTransient);
  EXPECT_EQ(d.extra_latency_us, 250);
}

TEST(FaultInjectorTest, SameSeedSameFunctionSameDecisionSequence) {
  FaultProfile p;
  p.transient_failure_rate = 0.35;
  p.latency_spike_rate = 0.2;
  p.latency_spike_us = 100;
  FaultInjector a(123), b(123);
  a.SetProfile("GSN", p);
  b.SetProfile("gsn", p);  // case-insensitive: same stream
  for (int i = 0; i < 200; ++i) {
    FaultInjector::Decision da = a.Consult("GSN");
    FaultInjector::Decision db = b.Consult("GSN");
    EXPECT_EQ(da.fault, db.fault) << "attempt " << i;
    EXPECT_EQ(da.extra_latency_us, db.extra_latency_us) << "attempt " << i;
  }
}

TEST(FaultInjectorTest, StreamsArePerFunctionNotInterleaved) {
  // Consulting another function between attempts must not shift a
  // function's stream — that is what makes outcomes immune to thread
  // scheduling across functions.
  FaultProfile p;
  p.transient_failure_rate = 0.5;
  FaultInjector lone(9), mixed(9);
  lone.SetProfile("A", p);
  mixed.SetProfile("A", p);
  mixed.SetProfile("B", p);
  for (int i = 0; i < 100; ++i) {
    (void)mixed.Consult("B");
    EXPECT_EQ(lone.Consult("A").fault, mixed.Consult("A").fault)
        << "attempt " << i;
  }
}

TEST(FaultInjectorTest, ClearProfilesKeepsCountersResetCountersKeepsProfiles) {
  FaultInjector faults;
  faults.InjectTransientFailures("F", 1);
  (void)faults.Consult("F");
  faults.ClearProfiles();
  EXPECT_EQ(faults.attempts("F"), 1);
  EXPECT_EQ(faults.Consult("F").fault, FaultInjector::Fault::kNone);

  FaultProfile down;
  down.permanent_outage = true;
  faults.SetProfile("F", down);
  faults.ResetCounters();
  EXPECT_EQ(faults.attempts("F"), 0);
  EXPECT_EQ(faults.injected_failures("F"), 0);
  EXPECT_EQ(faults.Consult("F").fault, FaultInjector::Fault::kPermanent);
}

TEST(RetryPolicyTest, DefaultIsDisabled) {
  RetryPolicy policy;
  EXPECT_FALSE(policy.enabled());
  EXPECT_EQ(policy.max_attempts, 1);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_us = 1000;
  policy.backoff_multiplier = 2;
  policy.max_backoff_us = 32000;
  EXPECT_EQ(policy.BackoffBefore(1), 0);  // first try waits for nothing
  EXPECT_EQ(policy.BackoffBefore(2), 1000);
  EXPECT_EQ(policy.BackoffBefore(3), 2000);
  EXPECT_EQ(policy.BackoffBefore(4), 4000);
  EXPECT_EQ(policy.BackoffBefore(7), 32000);   // 32000 exactly at the cap
  EXPECT_EQ(policy.BackoffBefore(8), 32000);   // 64000 clamped
  EXPECT_EQ(policy.BackoffBefore(100), 32000);
}

TEST(RetryLoopTest, IsRetriableOnlyForUnavailable) {
  EXPECT_TRUE(IsRetriable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetriable(Status::OK()));
  EXPECT_FALSE(IsRetriable(Status::Internal("x")));
  EXPECT_FALSE(IsRetriable(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsRetriable(Status::NotFound("x")));
}

TEST(RetryLoopTest, NullPolicyNeverRetries) {
  RetryLoop loop(nullptr, nullptr);
  EXPECT_FALSE(loop.ShouldRetry(Status::Unavailable("x")));
}

TEST(RetryLoopTest, RetriesUpToMaxAttemptsChargingBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 500;
  policy.backoff_multiplier = 2;
  SimClock clock;
  RetryLoop loop(&policy, &clock);
  ASSERT_TRUE(loop.ShouldRetry(Status::Unavailable("x")));
  ASSERT_TRUE(loop.Backoff().ok());
  EXPECT_EQ(clock.now(), 500);
  ASSERT_TRUE(loop.ShouldRetry(Status::Unavailable("x")));
  ASSERT_TRUE(loop.Backoff().ok());
  EXPECT_EQ(clock.now(), 1500);
  EXPECT_EQ(clock.breakdown().Of(steps::kRetryBackoff), 1500);
  // All three attempts spent.
  EXPECT_EQ(loop.attempt(), 3);
  EXPECT_FALSE(loop.ShouldRetry(Status::Unavailable("x")));
  // Non-retriable failures never loop.
  EXPECT_FALSE(loop.ShouldRetry(Status::Internal("x")));
}

TEST(RetryLoopTest, DeadlineConvertsToDeadlineExceededWithoutCharging) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 1000;
  policy.deadline_us = 1500;
  SimClock clock;
  clock.Charge("work", 1000);  // pre-loop work; the budget starts after it
  RetryLoop loop(&policy, &clock);
  // First backoff: 1000us elapsed since the loop started, within budget.
  ASSERT_TRUE(loop.Backoff().ok());
  EXPECT_EQ(clock.now(), 2000);
  // Second backoff (2000us) would put the call 3000us past its start,
  // blowing the 1500us budget.
  Status s = loop.Backoff();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(clock.now(), 2000) << "an abandoned wait is not charged";
}

// --- RMI channel failure behaviour -----------------------------------------

Result<Table> EchoHandler(const std::string&, const std::vector<Value>& args) {
  Schema s;
  s.AddColumn("v", DataType::kInt);
  Table t(s);
  t.AppendRowUnchecked({args.empty() ? Value::Int(0) : args[0]});
  return t;
}

TEST(RmiFaultTest, InjectedTransientFailureIsUnavailableAndCharged) {
  LatencyModel model;
  FaultInjector faults;
  faults.InjectTransientFailures("Ping", 1);
  RmiChannel rmi(&model, &faults);
  RmiChannel::CallCosts costs;
  auto result = rmi.Invoke("Ping", {Value::Int(1)}, EchoHandler, &costs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // The request leg was spent and the error response rode back.
  EXPECT_GE(costs.call_us, model.rmi_call_base_us);
  EXPECT_GE(costs.return_us, model.rmi_return_base_us);

  // The next attempt (forced failure consumed) succeeds.
  auto retry = rmi.Invoke("Ping", {Value::Int(1)}, EchoHandler, &costs);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(faults.attempts("Ping"), 2);
}

TEST(RmiFaultTest, PermanentOutageNamesTheFunction) {
  LatencyModel model;
  FaultInjector faults;
  FaultProfile down;
  down.permanent_outage = true;
  faults.SetProfile("Ping", down);
  RmiChannel rmi(&model, &faults);
  auto result = rmi.Invoke("Ping", {}, EchoHandler, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("permanent outage"),
            std::string::npos);
}

TEST(RmiFaultTest, LatencySpikeInflatesTheRequestLeg) {
  LatencyModel model;
  FaultInjector faults;
  FaultProfile spiky;
  spiky.latency_spike_rate = 1.0;
  spiky.latency_spike_us = 777;
  faults.SetProfile("Ping", spiky);
  RmiChannel plain(&model);
  RmiChannel spiked(&model, &faults);
  RmiChannel::CallCosts base_costs, spike_costs;
  ASSERT_TRUE(plain.Invoke("Ping", {Value::Int(1)}, EchoHandler, &base_costs)
                  .ok());
  ASSERT_TRUE(
      spiked.Invoke("Ping", {Value::Int(1)}, EchoHandler, &spike_costs).ok());
  EXPECT_EQ(spike_costs.call_us, base_costs.call_us + 777);
  EXPECT_EQ(spike_costs.return_us, base_costs.return_us);
}

TEST(RmiFaultTest, HandlerFailureStillReportsWireCosts) {
  // Regression: a failed call used to leave *costs untouched, making remote
  // failures free in virtual time.
  LatencyModel model;
  RmiChannel rmi(&model);
  auto failing = [](const std::string&,
                    const std::vector<Value>&) -> Result<Table> {
    return Status::Internal("backend exploded");
  };
  RmiChannel::CallCosts costs;
  auto result = rmi.Invoke("Boom", {Value::Int(1)}, failing, &costs);
  ASSERT_FALSE(result.ok());
  EXPECT_GT(costs.call_us, 0);
  EXPECT_EQ(costs.return_us,
            model.rmi_return_base_us +
                model.MarshalCost(result.status().message().size()));

  // The request leg costs exactly what a successful call's request leg does.
  RmiChannel::CallCosts ok_costs;
  ASSERT_TRUE(rmi.Invoke("Boom", {Value::Int(1)}, EchoHandler, &ok_costs).ok());
  EXPECT_EQ(costs.call_us, ok_costs.call_us);
}

TEST(RmiFaultTest, StreamingFailuresAreChargedLikeInvoke) {
  LatencyModel model;
  FaultInjector faults;
  faults.InjectTransientFailures("Ping", 1);
  RmiChannel rmi(&model, &faults);
  RmiChannel::CallCosts costs;
  auto stream = rmi.InvokeStreaming("Ping", {Value::Int(1)}, EchoHandler, 8,
                                    &costs, nullptr);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(costs.call_us, model.rmi_call_base_us);
  EXPECT_GE(costs.return_us, model.rmi_return_base_us);
}

// --- RMI streaming edge cases ----------------------------------------------

Result<Table> RowsHandler(int n) {
  Schema s;
  s.AddColumn("v", DataType::kInt);
  Table t(s);
  for (int i = 0; i < n; ++i) t.AppendRowUnchecked({Value::Int(i)});
  return t;
}

TEST(RmiStreamingEdgeTest, ZeroRowStreamChargesHeaderOnFirstEmptyChunk) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto empty = [](const std::string&,
                  const std::vector<Value>&) -> Result<Table> {
    return RowsHandler(0);
  };
  // Reference: the one-shot call's return cost covers base + header bytes.
  RmiChannel::CallCosts one_shot;
  ASSERT_TRUE(rmi.Invoke("Empty", {}, empty, &one_shot).ok());

  VDuration streamed = 0;
  RmiChannel::CallCosts costs;
  auto stream = rmi.InvokeStreaming("Empty", {}, empty, 4, &costs,
                                    [&](VDuration c) { streamed += c; });
  ASSERT_TRUE(stream.ok()) << stream.status();
  EXPECT_EQ(costs.return_us, 0) << "response leg arrives through on_chunk";

  auto first = (*stream)->Next();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->rows.empty());
  EXPECT_EQ(streamed, one_shot.return_us)
      << "header-only response: base + header cost on the first empty chunk";

  // Re-polling the drained stream yields empty batches and no new charges.
  auto again = (*stream)->Next();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->rows.empty());
  EXPECT_EQ(streamed, one_shot.return_us);
}

TEST(RmiStreamingEdgeTest, DrainedSourceKeepsReturningEmptyBatchesForFree) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto three = [](const std::string&,
                  const std::vector<Value>&) -> Result<Table> {
    return RowsHandler(3);
  };
  RmiChannel::CallCosts one_shot;
  ASSERT_TRUE(rmi.Invoke("Three", {}, three, &one_shot).ok());

  VDuration streamed = 0;
  auto stream = rmi.InvokeStreaming("Three", {}, three, 2, nullptr,
                                    [&](VDuration c) { streamed += c; });
  ASSERT_TRUE(stream.ok()) << stream.status();
  auto b1 = (*stream)->Next();
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1->rows.size(), 2u);
  auto b2 = (*stream)->Next();
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->rows.size(), 1u);
  EXPECT_EQ(streamed, one_shot.return_us)
      << "telescoped chunk costs must equal the one-shot return cost";
  for (int i = 0; i < 3; ++i) {
    auto drained = (*stream)->Next();
    ASSERT_TRUE(drained.ok());
    EXPECT_TRUE(drained->rows.empty());
  }
  EXPECT_EQ(streamed, one_shot.return_us) << "re-polling is free";
}

std::vector<uint8_t> EncodeResponse(int rows_encoded, uint32_t rows_claimed) {
  Schema s;
  s.AddColumn("v", DataType::kInt);
  ByteWriter w;
  w.PutSchema(s);
  w.PutU32(rows_claimed);
  for (int i = 0; i < rows_encoded; ++i) {
    w.PutRow({Value::Int(i)});
  }
  return w.buffer();
}

TEST(RmiStreamingEdgeTest, GarbageHeaderIsAStatusNotUb) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto decoded = rmi.DecodeResponseBuffer({0xde, 0xad, 0xbe, 0xef}, 4);
  EXPECT_FALSE(decoded.ok());
}

TEST(RmiStreamingEdgeTest, TruncatedRowSurfacesAsStatusFromNext) {
  LatencyModel model;
  RmiChannel rmi(&model);
  std::vector<uint8_t> buffer = EncodeResponse(2, 2);
  buffer.resize(buffer.size() - 3);  // chop the tail of the last row
  auto decoded = rmi.DecodeResponseBuffer(buffer, 8);
  ASSERT_TRUE(decoded.ok()) << "header still decodes";
  auto batch = (*decoded)->Next();
  EXPECT_FALSE(batch.ok()) << "truncated row must fail, not crash";
}

TEST(RmiStreamingEdgeTest, InflatedRowCountSurfacesAsStatusFromNext) {
  LatencyModel model;
  RmiChannel rmi(&model);
  // Header claims 5 rows; only 2 are encoded.
  auto decoded = rmi.DecodeResponseBuffer(EncodeResponse(2, 5), 8);
  ASSERT_TRUE(decoded.ok());
  auto batch = (*decoded)->Next();
  EXPECT_FALSE(batch.ok()) << "reading past the buffer must fail cleanly";
}

TEST(RmiStreamingEdgeTest, WellFormedBufferDecodesAllRows) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto decoded = rmi.DecodeResponseBuffer(EncodeResponse(3, 3), 2);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  auto b1 = (*decoded)->Next();
  ASSERT_TRUE(b1.ok());
  ASSERT_EQ(b1->rows.size(), 2u);
  EXPECT_EQ(b1->rows[0][0].AsInt(), 0);
  auto b2 = (*decoded)->Next();
  ASSERT_TRUE(b2.ok());
  ASSERT_EQ(b2->rows.size(), 1u);
  EXPECT_EQ(b2->rows[0][0].AsInt(), 2);
}

}  // namespace
}  // namespace fedflow::sim
