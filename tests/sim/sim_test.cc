#include <gtest/gtest.h>

#include "sim/latency.h"
#include "sim/rmi.h"
#include "sim/system_state.h"

namespace fedflow::sim {
namespace {

TEST(LatencyModelTest, MarshalCostScalesWithBytes) {
  LatencyModel m;
  EXPECT_EQ(m.MarshalCost(0), 0);
  EXPECT_EQ(m.MarshalCost(1000), m.rmi_per_byte_ns);
  EXPECT_GT(m.MarshalCost(4000), m.MarshalCost(2000));
}

TEST(LatencyModelTest, WithoutControllerZeroesControllerCosts) {
  LatencyModel m = WithoutController({});
  EXPECT_EQ(m.controller_attach_us, 0);
  EXPECT_EQ(m.controller_return_us, 0);
  EXPECT_EQ(m.controller_dispatch_us, 0);
  EXPECT_EQ(m.wf_controller_us, 0);
  EXPECT_EQ(m.wf_controller_process_us, 0);
  // Everything else untouched.
  LatencyModel base;
  EXPECT_EQ(m.rmi_call_base_us, base.rmi_call_base_us);
  EXPECT_EQ(m.wf_jvm_boot_activity_us, base.wf_jvm_boot_activity_us);
}

TEST(SystemStateTest, ColdWarmHotTransitions) {
  SystemState state;
  EXPECT_EQ(state.QueryWarmth("F"), SystemState::Warmth::kCold);
  state.MarkRun("G");
  EXPECT_EQ(state.QueryWarmth("F"), SystemState::Warmth::kWarm);
  EXPECT_EQ(state.QueryWarmth("G"), SystemState::Warmth::kHot);
  state.MarkRun("F");
  EXPECT_EQ(state.QueryWarmth("f"), SystemState::Warmth::kHot);  // case-ins
  state.Boot();
  EXPECT_EQ(state.QueryWarmth("F"), SystemState::Warmth::kCold);
  EXPECT_FALSE(state.infrastructure_warm());
}

TEST(SystemStateTest, WarmthNames) {
  EXPECT_STREQ(WarmthName(SystemState::Warmth::kCold), "cold");
  EXPECT_STREQ(WarmthName(SystemState::Warmth::kWarm), "warm");
  EXPECT_STREQ(WarmthName(SystemState::Warmth::kHot), "hot");
}

TEST(RmiTest, RoundTripsArgumentsAndResult) {
  LatencyModel model;
  RmiChannel rmi(&model);
  std::vector<Value> seen_args;
  std::string seen_fn;
  auto handler = [&](const std::string& fn,
                     const std::vector<Value>& args) -> Result<Table> {
    seen_fn = fn;
    seen_args = args;
    Schema s;
    s.AddColumn("echo", DataType::kVarchar);
    Table t(s);
    t.AppendRowUnchecked({Value::Varchar("pong")});
    return t;
  };
  RmiChannel::CallCosts costs;
  auto result = rmi.Invoke(
      "Ping", {Value::Int(1), Value::Null(), Value::Varchar("x")}, handler,
      &costs);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(seen_fn, "Ping");
  ASSERT_EQ(seen_args.size(), 3u);
  EXPECT_TRUE(seen_args[1].is_null());
  EXPECT_EQ(result->rows()[0][0].AsVarchar(), "pong");
  EXPECT_GE(costs.call_us, model.rmi_call_base_us);
  EXPECT_GE(costs.return_us, model.rmi_return_base_us);
}

TEST(RmiTest, LargerPayloadCostsMore) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto echo = [](const std::string&,
                 const std::vector<Value>& args) -> Result<Table> {
    Schema s;
    s.AddColumn("v", DataType::kVarchar);
    Table t(s);
    t.AppendRowUnchecked({args[0]});
    return t;
  };
  RmiChannel::CallCosts small, big;
  ASSERT_TRUE(rmi.Invoke("f", {Value::Varchar("x")}, echo, &small).ok());
  ASSERT_TRUE(
      rmi.Invoke("f", {Value::Varchar(std::string(10000, 'x'))}, echo, &big)
          .ok());
  EXPECT_GT(big.call_us, small.call_us);
  EXPECT_GT(big.return_us, small.return_us);
}

TEST(RmiTest, HandlerErrorPropagates) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto handler = [](const std::string&,
                    const std::vector<Value>&) -> Result<Table> {
    return Status::ExecutionError("remote side failed");
  };
  auto result = rmi.Invoke("f", {}, handler, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("remote side failed"),
            std::string::npos);
}

TEST(RmiTest, NullCostsPointerAllowed) {
  LatencyModel model;
  RmiChannel rmi(&model);
  auto handler = [](const std::string&,
                    const std::vector<Value>&) -> Result<Table> {
    return Table();
  };
  EXPECT_TRUE(rmi.Invoke("f", {}, handler, nullptr).ok());
}

TEST(LatencyCalibrationTest, Fig6SharesEmergeFromConstants) {
  // Sanity-check the calibration: the fixed WfMS wrapper costs relative to a
  // 3-activity call should be in the ballpark of the paper's percentages.
  LatencyModel m;
  // For GetNoSuppComp: 3 program activities + 1 result helper.
  VDuration activities = 3 * (m.wf_jvm_boot_activity_us + m.wf_container_us) +
                         1000 /* approx local work */ + m.wf_helper_us +
                         m.wf_container_us;
  VDuration navigation = 4 * m.wf_navigation_us;
  VDuration fixed = m.wf_udtf_start_us + m.wf_udtf_process_us +
                    m.wf_controller_process_us + m.rmi_call_base_us +
                    m.wf_process_start_us + m.wf_controller_us +
                    m.rmi_return_base_us + m.wf_udtf_finish_us;
  double total = static_cast<double>(activities + navigation + fixed);
  double activity_share = static_cast<double>(activities) / total;
  EXPECT_GT(activity_share, 0.45);  // paper: 51%
  EXPECT_LT(activity_share, 0.60);
  double nav_share = static_cast<double>(navigation) / total;
  EXPECT_GT(nav_share, 0.05);  // paper: 9%
  EXPECT_LT(nav_share, 0.15);
}

}  // namespace
}  // namespace fedflow::sim
