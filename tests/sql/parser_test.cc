#include "sql/parser.h"

#include <gtest/gtest.h>

namespace fedflow::sql {
namespace {

SelectStmt MustSelect(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status();
  return stmt.ok() ? std::move(*stmt) : SelectStmt{};
}

ExprPtr MustExpr(const std::string& text) {
  auto e = ParseExpression(text);
  EXPECT_TRUE(e.ok()) << text << " -> " << e.status();
  return e.ok() ? *e : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  SelectStmt s = MustSelect("SELECT 1");
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.from.empty());
  EXPECT_EQ(s.where, nullptr);
}

TEST(ParserTest, SelectListWithAliases) {
  SelectStmt s = MustSelect("SELECT a AS x, b y, c FROM t");
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[0].alias, "x");
  EXPECT_EQ(s.items[1].alias, "y");
  EXPECT_EQ(s.items[2].alias, "");
}

TEST(ParserTest, StarAndQualifiedStar) {
  SelectStmt s = MustSelect("SELECT *, t.* FROM t");
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_TRUE(s.items[0].is_star);
  EXPECT_EQ(s.items[0].star_qualifier, "");
  EXPECT_TRUE(s.items[1].is_star);
  EXPECT_EQ(s.items[1].star_qualifier, "t");
}

TEST(ParserTest, TableFunctionReference) {
  SelectStmt s = MustSelect(
      "SELECT GQ.Qual FROM TABLE (GetQuality(SupplierNo)) AS GQ");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].kind, TableRefKind::kTableFunction);
  EXPECT_EQ(s.from[0].name, "GetQuality");
  EXPECT_EQ(s.from[0].alias, "GQ");
  ASSERT_EQ(s.from[0].args.size(), 1u);
}

TEST(ParserTest, TableFunctionRequiresCorrelationName) {
  // DB2 semantics the paper relies on: correlation name is mandatory.
  EXPECT_FALSE(ParseSelect("SELECT 1 FROM TABLE (f(1))").ok());
}

TEST(ParserTest, TableFunctionWithNoArgs) {
  SelectStmt s = MustSelect("SELECT 1 FROM TABLE (f()) AS F");
  EXPECT_TRUE(s.from[0].args.empty());
}

TEST(ParserTest, PaperBuySuppCompStatementParses) {
  // Verbatim from the paper (§2).
  SelectStmt s = MustSelect(
      "SELECT DP.Answer "
      "FROM TABLE (GetQuality(SupplierNo)) AS GQ, "
      "TABLE (GetReliability(SupplierNo)) AS GR, "
      "TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG, "
      "TABLE (GetCompNo(CompName)) AS GCN, "
      "TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP");
  EXPECT_EQ(s.from.size(), 5u);
  EXPECT_EQ(s.from[4].alias, "DP");
}

TEST(ParserTest, WhereGroupHavingOrderLimit) {
  SelectStmt s = MustSelect(
      "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a "
      "HAVING COUNT(*) >= 2 ORDER BY a DESC, b LIMIT 10");
  EXPECT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_EQ(*s.limit, 10);
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE t (id INT, name VARCHAR(20), w DOUBLE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmt->create_table->name, "t");
  ASSERT_EQ(stmt->create_table->schema.num_columns(), 3u);
  EXPECT_EQ(stmt->create_table->schema.column(1).type, DataType::kVarchar);
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = Parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[0].size(), 2u);
}

TEST(ParserTest, CreateFunctionMatchesPaperSyntax) {
  // Verbatim I-UDTF definition from the paper (§2).
  auto stmt = Parse(
      "CREATE FUNCTION BuySuppComp (SupplierNo INT, CompName VARCHAR) "
      "RETURNS TABLE (Decision VARCHAR) LANGUAGE SQL RETURN "
      "SELECT DP.Answer "
      "FROM TABLE (GetQuality(BuySuppComp.SupplierNo)) AS GQ, "
      "TABLE (GetReliability(BuySuppComp.SupplierNo)) AS GR, "
      "TABLE (GetGrade(GQ.Qual, GR.Relia)) AS GG, "
      "TABLE (GetCompNo(BuySuppComp.CompName)) AS GCN, "
      "TABLE (DecidePurchase(GG.Grade, GCN.No)) AS DP");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->kind, StatementKind::kCreateFunction);
  const CreateFunctionStmt& cf = *stmt->create_function;
  EXPECT_EQ(cf.name, "BuySuppComp");
  ASSERT_EQ(cf.params.size(), 2u);
  EXPECT_EQ(cf.params[1].type, DataType::kVarchar);
  EXPECT_EQ(cf.returns.column(0).name, "Decision");
  EXPECT_EQ(cf.body->from.size(), 5u);
}

TEST(ParserTest, DropStatements) {
  auto t = Parse("DROP TABLE x");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(t->drop->is_function);
  auto f = Parse("DROP FUNCTION y;");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->drop->is_function);
}

TEST(ParserTest, TrailingTokensRejected) {
  EXPECT_FALSE(Parse("SELECT 1 SELECT 2").ok());
  EXPECT_FALSE(ParseExpression("1 + 2 garbage").ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto stmt = Parse("CREATE NONSENSE x");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("offset"), std::string::npos);
}

// --- expression grammar ----------------------------------------------------

TEST(ExprTest, PrecedenceMulOverAdd) {
  ExprPtr e = MustExpr("1 + 2 * 3");
  ASSERT_EQ(e->kind(), ExprKind::kBinary);
  const auto& add = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(add.op(), BinaryOp::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.right()).op(), BinaryOp::kMul);
}

TEST(ExprTest, PrecedenceComparisonOverAnd) {
  ExprPtr e = MustExpr("a > 1 AND b < 2");
  const auto& land = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(land.op(), BinaryOp::kAnd);
}

TEST(ExprTest, PrecedenceAndOverOr) {
  ExprPtr e = MustExpr("a OR b AND c");
  const auto& lor = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(lor.op(), BinaryOp::kOr);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*lor.right()).op(), BinaryOp::kAnd);
}

TEST(ExprTest, ParensOverridePrecedence) {
  ExprPtr e = MustExpr("(1 + 2) * 3");
  EXPECT_EQ(static_cast<const BinaryExpr&>(*e).op(), BinaryOp::kMul);
}

TEST(ExprTest, NotAndUnaryMinus) {
  ExprPtr e = MustExpr("NOT -x > 1");
  ASSERT_EQ(e->kind(), ExprKind::kUnary);
  EXPECT_EQ(static_cast<const UnaryExpr&>(*e).op(), UnaryOp::kNot);
}

TEST(ExprTest, IsNullPostfix) {
  ExprPtr e = MustExpr("a IS NULL");
  EXPECT_EQ(static_cast<const UnaryExpr&>(*e).op(), UnaryOp::kIsNull);
  ExprPtr n = MustExpr("a IS NOT NULL");
  EXPECT_EQ(static_cast<const UnaryExpr&>(*n).op(), UnaryOp::kIsNotNull);
}

TEST(ExprTest, LiteralsTyped) {
  EXPECT_EQ(static_cast<const LiteralExpr&>(*MustExpr("3")).value().type(),
            DataType::kInt);
  EXPECT_EQ(
      static_cast<const LiteralExpr&>(*MustExpr("3000000000")).value().type(),
      DataType::kBigInt);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*MustExpr("3.5")).value().type(),
            DataType::kDouble);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*MustExpr("'s'")).value().type(),
            DataType::kVarchar);
  EXPECT_TRUE(
      static_cast<const LiteralExpr&>(*MustExpr("NULL")).value().is_null());
  EXPECT_EQ(static_cast<const LiteralExpr&>(*MustExpr("TRUE")).value().AsBool(),
            true);
}

TEST(ExprTest, QualifiedColumnRef) {
  ExprPtr e = MustExpr("BuySuppComp.SupplierNo");
  const auto& ref = static_cast<const ColumnRefExpr&>(*e);
  EXPECT_EQ(ref.qualifier(), "BuySuppComp");
  EXPECT_EQ(ref.name(), "SupplierNo");
}

TEST(ExprTest, FunctionCallsNested) {
  ExprPtr e = MustExpr("BIGINT(ABS(x))");
  const auto& outer = static_cast<const FunctionCallExpr&>(*e);
  EXPECT_EQ(outer.name(), "BIGINT");
  ASSERT_EQ(outer.args().size(), 1u);
  EXPECT_EQ(outer.args()[0]->kind(), ExprKind::kFunctionCall);
}

TEST(ExprTest, CountStar) {
  ExprPtr e = MustExpr("COUNT(*)");
  const auto& call = static_cast<const FunctionCallExpr&>(*e);
  EXPECT_TRUE(call.star_arg());
  EXPECT_TRUE(call.args().empty());
}

TEST(ExprTest, ConcatOperator) {
  ExprPtr e = MustExpr("'a' || 'b'");
  EXPECT_EQ(static_cast<const BinaryExpr&>(*e).op(), BinaryOp::kConcat);
}

// --- round trips: ToSql output reparses to the same SQL ----------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, SelectToSqlReparsesIdentically) {
  SelectStmt first = MustSelect(GetParam());
  std::string sql1 = first.ToSql();
  SelectStmt second = MustSelect(sql1);
  EXPECT_EQ(sql1, second.ToSql());
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT 1",
        "SELECT a, b AS c FROM t",
        "SELECT * FROM t AS x, u",
        "SELECT t.* FROM t WHERE t.a > 1 AND t.b IS NOT NULL",
        "SELECT DP.Answer FROM TABLE (GetQuality(1)) AS GQ, "
        "TABLE (DecidePurchase(GQ.Qual, 5)) AS DP",
        "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 "
        "ORDER BY n DESC LIMIT 3",
        "SELECT BIGINT(GN.Number) FROM TABLE (GetNumber(1234, 5)) AS GN",
        "SELECT 'it''s' || x FROM t",
        "SELECT -1 + 2 * 3 FROM t WHERE NOT (a = b OR c <> d)"));

}  // namespace
}  // namespace fedflow::sql
