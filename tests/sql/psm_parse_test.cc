// Parser coverage for the PSM grammar and the DML statement forms.
#include <gtest/gtest.h>

#include "sql/parser.h"

namespace fedflow::sql {
namespace {

TEST(PsmParseTest, MinimalProcedure) {
  auto stmt = Parse("CREATE PROCEDURE p () BEGIN END");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kCreateProcedure);
  EXPECT_TRUE(stmt->create_procedure->body.empty());
}

TEST(PsmParseTest, AllStatementKinds) {
  auto stmt = Parse(
      "CREATE PROCEDURE p (n INT) BEGIN "
      "DECLARE i INT; "
      "SET i = 0; "
      "IF p.n > 0 THEN SET i = 1; ELSE SET i = 2; END IF; "
      "WHILE i < p.n DO SET i = i + 1; END WHILE; "
      "EMIT SELECT p.i AS i; "
      "RETURN SELECT p.i AS i; "
      "END");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& body = stmt->create_procedure->body;
  ASSERT_EQ(body.size(), 6u);
  EXPECT_EQ(body[0].kind, PsmStatement::Kind::kDeclare);
  EXPECT_EQ(body[1].kind, PsmStatement::Kind::kSet);
  EXPECT_EQ(body[2].kind, PsmStatement::Kind::kIf);
  EXPECT_EQ(body[2].then_branch.size(), 1u);
  EXPECT_EQ(body[2].else_branch.size(), 1u);
  EXPECT_EQ(body[3].kind, PsmStatement::Kind::kWhile);
  EXPECT_EQ(body[4].kind, PsmStatement::Kind::kEmit);
  EXPECT_EQ(body[5].kind, PsmStatement::Kind::kReturn);
}

TEST(PsmParseTest, MissingSemicolonRejected) {
  EXPECT_FALSE(
      Parse("CREATE PROCEDURE p () BEGIN DECLARE x INT END").ok());
}

TEST(PsmParseTest, UnterminatedIfRejected) {
  EXPECT_FALSE(Parse("CREATE PROCEDURE p () BEGIN "
                     "IF 1 = 1 THEN SET x = 1; END").ok());
}

TEST(PsmParseTest, UnknownStatementRejected) {
  auto stmt = Parse("CREATE PROCEDURE p () BEGIN FROBNICATE; END");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("expected DECLARE"),
            std::string::npos);
}

TEST(PsmParseTest, CallStatement) {
  auto stmt = Parse("CALL DoThing(1, 'x', 2.5)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kCall);
  EXPECT_EQ(stmt->call->name, "DoThing");
  EXPECT_EQ(stmt->call->args.size(), 3u);
  auto empty = Parse("CALL NoArgs()");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->call->args.empty());
}

TEST(DmlParseTest, UpdateStatement) {
  auto stmt = Parse("UPDATE t SET a = 1, b = a + 2 WHERE a < 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kUpdate);
  EXPECT_EQ(stmt->update->table, "t");
  EXPECT_EQ(stmt->update->assignments.size(), 2u);
  EXPECT_NE(stmt->update->where, nullptr);
  auto no_where = Parse("UPDATE t SET a = 1");
  ASSERT_TRUE(no_where.ok());
  EXPECT_EQ(no_where->update->where, nullptr);
}

TEST(DmlParseTest, DeleteStatement) {
  auto stmt = Parse("DELETE FROM t WHERE x IS NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kDelete);
  EXPECT_EQ(stmt->del->table, "t");
  EXPECT_NE(stmt->del->where, nullptr);
  EXPECT_FALSE(Parse("DELETE t").ok());  // FROM mandatory
}

TEST(DmlParseTest, InsertSelectForm) {
  auto stmt = Parse("INSERT INTO t SELECT a, b FROM u WHERE a > 0");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_TRUE(stmt->insert->rows.empty());
  ASSERT_NE(stmt->insert->select, nullptr);
  EXPECT_EQ(stmt->insert->select->items.size(), 2u);
}

TEST(DmlParseTest, DropProcedure) {
  auto stmt = Parse("DROP PROCEDURE p");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->drop->is_procedure);
}

}  // namespace
}  // namespace fedflow::sql
