#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace fedflow::sql {
namespace {

std::vector<Token> MustLex(const std::string& input) {
  auto tokens = Lex(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywordsAreIdentifiers) {
  auto tokens = MustLex("SELECT foo _bar b2z");
  ASSERT_EQ(tokens.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier);
  }
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[2].text, "_bar");
}

TEST(LexerTest, IntegerAndDoubleLiterals) {
  auto tokens = MustLex("1 123 1.5 .25 2. 1e3 1.5E-2");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[3].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[4].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[5].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[6].type, TokenType::kDoubleLiteral);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = MustLex("'it''s'");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, EmptyStringLiteral) {
  auto tokens = MustLex("''");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Lex("'abc");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = MustLex("<> <= >= != ||");
  EXPECT_EQ(tokens[0].text, "<>");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[2].text, ">=");
  EXPECT_EQ(tokens[3].text, "!=");
  EXPECT_EQ(tokens[4].text, "||");
}

TEST(LexerTest, SingleCharSymbols) {
  auto tokens = MustLex("( ) , . * + - / % = < > ;");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
  }
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = MustLex("SELECT -- comment to end\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "1");
}

TEST(LexerTest, IllegalCharacterFails) {
  auto tokens = Lex("SELECT @x");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("@"), std::string::npos);
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = MustLex("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, MalformedExponentFails) {
  EXPECT_FALSE(Lex("1e").ok());
  EXPECT_FALSE(Lex("1e+").ok());
}

TEST(LexerTest, DotBetweenIdentifiersIsSymbol) {
  auto tokens = MustLex("a.b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
}

}  // namespace
}  // namespace fedflow::sql
