// Tests for the generative spec fuzzer's generator: determinism, coverage of
// the full 8-class mapping matrix, and the invariant the differential oracle
// rests on — every generated spec is lint-clean (no error-severity findings
// from the shape pass or the dataflow pass).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/diagnostic.h"
#include "analysis/spec_lint.h"
#include "analysis/specgen.h"
#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "federation/classify.h"
#include "sim/latency.h"

namespace fedflow::analysis {
namespace {

using federation::FederatedFunctionSpec;
using federation::MappingCase;

constexpr std::uint64_t kSeeds = 1000;

appsys::AppSystemRegistry MakeRegistry(const appsys::Scenario& scenario) {
  appsys::AppSystemRegistry systems;
  EXPECT_TRUE(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)).ok());
  EXPECT_TRUE(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)).ok());
  EXPECT_TRUE(systems.Add(std::make_shared<appsys::PdmSystem>(scenario)).ok());
  return systems;
}

TEST(SpecGeneratorTest, IsDeterministicPerSeed) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  SpecGenerator generator(scenario);
  for (std::uint64_t seed : {0ull, 7ull, 63ull, 999ull}) {
    GeneratedSpec a = generator.Generate(seed);
    GeneratedSpec b = generator.Generate(seed);
    EXPECT_EQ(a.spec.name, b.spec.name);
    EXPECT_EQ(a.mapping_case, b.mapping_case);
    ASSERT_EQ(a.spec.calls.size(), b.spec.calls.size());
    for (size_t i = 0; i < a.spec.calls.size(); ++i) {
      EXPECT_EQ(a.spec.calls[i].system, b.spec.calls[i].system);
      EXPECT_EQ(a.spec.calls[i].function, b.spec.calls[i].function);
    }
    ASSERT_EQ(a.args.size(), b.args.size());
    for (size_t i = 0; i < a.args.size(); ++i) {
      EXPECT_EQ(a.args[i], b.args[i]) << "seed " << seed << " arg " << i;
    }
  }
}

TEST(SpecGeneratorTest, SeedsCycleTheWholeMappingMatrix) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  SpecGenerator generator(scenario);
  std::map<MappingCase, int> by_case;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    by_case[generator.Generate(seed).mapping_case] += 1;
  }
  for (MappingCase c :
       {MappingCase::kTrivial, MappingCase::kSimple, MappingCase::kIndependent,
        MappingCase::kDependentLinear, MappingCase::kDependent1N,
        MappingCase::kDependentN1, MappingCase::kDependentCyclic,
        MappingCase::kGeneral}) {
    EXPECT_GE(by_case[c], static_cast<int>(kSeeds / 8) - 1)
        << "class " << static_cast<int>(c) << " under-covered";
  }
}

TEST(SpecGeneratorTest, GeneratedSpecsAreLintCleanAcrossAllSeeds) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems = MakeRegistry(scenario);
  sim::LatencyModel model;
  SpecGenerator generator(scenario);
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    GeneratedSpec g = generator.Generate(seed);
    std::vector<const FederatedFunctionSpec*> specs = {&g.spec};
    if (g.sibling.has_value()) specs.push_back(&*g.sibling);
    for (const FederatedFunctionSpec* spec : specs) {
      std::vector<Diagnostic> shape = LintSpec(*spec, systems);
      ASSERT_FALSE(HasErrors(shape))
          << "seed " << seed << " spec " << spec->name << ":\n"
          << FormatDiagnostics(shape);
      Result<DataflowResult> df = RunDataflow(*spec, systems, model);
      ASSERT_TRUE(df.ok())
          << "seed " << seed << " spec " << spec->name << ": " << df.status();
      ASSERT_FALSE(HasErrors(df->diagnostics))
          << "seed " << seed << " spec " << spec->name << ":\n"
          << FormatDiagnostics(df->diagnostics);
    }
  }
}

TEST(SpecGeneratorTest, SingleSpecClassificationMatchesTheIntent) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  SpecGenerator generator(scenario);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    GeneratedSpec g = generator.Generate(seed);
    // kGeneral is a set property (the sibling shares a local function); the
    // primary spec alone classifies as one of the simpler shapes.
    if (g.mapping_case == MappingCase::kGeneral) {
      ASSERT_TRUE(g.sibling.has_value()) << "seed " << seed;
      continue;
    }
    Result<MappingCase> got = federation::ClassifySpec(g.spec);
    ASSERT_TRUE(got.ok()) << "seed " << seed << ": " << got.status();
    EXPECT_EQ(*got, g.mapping_case) << "seed " << seed << " spec "
                                    << g.spec.name;
  }
}

TEST(SpecGeneratorTest, WriteSpecsAreDeterministicGatedSagas) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems = MakeRegistry(scenario);
  sim::LatencyModel model;
  SpecGenerator generator(scenario);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    GeneratedSpec g = generator.GenerateWriteSpec(seed);
    GeneratedSpec again = generator.GenerateWriteSpec(seed);
    EXPECT_EQ(g.spec.name, again.spec.name);
    ASSERT_EQ(g.args.size(), again.args.size());
    for (size_t i = 0; i < g.args.size(); ++i) {
      EXPECT_EQ(g.args[i], again.args[i]) << "seed " << seed << " arg " << i;
    }
    ASSERT_EQ(g.args.size(), g.spec.params.size()) << "seed " << seed;

    // Every mutating call carries a compensation — the FF450 gate invariant
    // the fedfuzz saga oracle rests on.
    ASSERT_FALSE(g.spec.compensations.empty()) << "seed " << seed;
    for (const federation::SpecCall& call : g.spec.calls) {
      if (call.function == "SetQuality" || call.function == "ReserveStock" ||
          call.function == "PlaceOrder") {
        EXPECT_NE(g.spec.FindCompensation(call.id), nullptr)
            << "seed " << seed << " write " << call.function;
      }
    }

    std::vector<Diagnostic> shape = LintSpec(g.spec, systems);
    ASSERT_FALSE(HasErrors(shape))
        << "seed " << seed << ":\n" << FormatDiagnostics(shape);
    Result<DataflowResult> df = RunDataflow(g.spec, systems, model);
    ASSERT_TRUE(df.ok()) << "seed " << seed << ": " << df.status();
    ASSERT_FALSE(HasErrors(df->diagnostics))
        << "seed " << seed << ":\n" << FormatDiagnostics(df->diagnostics);
  }
}

TEST(SpecGeneratorTest, GeneralCaseEmitsASiblingSharingALocalFunction) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  SpecGenerator generator(scenario);
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    GeneratedSpec g = generator.GenerateCase(MappingCase::kGeneral, seed);
    ASSERT_TRUE(g.sibling.has_value()) << "seed " << seed;
    bool shares = false;
    for (const federation::SpecCall& a : g.spec.calls) {
      for (const federation::SpecCall& b : g.sibling->calls) {
        shares = shares || (a.system == b.system && a.function == b.function);
      }
    }
    EXPECT_TRUE(shares) << "seed " << seed
                        << ": sibling shares no local function";
  }
}

}  // namespace
}  // namespace fedflow::analysis
