// Golden tests for the fedlint passes: each malformed-spec corpus entry must
// produce exactly its pinned FF### code at its pinned location path, the
// sample scenario must lint clean end to end, and the IntegrationServer must
// gate registration on error-severity findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/corpus.h"
#include "analysis/diagnostic.h"
#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"
#include "analysis/sql_lint.h"
#include "analysis/workflow_lint.h"
#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "federation/integration_server.h"
#include "federation/sample_scenario.h"
#include "sql/parser.h"
#include "wfms/model.h"

namespace fedflow::analysis {
namespace {

using federation::FederatedFunctionSpec;
using wfms::ActivityDef;
using wfms::ActivityKind;
using wfms::ControlConnector;
using wfms::InputSource;
using wfms::ProcessDefinition;

appsys::AppSystemRegistry MakeRegistry() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  EXPECT_TRUE(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)).ok());
  EXPECT_TRUE(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)).ok());
  EXPECT_TRUE(systems.Add(std::make_shared<appsys::PdmSystem>(scenario)).ok());
  return systems;
}

sql::ExprPtr Cond(const std::string& text) {
  auto parsed = sql::ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(*parsed);
}

bool HasFinding(const std::vector<Diagnostic>& diags, const std::string& code,
                const std::string& location) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.code == code && d.location == location;
  });
}

std::string Dump(const std::vector<Diagnostic>& diags) {
  return FormatDiagnostics(diags);
}

// ---------------------------------------------------------------------------
// Spec pass: the malformed corpus, pinned code + location per entry.

TEST(SpecLintGoldenTest, EveryCorpusEntryProducesItsPinnedDiagnostic) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  std::vector<CorpusEntry> corpus = MalformedSpecCorpus();
  ASSERT_GE(corpus.size(), 5u);
  for (const CorpusEntry& entry : corpus) {
    std::vector<Diagnostic> diags = LintSpec(entry.spec, systems);
    // Exactly one finding, and it is the pinned one: the corpus isolates one
    // defect per entry, so a second finding means a pass misfires.
    ASSERT_EQ(diags.size(), 1u)
        << "corpus entry '" << entry.name << "':\n" << Dump(diags);
    EXPECT_EQ(diags[0].code, entry.expected_code) << "entry " << entry.name;
    EXPECT_EQ(diags[0].location, entry.expected_location)
        << "entry " << entry.name;
  }
}

TEST(SpecLintGoldenTest, CorpusCoversTheRequiredDefectFamilies) {
  std::vector<std::string> codes;
  for (const CorpusEntry& e : MalformedSpecCorpus()) {
    codes.push_back(e.expected_code);
  }
  // ISSUE acceptance: dangling node ref, bad arity, type mismatch, dead
  // node, cycle without exit condition.
  for (const char* required : {kSpecDanglingNode, kSpecArityMismatch,
                               kSpecArgTypeMismatch, kSpecDeadNode,
                               kSpecCycleWithoutExit}) {
    EXPECT_NE(std::find(codes.begin(), codes.end(), required), codes.end())
        << "corpus lacks an entry for " << required;
  }
}

TEST(SpecLintGoldenTest, SampleSpecsAreClean) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    std::vector<Diagnostic> diags = LintSpec(spec, systems);
    EXPECT_TRUE(diags.empty()) << spec.name << ":\n" << Dump(diags);
  }
}

TEST(SpecLintGoldenTest, ErrorSeverityDecidesRegistrability) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  for (const CorpusEntry& entry : MalformedSpecCorpus()) {
    std::vector<Diagnostic> diags = LintSpec(entry.spec, systems);
    // Spec warnings occupy FF050..FF069, so the tens digit distinguishes.
    bool is_warning_code = entry.expected_code[3] >= '5';
    EXPECT_EQ(HasErrors(diags), !is_warning_code) << entry.name;
  }
}

// ---------------------------------------------------------------------------
// Workflow pass: model-level defects with pinned codes and locations.

/// A minimal two-activity process: A feeds B, B is the output activity.
ProcessDefinition TwoStepProcess(bool with_connector) {
  ProcessDefinition def;
  def.name = "P";
  def.input_params = {Column{"X", DataType::kInt}};
  ActivityDef a;
  a.name = "A";
  a.kind = ActivityKind::kProgram;
  a.system = "stock";
  a.function = "GetQuality";
  a.inputs.push_back(InputSource::FromProcessInput("X"));
  ActivityDef b;
  b.name = "B";
  b.kind = ActivityKind::kProgram;
  b.system = "stock";
  b.function = "GetQuality";
  b.inputs.push_back(InputSource::FromActivity("A", "Qual"));
  def.activities.push_back(std::move(a));
  def.activities.push_back(std::move(b));
  if (with_connector) {
    def.connectors.push_back(ControlConnector{"A", "B", nullptr});
  }
  def.output_activity = "B";
  return def;
}

TEST(WorkflowLintGoldenTest, SourceWithoutControlPathIsAnError) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  // B reads A's output but no connector guarantees A ran first.
  ProcessDefinition def = TwoStepProcess(/*with_connector=*/false);
  std::vector<Diagnostic> diags = LintProcess(def, systems);
  ASSERT_EQ(diags.size(), 1u) << Dump(diags);
  EXPECT_EQ(diags[0].code, std::string(kWfSourceCannotPrecede));
  EXPECT_EQ(diags[0].location, "process:P/activity:B/input:1");
  EXPECT_EQ(diags[0].severity, Severity::kError);

  // The connector fixes it.
  ProcessDefinition fixed = TwoStepProcess(/*with_connector=*/true);
  EXPECT_TRUE(LintProcess(fixed, systems).empty());
}

TEST(WorkflowLintGoldenTest, UnknownProcessInputIsAnError) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  ProcessDefinition def = TwoStepProcess(/*with_connector=*/true);
  def.activities[0].inputs[0] = InputSource::FromProcessInput("Missing");
  std::vector<Diagnostic> diags = LintProcess(def, systems);
  ASSERT_TRUE(HasFinding(diags, kWfUnknownProcessInput,
                         "process:P/activity:A/input:1"))
      << Dump(diags);
}

TEST(WorkflowLintGoldenTest, ContradictoryForkBeforeAndJoinWarns) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  ProcessDefinition def;
  def.name = "P";
  def.input_params = {Column{"X", DataType::kInt}};
  for (const char* name : {"S", "T1", "T2", "J"}) {
    ActivityDef a;
    a.name = name;
    a.kind = ActivityKind::kProgram;
    a.system = "stock";
    a.function = "GetQuality";
    a.inputs.push_back(InputSource::FromProcessInput("X"));
    def.activities.push_back(std::move(a));
  }
  def.connectors.push_back(ControlConnector{"S", "T1", Cond("X > 0")});
  def.connectors.push_back(ControlConnector{"S", "T2", Cond("X <= 0")});
  def.connectors.push_back(ControlConnector{"T1", "J", nullptr});
  def.connectors.push_back(ControlConnector{"T2", "J", nullptr});
  def.output_activity = "J";  // J joins with the default AND semantics

  std::vector<Diagnostic> diags = LintProcess(def, systems);
  ASSERT_EQ(diags.size(), 1u) << Dump(diags);
  EXPECT_EQ(diags[0].code, std::string(kWfContradictoryFork));
  EXPECT_EQ(diags[0].location, "process:P/activity:J");
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(WorkflowLintGoldenTest, ConstantFalseConditionWarns) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  ProcessDefinition def = TwoStepProcess(/*with_connector=*/true);
  def.connectors[0].condition = Cond("1 = 2");
  std::vector<Diagnostic> diags = LintProcess(def, systems);
  ASSERT_TRUE(HasFinding(diags, kWfConstantFalseCondition,
                         "process:P/connector:A->B"))
      << Dump(diags);
}

TEST(WorkflowLintGoldenTest, DeadActivityWarns) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  ProcessDefinition def = TwoStepProcess(/*with_connector=*/true);
  // C runs concurrently but nothing consumes it and it never reaches B.
  ActivityDef c;
  c.name = "C";
  c.kind = ActivityKind::kProgram;
  c.system = "stock";
  c.function = "GetQuality";
  c.inputs.push_back(InputSource::FromProcessInput("X"));
  def.activities.push_back(std::move(c));
  std::vector<Diagnostic> diags = LintProcess(def, systems);
  ASSERT_TRUE(HasFinding(diags, kWfDeadActivity, "process:P/activity:C"))
      << Dump(diags);
}

// ---------------------------------------------------------------------------
// SQL pass: lateral resolution over the generated I-UDTF shape.

UdtfLookup TestLookup() {
  return [](const std::string& name) -> std::optional<UdtfSignature> {
    if (name == "GetSupplierNo") {
      return UdtfSignature{{Column{"SupplierName", DataType::kVarchar}},
                           Schema({Column{"SupplierNo", DataType::kInt}})};
    }
    if (name == "GetQuality") {
      return UdtfSignature{{Column{"SupplierNo", DataType::kInt}},
                           Schema({Column{"Qual", DataType::kInt}})};
    }
    return std::nullopt;
  };
}

constexpr char kCleanSql[] =
    "CREATE FUNCTION GetSuppQual (SupplierName VARCHAR)\n"
    "RETURNS TABLE (Qual INT)\n"
    "LANGUAGE SQL RETURN\n"
    "SELECT GQ.Qual AS Qual\n"
    "FROM TABLE (GetSupplierNo(GetSuppQual.SupplierName)) AS GSN,\n"
    "     TABLE (GetQuality(GSN.SupplierNo)) AS GQ";

TEST(SqlLintGoldenTest, WellFormedIUdtfIsClean) {
  std::vector<Diagnostic> diags = LintIUdtfSql(kCleanSql, TestLookup());
  EXPECT_TRUE(diags.empty()) << Dump(diags);
}

TEST(SqlLintGoldenTest, LateralForwardReferenceIsAnError) {
  // GQ consumes GSN's output but is listed before it: lateral correlation
  // only resolves left to right.
  const char* sql =
      "CREATE FUNCTION GetSuppQual (SupplierName VARCHAR)\n"
      "RETURNS TABLE (Qual INT)\n"
      "LANGUAGE SQL RETURN\n"
      "SELECT GQ.Qual AS Qual\n"
      "FROM TABLE (GetQuality(GSN.SupplierNo)) AS GQ,\n"
      "     TABLE (GetSupplierNo(GetSuppQual.SupplierName)) AS GSN";
  std::vector<Diagnostic> diags = LintIUdtfSql(sql, TestLookup());
  ASSERT_TRUE(HasFinding(diags, kSqlLateralForwardRef,
                         "function:GetSuppQual/from:GQ/arg:1"))
      << Dump(diags);
}

TEST(SqlLintGoldenTest, UnknownTableFunctionIsAnError) {
  const char* sql =
      "CREATE FUNCTION F (SupplierName VARCHAR)\n"
      "RETURNS TABLE (Qual INT)\n"
      "LANGUAGE SQL RETURN\n"
      "SELECT X.Qual AS Qual FROM TABLE (NoSuchUdtf(1)) AS X";
  std::vector<Diagnostic> diags = LintIUdtfSql(sql, TestLookup());
  ASSERT_TRUE(HasFinding(diags, kSqlUnknownTableFunction, "function:F/from:X"))
      << Dump(diags);
}

TEST(SqlLintGoldenTest, UnknownLateralColumnIsAnError) {
  const char* sql =
      "CREATE FUNCTION GetSuppQual (SupplierName VARCHAR)\n"
      "RETURNS TABLE (Qual INT)\n"
      "LANGUAGE SQL RETURN\n"
      "SELECT GQ.Qual AS Qual\n"
      "FROM TABLE (GetSupplierNo(GetSuppQual.SupplierName)) AS GSN,\n"
      "     TABLE (GetQuality(GSN.Nope)) AS GQ";
  std::vector<Diagnostic> diags = LintIUdtfSql(sql, TestLookup());
  ASSERT_TRUE(HasFinding(diags, kSqlLateralUnknownColumn,
                         "function:GetSuppQual/from:GQ/arg:1"))
      << Dump(diags);
}

TEST(SqlLintGoldenTest, UnknownParameterIsAnError) {
  const char* sql =
      "CREATE FUNCTION GetSuppQual (SupplierName VARCHAR)\n"
      "RETURNS TABLE (SupplierNo INT)\n"
      "LANGUAGE SQL RETURN\n"
      "SELECT GSN.SupplierNo AS SupplierNo\n"
      "FROM TABLE (GetSupplierNo(GetSuppQual.Oops)) AS GSN";
  std::vector<Diagnostic> diags = LintIUdtfSql(sql, TestLookup());
  ASSERT_TRUE(HasFinding(diags, kSqlUnknownParam,
                         "function:GetSuppQual/from:GSN/arg:1"))
      << Dump(diags);
}

// ---------------------------------------------------------------------------
// Registration gate: errors reject, warnings register and stay queryable.

TEST(LintGateTest, ServerRefusesErrorSeveritySpecs) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  auto server = federation::IntegrationServer::Create(
      federation::Architecture::kWfms, scenario);
  ASSERT_TRUE(server.ok());
  for (const CorpusEntry& entry : MalformedSpecCorpus()) {
    if (entry.expected_code[3] >= '5') continue;  // warning-only entries
    Status st = (*server)->RegisterFederatedFunction(entry.spec);
    ASSERT_FALSE(st.ok()) << entry.name;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << entry.name;
    EXPECT_NE(st.message().find("fedlint"), std::string::npos) << entry.name;
    EXPECT_NE(st.message().find(entry.expected_code), std::string::npos)
        << entry.name << ": " << st.message();
  }
}

TEST(LintGateTest, WarningsRegisterAndAreQueryable) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  auto server = federation::IntegrationServer::Create(
      federation::Architecture::kWfms, scenario);
  ASSERT_TRUE(server.ok());
  EXPECT_TRUE((*server)->lint_warnings().empty());
  for (const CorpusEntry& entry : MalformedSpecCorpus()) {
    if (entry.name != "unused-param" && entry.name != "dead-node") continue;
    Status st = (*server)->RegisterFederatedFunction(entry.spec);
    EXPECT_TRUE(st.ok()) << entry.name << ": " << st.ToString();
  }
  const std::vector<Diagnostic>& warnings = (*server)->lint_warnings();
  ASSERT_EQ(warnings.size(), 2u) << Dump(warnings);
  EXPECT_TRUE(HasFinding(warnings, kSpecUnusedParam,
                         "spec:UnusedParam/param:Extra"))
      << Dump(warnings);
  EXPECT_TRUE(HasFinding(warnings, kSpecDeadNode, "spec:DeadNode/node:GR"))
      << Dump(warnings);
}

// ---------------------------------------------------------------------------
// FF310: parallelize over a single-controller pool serializes.

TEST(LintPoolConfigTest, WarnsWhenParallelizeMeetsSingleControllerPool) {
  federation::FederatedFunctionSpec spec = federation::GetSuppQualSpec();
  plan::PlanOptions options;
  options.parallelize = true;
  std::vector<Diagnostic> diags = LintPoolConfig(spec, options, 1);
  ASSERT_EQ(diags.size(), 1u) << Dump(diags);
  EXPECT_EQ(diags[0].code, kPlanPoolSerialized);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].location, "spec:" + spec.name);
}

TEST(LintPoolConfigTest, SilentWithoutParallelizeOrWithRealPool) {
  federation::FederatedFunctionSpec spec = federation::GetSuppQualSpec();
  plan::PlanOptions passthrough;
  EXPECT_TRUE(LintPoolConfig(spec, passthrough, 1).empty());
  plan::PlanOptions options;
  options.parallelize = true;
  EXPECT_TRUE(LintPoolConfig(spec, options, 2).empty());
  EXPECT_TRUE(LintPoolConfig(spec, options, 8).empty());
}

TEST(LintPoolConfigTest, ServerRegistrationCollectsFf310Warning) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  plan::PlanOptions options;
  options.parallelize = true;

  // Pool of one: the warning is collected, the registration still succeeds.
  auto single = federation::IntegrationServer::Create(
      federation::Architecture::kWfms, scenario);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE((*single)
                  ->RegisterFederatedFunction(federation::GetSuppQualSpec(),
                                              options)
                  .ok());
  EXPECT_TRUE(HasFinding((*single)->lint_warnings(), kPlanPoolSerialized,
                         "spec:GetSuppQual"))
      << Dump((*single)->lint_warnings());

  // Pool of four: the parallel stages can really fan out — no warning.
  federation::ControllerPoolOptions pool;
  pool.max_size = 4;
  auto pooled = federation::IntegrationServer::Create(
      federation::Architecture::kWfms, scenario, {}, pool);
  ASSERT_TRUE(pooled.ok());
  ASSERT_TRUE((*pooled)
                  ->RegisterFederatedFunction(federation::GetSuppQualSpec(),
                                              options)
                  .ok());
  EXPECT_FALSE(HasFinding((*pooled)->lint_warnings(), kPlanPoolSerialized,
                          "spec:GetSuppQual"))
      << Dump((*pooled)->lint_warnings());
}

// ---------------------------------------------------------------------------
// Dataflow gate (FF4xx): semantically broken but syntactically clean specs
// must die at registration, with the pinned code and location in the status.

TEST(RegistrationGateTest, SemanticCorpusEntriesAreRejectedAtRegistration) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  std::vector<SemanticCorpusEntry> corpus = SemanticSpecCorpus();
  ASSERT_GE(corpus.size(), 6u);
  for (const SemanticCorpusEntry& entry : corpus) {
    federation::ControllerPoolOptions pool;
    pool.max_size = entry.pool_max_size;
    pool.per_tenant_quota = entry.per_tenant_quota;
    auto server = federation::IntegrationServer::Create(
        federation::Architecture::kWfms, scenario, {}, pool);
    ASSERT_TRUE(server.ok()) << entry.name << ": " << server.status();
    (*server)->retry_policy() = entry.retry;
    (*server)->analysis_deadline_us() = entry.deadline_us;
    plan::PlanOptions options;
    options.parallelize = entry.parallelize;
    Status status = (*server)->RegisterFederatedFunction(entry.spec, options);
    ASSERT_FALSE(status.ok())
        << entry.name << " registered despite " << entry.expected_code;
    std::string text = status.ToString();
    EXPECT_NE(text.find(entry.expected_code), std::string::npos)
        << entry.name << ": " << text;
    EXPECT_NE(text.find(entry.expected_location), std::string::npos)
        << entry.name << ": " << text;
  }
}

TEST(RegistrationGateTest, SampleSpecsStillRegisterUnderTheDataflowGate) {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  auto server = federation::IntegrationServer::Create(
      federation::Architecture::kWfms, scenario);
  ASSERT_TRUE(server.ok());
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    EXPECT_TRUE((*server)->RegisterFederatedFunction(spec).ok()) << spec.name;
  }
  // The FF410 cardinality warning is collected, not blocking.
  bool has_ff410 = false;
  for (const Diagnostic& d : (*server)->lint_warnings()) {
    has_ff410 = has_ff410 || d.code == "FF410";
  }
  EXPECT_TRUE(has_ff410) << Dump((*server)->lint_warnings());
}

}  // namespace
}  // namespace fedflow::analysis
