// Tests for the dataflow pass: the interval lattice, the worklist solver's
// widening discipline on cyclic graphs, cast feasibility, and each analysis'
// FF4xx diagnostics — golden-pinned through the semantic corpus and checked
// clean over the sample scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/corpus.h"
#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/dataflow/framework.h"
#include "analysis/dataflow/interval.h"
#include "analysis/dataflow/schema_analysis.h"
#include "analysis/diagnostic.h"
#include "analysis/spec_lint.h"
#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "federation/sample_scenario.h"
#include "plan/fed_plan.h"
#include "sim/latency.h"

namespace fedflow::analysis {
namespace {

using dataflow::Graph;
using dataflow::Interval;
using dataflow::WorklistSolver;
using federation::FederatedFunctionSpec;
using federation::SpecArg;
using federation::SpecCall;
using federation::SpecOutput;

appsys::AppSystemRegistry MakeRegistry() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  EXPECT_TRUE(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)).ok());
  EXPECT_TRUE(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)).ok());
  EXPECT_TRUE(systems.Add(std::make_shared<appsys::PdmSystem>(scenario)).ok());
  return systems;
}

bool HasFinding(const std::vector<Diagnostic>& diags, const std::string& code,
                const std::string& location) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.code == code && d.location == location;
  });
}

/// SupplierNo INT -> stock.GetQuality -> Qual, the minimal clean spec.
FederatedFunctionSpec QualitySpec(const std::string& name) {
  FederatedFunctionSpec spec;
  spec.name = name;
  spec.params = {Column{"SupplierNo", DataType::kInt}};
  spec.calls = {
      SpecCall{"GQ", "stock", "GetQuality", {SpecArg::Param("SupplierNo")}}};
  spec.outputs = {SpecOutput{"Qual", "GQ", "Qual", DataType::kNull}};
  return spec;
}

// ---------------------------------------------------------------------------
// The interval lattice.

TEST(IntervalTest, ArithmeticSaturatesAndAbsorbsUnbounded) {
  EXPECT_EQ(Interval::Exact(3).Add(Interval::Of(1, 2)), Interval::Of(4, 5));
  EXPECT_EQ(Interval::Of(2, 3).Mul(Interval::Of(4, 5)), Interval::Of(8, 15));
  EXPECT_EQ(Interval::AtLeast(1).Add(Interval::Exact(5)),
            Interval::AtLeast(6));
  EXPECT_EQ(Interval::AtLeast(2).Mul(Interval::Exact(3)),
            Interval::AtLeast(6));
  // The zero annihilates an unbounded factor.
  EXPECT_EQ(Interval::AtLeast(1).Mul(Interval::Exact(0)), Interval::Exact(0));
}

TEST(IntervalTest, JoinIsConvexHull) {
  EXPECT_EQ(Interval::Of(1, 3).Join(Interval::Of(5, 9)), Interval::Of(1, 9));
  EXPECT_EQ(Interval::Of(1, 3).Join(Interval::AtLeast(0)),
            Interval::AtLeast(0));
}

TEST(IntervalTest, WidenJumpsGrowingBoundsToTheirExtremes) {
  // Upper bound grew: jumps to unbounded. Lower bound shrank: jumps to 0.
  EXPECT_EQ(Interval::Of(1, 3).Widen(Interval::Of(1, 4)),
            Interval::AtLeast(1));
  EXPECT_EQ(Interval::Of(2, 3).Widen(Interval::Of(1, 3)), Interval::Of(0, 3));
  // Stable interval stays put.
  EXPECT_EQ(Interval::Of(1, 3).Widen(Interval::Of(1, 3)), Interval::Of(1, 3));
}

TEST(IntervalTest, ContainsAndToString) {
  EXPECT_TRUE(Interval::Of(0, 5).Contains(5));
  EXPECT_FALSE(Interval::Of(0, 5).Contains(6));
  EXPECT_TRUE(Interval::AtLeast(1).Contains(1000000));
  EXPECT_FALSE(Interval::AtLeast(1).Contains(0));
  EXPECT_EQ(Interval::Of(2, 5).ToString(), "[2, 5]");
  EXPECT_EQ(Interval::AtLeast(0).ToString(), "[0, inf)");
}

// ---------------------------------------------------------------------------
// The worklist solver on a synthetic cyclic graph.

/// A counting lattice that strictly ascends around a cycle: without widening
/// it would climb forever; with it, the back-edge target jumps to unbounded
/// and the solve converges.
struct GrowLattice {
  using State = Interval;
  State Initial(size_t) { return Interval::Exact(0); }
  State Transfer(size_t, const std::vector<const Interval*>& pred_outs) {
    Interval in = Interval::Exact(0);
    for (const Interval* p : pred_outs) in = in.Join(*p);
    return in.Add(Interval::Exact(1));
  }
  bool Join(Interval* into, const Interval& from) {
    Interval hull = into->Join(from);
    if (hull == *into) return false;
    *into = hull;
    return true;
  }
  void Widen(Interval* into, const Interval& previous) {
    *into = previous.Widen(*into);
  }
};

Graph TwoNodeCycle(bool declare_back_edge) {
  Graph g;
  g.preds = {{1}, {0}};
  g.succs = {{1}, {0}};
  if (declare_back_edge) g.back_edges = {{1, 0}};
  g.order = {0, 1};
  return g;
}

TEST(WorklistSolverTest, WideningMakesACyclicAscentConverge) {
  GrowLattice lattice;
  WorklistSolver<GrowLattice> solver;
  std::vector<Interval> out = solver.Solve(&lattice, TwoNodeCycle(true));
  EXPECT_TRUE(solver.converged());
  EXPECT_TRUE(out[0].unbounded());
  EXPECT_TRUE(out[1].unbounded());
}

TEST(WorklistSolverTest, IterationCapCatchesAnUndeclaredBackEdge) {
  // Same cycle, but hidden from the widening discipline: the safety valve
  // must stop the ascent and report non-convergence instead of hanging.
  GrowLattice lattice;
  WorklistSolver<GrowLattice> solver;
  (void)solver.Solve(&lattice, TwoNodeCycle(false));
  EXPECT_FALSE(solver.converged());
}

TEST(WorklistSolverTest, LoopFreeGraphConvergesInOneSweep) {
  GrowLattice lattice;
  WorklistSolver<GrowLattice> solver;
  Graph g;
  g.preds = {{}, {0}, {1}};
  g.succs = {{1}, {2}, {}};
  g.order = {0, 1, 2};
  std::vector<Interval> out = solver.Solve(&lattice, g);
  EXPECT_TRUE(solver.converged());
  // The hull keeps the Initial [0, 0] floor; the chain's depth sets the max.
  EXPECT_EQ(out[2], Interval::Of(0, 3));
}

// ---------------------------------------------------------------------------
// Cast feasibility (the FF400/FF401/FF402 decision table).

TEST(ClassifyCastTest, MatchesValueCastToSemantics) {
  using dataflow::CastFeasibility;
  using dataflow::ClassifyCast;
  EXPECT_EQ(ClassifyCast(DataType::kInt, DataType::kInt),
            CastFeasibility::kAlways);
  EXPECT_EQ(ClassifyCast(DataType::kInt, DataType::kVarchar),
            CastFeasibility::kAlways);
  EXPECT_EQ(ClassifyCast(DataType::kVarchar, DataType::kInt),
            CastFeasibility::kValueDependent);
  EXPECT_EQ(ClassifyCast(DataType::kDouble, DataType::kInt),
            CastFeasibility::kNarrowing);
  EXPECT_EQ(ClassifyCast(DataType::kDouble, DataType::kBigInt),
            CastFeasibility::kNarrowing);
  EXPECT_EQ(ClassifyCast(DataType::kVarchar, DataType::kBool),
            CastFeasibility::kNever);
  EXPECT_EQ(ClassifyCast(DataType::kInt, DataType::kNull),
            CastFeasibility::kNever);
}

// ---------------------------------------------------------------------------
// The semantic corpus, golden-pinned through RunDataflow.

TEST(DataflowGoldenTest, EverySemanticEntryProducesItsPinnedDiagnostic) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  std::vector<SemanticCorpusEntry> corpus = SemanticSpecCorpus();
  ASSERT_GE(corpus.size(), 6u);
  for (const SemanticCorpusEntry& entry : corpus) {
    // Syntactically clean: the shape pass must not error.
    std::vector<Diagnostic> shape = LintSpec(entry.spec, systems);
    EXPECT_FALSE(HasErrors(shape))
        << entry.name << ":\n" << FormatDiagnostics(shape);

    DataflowOptions options;
    options.deadline_us = entry.deadline_us;
    options.retry = entry.retry;
    options.pool_max_size = entry.pool_max_size;
    options.per_tenant_quota = entry.per_tenant_quota;
    options.parallelize = entry.parallelize;
    Result<DataflowResult> df =
        RunDataflow(entry.spec, systems, model, options);
    ASSERT_TRUE(df.ok()) << entry.name << ": " << df.status();
    EXPECT_TRUE(
        HasFinding(df->diagnostics, entry.expected_code,
                   entry.expected_location))
        << entry.name << ":\n" << FormatDiagnostics(df->diagnostics);
    EXPECT_TRUE(HasErrors(df->diagnostics)) << entry.name;
  }
}

TEST(DataflowGoldenTest, SemanticCorpusCoversEveryAnalysisFamily) {
  std::vector<std::string> codes;
  for (const SemanticCorpusEntry& e : SemanticSpecCorpus()) {
    codes.push_back(e.expected_code);
  }
  for (const char* required :
       {kDfCastNeverSucceeds, kDfInvocationExplosion, kDfScalarOfMultiRow,
        kDfUnboundedLoopUnion, kDfDeadlineInfeasible,
        kDfRetryScheduleInfeasible, kDfStageOverTenantQuota}) {
    EXPECT_NE(std::find(codes.begin(), codes.end(), required), codes.end())
        << "semantic corpus lacks an entry for " << required;
  }
}

// ---------------------------------------------------------------------------
// The sample scenario under the default deployment.

TEST(DataflowSampleTest, SampleSpecsHaveNoDataflowErrors) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    Result<DataflowResult> df = RunDataflow(spec, systems, model);
    ASSERT_TRUE(df.ok()) << spec.name << ": " << df.status();
    EXPECT_FALSE(HasErrors(df->diagnostics))
        << spec.name << ":\n" << FormatDiagnostics(df->diagnostics);
    // Structural facts line up with the compiled plan.
    EXPECT_EQ(df->cards.size(), df->call_ids.size()) << spec.name;
    EXPECT_GE(df->iterations.min, 1) << spec.name;
    EXPECT_GT(df->hot_wfms_us, 0) << spec.name;
    EXPECT_GT(df->hot_udtf_us, 0) << spec.name;
  }
}

TEST(DataflowSampleTest, LateralSetReturnerChainWarnsUnboundedInvocations) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    if (spec.name != "GetSubCompDiscounts") continue;
    Result<DataflowResult> df = RunDataflow(spec, systems, model);
    ASSERT_TRUE(df.ok()) << df.status();
    EXPECT_TRUE(HasFinding(df->diagnostics, kDfUnboundedInvocations,
                           "spec:GetSubCompDiscounts/node:GCS4D"))
        << FormatDiagnostics(df->diagnostics);
    return;
  }
  FAIL() << "sample scenario lost GetSubCompDiscounts";
}

// ---------------------------------------------------------------------------
// Schema analysis: value-dependent casts and the FF403 honesty check.

TEST(SchemaAnalysisTest, ValueDependentCastWarns) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  FederatedFunctionSpec spec;
  spec.name = "NameAsInt";
  spec.params = {Column{"SupplierNo", DataType::kInt}};
  spec.calls = {SpecCall{"GSN", "purchasing", "GetSupplierName",
                         {SpecArg::Param("SupplierNo")}}};
  spec.outputs = {SpecOutput{"NameNum", "GSN", "SupplierName", DataType::kInt}};
  Result<DataflowResult> df = RunDataflow(spec, systems, model);
  ASSERT_TRUE(df.ok()) << df.status();
  EXPECT_TRUE(HasFinding(df->diagnostics, kDfCastValueDependent,
                         "spec:NameAsInt/output:NameNum"))
      << FormatDiagnostics(df->diagnostics);
  EXPECT_FALSE(HasErrors(df->diagnostics));
}

TEST(SchemaAnalysisTest, TamperedPlanSchemaTripsTheDriftCheck) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  FederatedFunctionSpec spec = QualitySpec("Drift");
  Result<plan::FedPlan> plan = plan::CompilePlan(spec, systems);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Simulate a compiler bug: the plan promises a column the outputs don't
  // produce. The schema analysis must refuse to vouch for it.
  plan::FedPlan tampered = *plan;
  tampered.result_schema = Schema();
  tampered.result_schema.AddColumn("NotQual", DataType::kVarchar);
  dataflow::PlanGraph graph = dataflow::PlanGraph::Build(tampered);
  dataflow::SchemaAnalysisResult schema = dataflow::AnalyzeSchema(graph, spec);
  EXPECT_TRUE(HasFinding(schema.diagnostics, kDfResultSchemaDrift,
                         "spec:Drift"))
      << FormatDiagnostics(schema.diagnostics);
}

// ---------------------------------------------------------------------------
// Budget analysis: the deadline verdict flips with the deployment knob.

TEST(BudgetAnalysisTest, DeadlineVerdictTracksTheModeledHotPath) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  FederatedFunctionSpec spec = QualitySpec("Budgeted");

  Result<DataflowResult> base = RunDataflow(spec, systems, model);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_TRUE(base->diagnostics.empty())
      << FormatDiagnostics(base->diagnostics);
  VDuration best = std::min(base->hot_wfms_us, base->hot_udtf_us);
  ASSERT_GT(best, 1);

  // Just above the hot path but below the cold-start worst case: a warning.
  DataflowOptions warn;
  warn.deadline_us = best + 1;
  Result<DataflowResult> cold = RunDataflow(spec, systems, model, warn);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(HasFinding(cold->diagnostics, kDfColdStartOverDeadline,
                         "spec:Budgeted/deadline"))
      << FormatDiagnostics(cold->diagnostics);
  EXPECT_FALSE(HasErrors(cold->diagnostics));

  // Below the hot path: infeasible outright.
  DataflowOptions err;
  err.deadline_us = best - 1;
  Result<DataflowResult> hot = RunDataflow(spec, systems, model, err);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(HasFinding(hot->diagnostics, kDfDeadlineInfeasible,
                         "spec:Budgeted/deadline"))
      << FormatDiagnostics(hot->diagnostics);

  // Comfortably above hot + cold surcharge: silent.
  DataflowOptions fine;
  fine.deadline_us = best + 1000000;
  Result<DataflowResult> ok = RunDataflow(spec, systems, model, fine);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->diagnostics.empty()) << FormatDiagnostics(ok->diagnostics);
}

// ---------------------------------------------------------------------------
// Taint analysis: shared-pool lease flow.

TEST(TaintAnalysisTest, UnquotaedSharedPoolWarnsOnEscapingOutputs) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  FederatedFunctionSpec spec = QualitySpec("Pooled");
  DataflowOptions options;
  options.pool_max_size = 4;  // shared, and no per-tenant quota
  Result<DataflowResult> df = RunDataflow(spec, systems, model, options);
  ASSERT_TRUE(df.ok()) << df.status();
  EXPECT_TRUE(HasFinding(df->diagnostics, kDfSharedLeaseFlow,
                         "spec:Pooled/output:Qual"))
      << FormatDiagnostics(df->diagnostics);
  EXPECT_FALSE(HasErrors(df->diagnostics));

  // A quota scopes the leases: the warning disappears.
  options.per_tenant_quota = 1;
  Result<DataflowResult> quotaed = RunDataflow(spec, systems, model, options);
  ASSERT_TRUE(quotaed.ok());
  EXPECT_TRUE(quotaed->diagnostics.empty())
      << FormatDiagnostics(quotaed->diagnostics);
}

// ---------------------------------------------------------------------------
// Cardinality facts the fuzzer holds the runtime to.

TEST(CardinalityTest, ConcreteLoopCountSharpensTheIterationInterval) {
  appsys::AppSystemRegistry systems = MakeRegistry();
  sim::LatencyModel model;
  FederatedFunctionSpec spec;
  spec.name = "Loopy";
  spec.params = {Column{"N", DataType::kInt}};
  spec.calls = {SpecCall{"GCN", "pdm", "GetCompName",
                         {SpecArg::Param("ITERATION")}}};
  spec.outputs = {SpecOutput{"CompName", "GCN", "CompName", DataType::kNull}};
  spec.loop.enabled = true;
  spec.loop.count_param = "N";
  spec.loop.union_all = false;  // keep-last

  Result<DataflowResult> open = RunDataflow(spec, systems, model);
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_EQ(open->iterations, Interval::AtLeast(1));

  DataflowOptions options;
  options.concrete_loop_count = 3;
  Result<DataflowResult> sharp = RunDataflow(spec, systems, model, options);
  ASSERT_TRUE(sharp.ok());
  EXPECT_EQ(sharp->iterations, Interval::Exact(3));
  // Keep-last loop: the result interval is one iteration's rows, [0, 1].
  EXPECT_EQ(sharp->result_rows_wfms, Interval::Of(0, 1));
}

}  // namespace
}  // namespace fedflow::analysis
