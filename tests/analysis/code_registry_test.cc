// Tests over the diagnostic-code registry: every FF### code is unique,
// numerically ordered, inside a declared band, named for SARIF, and
// documented in DESIGN.md's diagnostic table.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/code_registry.h"
#include "analysis/dataflow/dataflow_lint.h"
#include "analysis/dataflow/saga_analysis.h"
#include "analysis/plan_lint.h"
#include "analysis/spec_lint.h"

namespace fedflow::analysis {
namespace {

int NumericCode(const std::string& code) {
  EXPECT_EQ(code.size(), 5u) << code;
  EXPECT_EQ(code.substr(0, 2), "FF") << code;
  return std::stoi(code.substr(2));
}

TEST(CodeRegistryTest, CodesAreUniqueAndOrdered) {
  std::set<std::string> codes;
  std::set<std::string> names;
  int previous = 0;
  for (const CodeInfo& info : AllDiagnosticCodes()) {
    EXPECT_TRUE(codes.insert(info.code).second)
        << "duplicate code " << info.code;
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate rule name " << info.name;
    int numeric = NumericCode(info.code);
    EXPECT_GT(numeric, previous) << info.code << " out of order";
    previous = numeric;
  }
  EXPECT_GE(codes.size(), 80u);
}

TEST(CodeRegistryTest, EveryCodeFallsInExactlyOneBand) {
  const std::vector<CodeBand>& bands = DiagnosticCodeBands();
  for (const CodeInfo& info : AllDiagnosticCodes()) {
    int numeric = NumericCode(info.code);
    int owners = 0;
    for (const CodeBand& band : bands) {
      if (numeric >= band.lo && numeric <= band.hi) ++owners;
    }
    EXPECT_EQ(owners, 1) << info.code << " is in " << owners << " bands";
  }
}

TEST(CodeRegistryTest, RuleNamesAreKebabCase) {
  for (const CodeInfo& info : AllDiagnosticCodes()) {
    EXPECT_FALSE(info.name.empty()) << info.code;
    for (char c : info.name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == '-')
          << info.code << " rule name '" << info.name << "'";
    }
    EXPECT_FALSE(info.summary.empty()) << info.code;
  }
}

TEST(CodeRegistryTest, LookupFindsKnownAndRejectsUnknown) {
  const CodeInfo* info = FindDiagnosticCode("FF410");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "df-unbounded-invocations");
  EXPECT_EQ(info->severity, Severity::kWarning);
  EXPECT_EQ(FindDiagnosticCode("FF999"), nullptr);
}

TEST(CodeRegistryTest, RegistryCoversTheEmittableConstants) {
  for (const char* code :
       {kSpecDanglingNode, kSpecArityMismatch, kPlanCompileFailed,
        kDfCastNeverSucceeds, kDfUnboundedInvocations, kDfInvocationExplosion,
        kDfScalarOfMultiRow, kDfUnboundedLoopUnion, kDfDeadlineInfeasible,
        kDfRetryScheduleInfeasible, kDfColdStartOverDeadline,
        kDfSharedLeaseFlow, kDfStageOverTenantQuota, kSagaMissingCompensation,
        kSagaCompensationMismatch, kSagaWriteInLoop, kSagaRetryWithoutLedger,
        kSagaAmbiguousStep, kSagaCaptureUnordered}) {
    EXPECT_NE(FindDiagnosticCode(code), nullptr) << code << " unregistered";
  }
}

TEST(CodeRegistryTest, EveryCodeIsDocumentedInDesignDoc) {
  std::ifstream in(std::string(FEDFLOW_SOURCE_DIR) + "/DESIGN.md");
  ASSERT_TRUE(in.good()) << "DESIGN.md not found under FEDFLOW_SOURCE_DIR";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string design = buffer.str();
  for (const CodeInfo& info : AllDiagnosticCodes()) {
    EXPECT_NE(design.find(info.code), std::string::npos)
        << info.code << " (" << info.name << ") is not documented in DESIGN.md";
  }
}

}  // namespace
}  // namespace fedflow::analysis
