// Plan-IR unit tests: passthrough fidelity (the bit-identity contract the
// benchmarks pin), schedule/stage structure, the cost model, the optimizer
// passes and the shared shape classifier.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "federation/classify.h"
#include "federation/sample_scenario.h"
#include "plan/cost.h"
#include "plan/explain.h"
#include "plan/fed_plan.h"
#include "plan/optimizer.h"
#include "plan/shape.h"

namespace fedflow::plan {
namespace {

using federation::FederatedFunctionSpec;
using federation::MappingCase;

const appsys::AppSystemRegistry& SampleRegistry() {
  static appsys::AppSystemRegistry* systems = [] {
    appsys::Scenario scenario = appsys::GenerateScenario({});
    auto* registry = new appsys::AppSystemRegistry();
    (void)registry->Add(std::make_shared<appsys::StockKeepingSystem>(scenario));
    (void)registry->Add(std::make_shared<appsys::PurchasingSystem>(scenario));
    (void)registry->Add(std::make_shared<appsys::PdmSystem>(scenario));
    return registry;
  }();
  return *systems;
}

size_t PositionOf(const FedPlan& plan, const std::string& id) {
  for (size_t k = 0; k < plan.order.size(); ++k) {
    if (plan.calls[plan.order[k]].id == id) return k;
  }
  ADD_FAILURE() << "call not in order: " << id;
  return 0;
}

TEST(PlanCompileTest, PassthroughOrderMatchesSpecTopologicalOrder) {
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    auto plan = CompilePlan(spec, SampleRegistry());
    ASSERT_TRUE(plan.ok()) << spec.name << ": " << plan.status();
    auto expected = federation::TopologicalCallOrder(spec);
    ASSERT_TRUE(expected.ok()) << spec.name;
    EXPECT_EQ(plan->order, *expected) << spec.name;
    EXPECT_FALSE(plan->optimized) << spec.name;
    EXPECT_TRUE(plan->decisions.empty()) << spec.name;
    EXPECT_TRUE(plan->sequencing_edges.empty()) << spec.name;
  }
}

TEST(PlanCompileTest, StagesPartitionCallsAndRespectDependencies) {
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    auto plan = CompilePlan(spec, SampleRegistry());
    ASSERT_TRUE(plan.ok()) << spec.name;
    std::vector<size_t> stage_of(plan->calls.size(), SIZE_MAX);
    size_t seen = 0;
    for (size_t s = 0; s < plan->stages.size(); ++s) {
      for (size_t i : plan->stages[s]) {
        ASSERT_LT(i, plan->calls.size());
        EXPECT_EQ(stage_of[i], SIZE_MAX) << spec.name << ": call twice";
        stage_of[i] = s;
        ++seen;
      }
    }
    EXPECT_EQ(seen, plan->calls.size()) << spec.name;
    for (size_t i = 0; i < plan->calls.size(); ++i) {
      for (size_t d : plan->calls[i].data_deps) {
        EXPECT_LT(stage_of[d], stage_of[i])
            << spec.name << ": dependency not in an earlier stage";
      }
    }
  }
}

TEST(PlanCompileTest, ResultSchemaMatchesOutputs) {
  auto plan = CompilePlan(federation::GetSuppQualReliaSpec(), SampleRegistry());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->result_schema.num_columns(),
            federation::GetSuppQualReliaSpec().outputs.size());
}

TEST(PlanCompileTest, SequentialBaselineChainsEveryCall) {
  CompileOptions options;
  options.sequential_baseline = true;
  auto plan =
      CompilePlan(federation::GetSuppQualReliaSpec(), SampleRegistry(), options);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->calls.size(), 2u);
  EXPECT_EQ(plan->sequencing_edges.size(), 1u);
  ASSERT_EQ(plan->stages.size(), 2u);  // chain: every stage a singleton
  EXPECT_EQ(plan->stages[0].size(), 1u);
  EXPECT_EQ(plan->stages[1].size(), 1u);
}

TEST(PlanOptimizerTest, ParallelizeRecoversHandwrittenSchedule) {
  const FederatedFunctionSpec spec = federation::GetSuppQualReliaSpec();
  sim::LatencyModel model;

  auto handwritten = BuildPlan(spec, SampleRegistry(), model);
  ASSERT_TRUE(handwritten.ok());

  PlanOptions seq;
  seq.sequential_baseline = true;
  auto sequential = BuildPlan(spec, SampleRegistry(), model, seq);
  ASSERT_TRUE(sequential.ok());

  PlanOptions opt = seq;
  opt.parallelize = true;
  auto optimized = BuildPlan(spec, SampleRegistry(), model, opt);
  ASSERT_TRUE(optimized.ok());

  PlanCostEstimate hand_est = EstimatePlan(*handwritten, model);
  PlanCostEstimate seq_est = EstimatePlan(*sequential, model);
  PlanCostEstimate opt_est = EstimatePlan(*optimized, model);

  // The pass drops the baseline's sequencing edges and recovers exactly the
  // hand-written parallel schedule — the bench_plan_optimizer acceptance.
  EXPECT_EQ(opt_est.wfms_elapsed_us, hand_est.wfms_elapsed_us);
  EXPECT_EQ(opt_est.udtf_elapsed_us, hand_est.udtf_elapsed_us);
  EXPECT_LT(opt_est.wfms_elapsed_us, seq_est.wfms_elapsed_us);
  // Lateral SQL evaluates sequentially regardless of the schedule.
  EXPECT_EQ(seq_est.udtf_elapsed_us, hand_est.udtf_elapsed_us);
  EXPECT_TRUE(optimized->sequencing_edges.empty());
  EXPECT_TRUE(optimized->optimized);
  EXPECT_FALSE(optimized->decisions.empty());
}

TEST(PlanOptimizerTest, ReorderSchedulesMostExpensiveReadyCallFirst) {
  sim::LatencyModel model;
  PlanOptions options;
  options.reorder = true;
  // Same two independent calls as GetSubCompDiscounts but without the join,
  // so the pass may legally reorder.
  FederatedFunctionSpec spec = federation::GetSubCompDiscountsSpec();
  spec.joins.clear();
  auto plan = BuildPlan(spec, SampleRegistry(), model, options);
  ASSERT_TRUE(plan.ok());
  // GetCompSupp4Discount (GCS4D) is costlier than GetSubCompNo (GSCD), so it
  // moves ahead of declaration order.
  EXPECT_LT(PositionOf(*plan, "GCS4D"), PositionOf(*plan, "GSCD"));
}

TEST(PlanOptimizerTest, ReorderRefusesJoinedPlans) {
  // Joined sources are multi-row and the lateral chain nest-loops them, so
  // reordering would change how often inner functions are invoked — the
  // equivalence suite pins that both lowerings execute the same multiset of
  // local calls.
  sim::LatencyModel model;
  PlanOptions options;
  options.reorder = true;
  auto plan = BuildPlan(federation::GetSubCompDiscountsSpec(), SampleRegistry(),
                        model, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(PositionOf(*plan, "GSCD"), PositionOf(*plan, "GCS4D"));
  ASSERT_FALSE(plan->decisions.empty());
  EXPECT_NE(plan->decisions[0].find("rejected"), std::string::npos)
      << plan->decisions[0];
}

TEST(PlanOptimizerTest, ReorderKeepsDependencyConstraints) {
  sim::LatencyModel model;
  PlanOptions options;
  options.reorder = true;
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    auto plan = BuildPlan(spec, SampleRegistry(), model, options);
    ASSERT_TRUE(plan.ok()) << spec.name;
    std::vector<size_t> pos(plan->calls.size());
    for (size_t k = 0; k < plan->order.size(); ++k) pos[plan->order[k]] = k;
    for (size_t i = 0; i < plan->calls.size(); ++i) {
      for (size_t d : plan->calls[i].data_deps) {
        EXPECT_LT(pos[d], pos[i]) << spec.name;
      }
    }
  }
}

TEST(PlanOptimizerTest, SinksJoinConjunctOntoLaterSide) {
  sim::LatencyModel model;
  PlanOptions options;
  options.sink_predicates = true;
  auto plan = BuildPlan(federation::GetSubCompDiscountsSpec(), SampleRegistry(),
                        model, options);
  ASSERT_TRUE(plan.ok());
  size_t with_predicate = 0;
  for (const PlanCall& call : plan->calls) {
    with_predicate += call.predicates.size();
    for (const std::string& p : call.predicates) {
      EXPECT_NE(p.find('='), std::string::npos) << p;
    }
  }
  EXPECT_EQ(with_predicate, plan->joins.size());
}

TEST(PlanClassifyTest, PlanClassMatchesSpecClassForAllSamples) {
  for (const FederatedFunctionSpec& spec : federation::AllSampleSpecs()) {
    auto plan = CompilePlan(spec, SampleRegistry());
    ASSERT_TRUE(plan.ok()) << spec.name;
    auto spec_class = federation::ClassifySpec(spec);
    ASSERT_TRUE(spec_class.ok()) << spec.name;
    EXPECT_EQ(ClassifyPlan(*plan), *spec_class) << spec.name;
    EXPECT_EQ(plan->mapping_case, *spec_class) << spec.name;
  }
}

TEST(PlanExplainTest, RendersStructureAndCosts) {
  sim::LatencyModel model;
  PlanOptions opt;
  opt.sequential_baseline = true;
  opt.parallelize = true;
  auto plan =
      BuildPlan(federation::GetSuppQualReliaSpec(), SampleRegistry(), model, opt);
  ASSERT_TRUE(plan.ok());
  std::string text = ExplainPlan(*plan, model);
  EXPECT_NE(text.find("PLAN GetSuppQualRelia"), std::string::npos);
  EXPECT_NE(text.find("parallel fork"), std::string::npos);
  EXPECT_NE(text.find("modeled elapsed"), std::string::npos);
  EXPECT_NE(text.find("decisions:"), std::string::npos);
}

// --- shared shape classifier (the 8-class matrix's single source of truth) --

ShapeFeatures Features(size_t n, std::vector<std::vector<size_t>> deps) {
  ShapeFeatures f;
  f.num_calls = n;
  f.deps = std::move(deps);
  return f;
}

TEST(ClassifyShapeTest, PinsTheComplexityMatrix) {
  // Loop: cyclic regardless of the graph.
  ShapeFeatures loop = Features(1, {{}});
  loop.loop = true;
  EXPECT_EQ(ClassifyShape(loop), MappingCase::kDependentCyclic);

  // One call: trivial with the identity signature, simple otherwise.
  ShapeFeatures identity = Features(1, {{}});
  identity.single_call_identity = true;
  EXPECT_EQ(ClassifyShape(identity), MappingCase::kTrivial);
  EXPECT_EQ(ClassifyShape(Features(1, {{}})), MappingCase::kSimple);

  // No edges: independent.
  EXPECT_EQ(ClassifyShape(Features(3, {{}, {}, {}})),
            MappingCase::kIndependent);

  // Fan-in >= 2: dependent (1:n); fan-out >= 2: dependent (n:1).
  EXPECT_EQ(ClassifyShape(Features(3, {{}, {}, {0, 1}})),
            MappingCase::kDependent1N);
  EXPECT_EQ(ClassifyShape(Features(3, {{}, {0}, {0}})),
            MappingCase::kDependentN1);

  // One chain covering every node: dependent (linear).
  EXPECT_EQ(ClassifyShape(Features(3, {{}, {0}, {1}})),
            MappingCase::kDependentLinear);
}

TEST(ClassifyShapeTest, ChainPlusDetachedNodeIsMixedNotLinear) {
  // Regression: a chain plus a detached node mixes parallel and sequential
  // execution — the matrix's dependent (1:n) row, not dependent (linear).
  // The spec classifier used to call this linear, contradicting the SQL lint.
  EXPECT_EQ(ClassifyShape(Features(3, {{}, {0}, {}})),
            MappingCase::kDependent1N);
  EXPECT_EQ(ClassifyShape(Features(4, {{}, {0}, {}, {2}})),
            MappingCase::kDependent1N);
}

}  // namespace
}  // namespace fedflow::plan
