// Cross-architecture equivalence of the OPTIMIZED plan: for every mapping
// class of the sample scenario, the WfMS and I-UDTF lowerings of the same
// optimized plan must execute the same multiset of local-function calls
// (per-function count deltas on the application systems) and produce
// identical result tables. The cyclic class, which lateral SQL cannot
// express, is checked WfMS vs the procedural (Java) I-UDTF instead. The
// general class exists only for sets of federated functions (ClassifySet)
// and has no single registrable spec.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "appsys/dataset.h"
#include "federation/integration_server.h"
#include "federation/sample_scenario.h"
#include "plan/optimizer.h"

namespace fedflow::federation {
namespace {

struct EquivalenceCase {
  const char* name;
  const char* mapping_class;
  std::vector<Value> args;
  bool cyclic = false;  ///< lateral SQL cannot express it; use the Java UDTF
};

std::vector<EquivalenceCase> Cases() {
  return {
      {"GibKompNr", "trivial", {Value::Varchar("brakepad")}},
      {"GetNumberSupp1234", "simple", {Value::Int(17)}},
      {"GetSuppQualRelia", "independent", {Value::Int(1234)}},
      {"GetSuppQual", "dependent: linear", {Value::Varchar("Stark")}},
      {"GetSubCompDiscounts", "independent + join",
       {Value::Int(3), Value::Int(5)}},
      {"GetNoSuppComp", "dependent: (1:n)",
       {Value::Varchar("Stark"), Value::Varchar("brakepad")}},
      {"GetSuppInfo", "dependent: (n:1)", {Value::Varchar("Acme")}},
      {"BuySuppComp", "general example (Fig. 1)",
       {Value::Int(1234), Value::Varchar("brakepad")}},
      {"AllCompNames", "dependent: cyclic", {Value::Int(5)}, /*cyclic=*/true},
  };
}

plan::PlanOptions Optimized() {
  plan::PlanOptions options;
  options.sequential_baseline = true;
  options.parallelize = true;
  options.reorder = true;
  options.sink_predicates = true;
  return options;
}

const FederatedFunctionSpec& SpecByName(const std::string& name) {
  static const std::vector<FederatedFunctionSpec> specs = AllSampleSpecs();
  for (const FederatedFunctionSpec& spec : specs) {
    if (spec.name == name) return spec;
  }
  ADD_FAILURE() << "sample spec not found: " << name;
  static const FederatedFunctionSpec empty;
  return empty;
}

/// Per-function call counts across every application system of the server,
/// keyed "SYSTEM.FUNCTION".
std::map<std::string, int64_t> AllCounts(const IntegrationServer& server) {
  std::map<std::string, int64_t> counts;
  for (const std::string& sys_name : server.systems().Names()) {
    auto sys = server.systems().Get(sys_name);
    if (!sys.ok()) continue;
    for (const auto& [fn, n] : (*sys)->FunctionCallCounts()) {
      counts[sys_name + "." + fn] += n;
    }
  }
  return counts;
}

std::map<std::string, int64_t> Delta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> delta;
  for (const auto& [key, n] : after) {
    auto it = before.find(key);
    int64_t d = n - (it == before.end() ? 0 : it->second);
    if (d != 0) delta[key] = d;
  }
  return delta;
}

std::string FormatCounts(const std::map<std::string, int64_t>& counts) {
  std::string out;
  for (const auto& [key, n] : counts) {
    out += "  " + key + " x" + std::to_string(n) + "\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

class PlanEquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(PlanEquivalenceTest, LoweringsExecuteSameCallsAndResults) {
  const EquivalenceCase& c = GetParam();
  const appsys::Scenario scenario = appsys::GenerateScenario({});
  const FederatedFunctionSpec& spec = SpecByName(c.name);
  const Architecture other_arch =
      c.cyclic ? Architecture::kJavaUdtf : Architecture::kUdtf;

  auto wfms = IntegrationServer::Create(Architecture::kWfms, scenario);
  ASSERT_TRUE(wfms.ok()) << wfms.status();
  auto other = IntegrationServer::Create(other_arch, scenario);
  ASSERT_TRUE(other.ok()) << other.status();

  ASSERT_TRUE((*wfms)->RegisterFederatedFunction(spec, Optimized()).ok());
  ASSERT_TRUE((*other)->RegisterFederatedFunction(spec, Optimized()).ok());

  auto wfms_before = AllCounts(**wfms);
  auto wfms_result = (*wfms)->CallFederated(c.name, c.args);
  ASSERT_TRUE(wfms_result.ok()) << wfms_result.status();
  auto wfms_delta = Delta(wfms_before, AllCounts(**wfms));

  auto other_before = AllCounts(**other);
  auto other_result = (*other)->CallFederated(c.name, c.args);
  ASSERT_TRUE(other_result.ok()) << other_result.status();
  auto other_delta = Delta(other_before, AllCounts(**other));

  // Same multiset of local-function calls...
  EXPECT_EQ(wfms_delta, other_delta)
      << c.mapping_class << "\nWfMS calls:\n" << FormatCounts(wfms_delta)
      << ArchitectureName(other_arch) << " calls:\n"
      << FormatCounts(other_delta);

  // ...and identical result tables (same schema width, same rows).
  EXPECT_EQ(wfms_result->table.schema().num_columns(),
            other_result->table.schema().num_columns());
  EXPECT_TRUE(
      Table::SameRowsAnyOrder(wfms_result->table, other_result->table))
      << c.mapping_class << "\nWfMS:\n" << wfms_result->table.ToString()
      << ArchitectureName(other_arch) << ":\n"
      << other_result->table.ToString();
}

TEST_P(PlanEquivalenceTest, OptimizationPreservesPassthroughSemantics) {
  const EquivalenceCase& c = GetParam();
  const appsys::Scenario scenario = appsys::GenerateScenario({});
  const FederatedFunctionSpec& spec = SpecByName(c.name);
  std::vector<Architecture> archs = {Architecture::kWfms};
  if (!c.cyclic) archs.push_back(Architecture::kUdtf);

  for (Architecture arch : archs) {
    auto passthrough = IntegrationServer::Create(arch, scenario);
    ASSERT_TRUE(passthrough.ok()) << passthrough.status();
    auto optimized = IntegrationServer::Create(arch, scenario);
    ASSERT_TRUE(optimized.ok()) << optimized.status();
    ASSERT_TRUE((*passthrough)->RegisterFederatedFunction(spec).ok());
    ASSERT_TRUE(
        (*optimized)->RegisterFederatedFunction(spec, Optimized()).ok());

    auto p_before = AllCounts(**passthrough);
    auto p_result = (*passthrough)->CallFederated(c.name, c.args);
    ASSERT_TRUE(p_result.ok()) << p_result.status();
    auto p_delta = Delta(p_before, AllCounts(**passthrough));

    auto o_before = AllCounts(**optimized);
    auto o_result = (*optimized)->CallFederated(c.name, c.args);
    ASSERT_TRUE(o_result.ok()) << o_result.status();
    auto o_delta = Delta(o_before, AllCounts(**optimized));

    EXPECT_EQ(p_delta, o_delta) << ArchitectureName(arch);
    EXPECT_TRUE(Table::SameRowsAnyOrder(p_result->table, o_result->table))
        << ArchitectureName(arch) << "\npassthrough:\n"
        << p_result->table.ToString() << "optimized:\n"
        << o_result->table.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMappingClasses, PlanEquivalenceTest, ::testing::ValuesIn(Cases()),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace fedflow::federation
