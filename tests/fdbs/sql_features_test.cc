// Tests of the extended SQL surface: DISTINCT, IN, BETWEEN, LIKE, CASE.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "fdbs/database.h"
#include "sql/parser.h"

namespace fedflow::fdbs {
namespace {

class SqlFeaturesTest : public ::testing::Test {
 protected:
  SqlFeaturesTest() {
    EXPECT_TRUE(
        db_.Execute("CREATE TABLE p (id INT, name VARCHAR, grade INT)").ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO p VALUES "
                            "(1, 'brakepad', 8), "
                            "(2, 'brake_disc', 3), "
                            "(3, 'wheel', 5), "
                            "(4, 'brakepad', 8), "
                            "(5, NULL, NULL)")
                    .ok());
  }

  Table MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? *r : Table();
  }

  Database db_;
};

TEST_F(SqlFeaturesTest, DistinctRemovesDuplicateRows) {
  Table t = MustQuery("SELECT DISTINCT name, grade FROM p WHERE name IS NOT "
                      "NULL ORDER BY name");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(SqlFeaturesTest, DistinctKeepsDistinctNulls) {
  Table t = MustQuery("SELECT DISTINCT grade FROM p");
  // 8, 3, 5, NULL.
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST_F(SqlFeaturesTest, DistinctSingleColumn) {
  Table t = MustQuery("SELECT DISTINCT name FROM p");
  EXPECT_EQ(t.num_rows(), 4u);  // brakepad, brake_disc, wheel, NULL
}

TEST_F(SqlFeaturesTest, InList) {
  Table t = MustQuery("SELECT id FROM p WHERE id IN (1, 3, 99) ORDER BY id");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);
  EXPECT_EQ(t.rows()[1][0].AsInt(), 3);
}

TEST_F(SqlFeaturesTest, NotInExcludesButDropsNullRows) {
  Table t = MustQuery(
      "SELECT id FROM p WHERE grade NOT IN (8, 3) ORDER BY id");
  // grade 5 passes; NULL grade yields unknown -> dropped.
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 3);
}

TEST_F(SqlFeaturesTest, InWithStrings) {
  Table t = MustQuery(
      "SELECT id FROM p WHERE name IN ('wheel', 'brakepad') ORDER BY id");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(SqlFeaturesTest, Between) {
  Table t = MustQuery("SELECT id FROM p WHERE grade BETWEEN 3 AND 5 "
                      "ORDER BY id");
  EXPECT_EQ(t.num_rows(), 2u);
  Table none = MustQuery("SELECT id FROM p WHERE grade BETWEEN 100 AND 200");
  EXPECT_EQ(none.num_rows(), 0u);
}

TEST_F(SqlFeaturesTest, NotBetween) {
  Table t = MustQuery(
      "SELECT id FROM p WHERE grade NOT BETWEEN 3 AND 5 ORDER BY id");
  EXPECT_EQ(t.num_rows(), 2u);  // the two grade-8 rows; NULL dropped
}

TEST_F(SqlFeaturesTest, LikePatterns) {
  EXPECT_EQ(MustQuery("SELECT id FROM p WHERE name LIKE 'brake%'").num_rows(),
            3u);
  EXPECT_EQ(MustQuery("SELECT id FROM p WHERE name LIKE '%pad'").num_rows(),
            2u);
  EXPECT_EQ(MustQuery("SELECT id FROM p WHERE name LIKE 'whee_'").num_rows(),
            1u);
  EXPECT_EQ(MustQuery("SELECT id FROM p WHERE name LIKE '%'").num_rows(), 4u);
  EXPECT_EQ(
      MustQuery("SELECT id FROM p WHERE name NOT LIKE 'brake%'").num_rows(),
      1u);
}

TEST_F(SqlFeaturesTest, LikeRequiresStrings) {
  auto r = db_.Execute("SELECT id FROM p WHERE grade LIKE '8'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(SqlFeaturesTest, SearchedCase) {
  Table t = MustQuery(
      "SELECT id, CASE WHEN grade >= 7 THEN 'good' WHEN grade >= 4 THEN 'ok' "
      "ELSE 'bad' END AS rating FROM p WHERE grade IS NOT NULL ORDER BY id");
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.rows()[0][1].AsVarchar(), "good");
  EXPECT_EQ(t.rows()[1][1].AsVarchar(), "bad");
  EXPECT_EQ(t.rows()[2][1].AsVarchar(), "ok");
}

TEST_F(SqlFeaturesTest, SimpleCaseDesugars) {
  Table t = MustQuery(
      "SELECT CASE name WHEN 'wheel' THEN 1 ELSE 0 END AS w FROM p "
      "ORDER BY w DESC LIMIT 1");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);
}

TEST_F(SqlFeaturesTest, CaseWithoutElseYieldsNull) {
  Table t = MustQuery(
      "SELECT CASE WHEN id = 1 THEN 'one' END AS c FROM p WHERE id = 2");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.rows()[0][0].is_null());
}

TEST_F(SqlFeaturesTest, CaseInsideAggregation) {
  Table t = MustQuery(
      "SELECT SUM(CASE WHEN grade >= 5 THEN 1 ELSE 0 END) AS good FROM p");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 3);
}

TEST_F(SqlFeaturesTest, CaseNeedsAtLeastOneWhen) {
  EXPECT_FALSE(db_.Execute("SELECT CASE ELSE 1 END FROM p").ok());
}

TEST_F(SqlFeaturesTest, CaseRoundTripsThroughToSql) {
  auto stmt = sql::ParseSelect(
      "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END AS c FROM t");
  ASSERT_TRUE(stmt.ok());
  std::string text = stmt->ToSql();
  auto reparsed = sql::ParseSelect(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(reparsed->ToSql(), text);
}

TEST_F(SqlFeaturesTest, DistinctRoundTripsThroughToSql) {
  auto stmt = sql::ParseSelect("SELECT DISTINCT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->ToSql().find("DISTINCT"), std::string::npos);
}

TEST(SqlLikeTest, WildcardSemantics) {
  EXPECT_TRUE(SqlLike("brakepad", "brake%"));
  EXPECT_TRUE(SqlLike("brakepad", "%pad"));
  EXPECT_TRUE(SqlLike("brakepad", "%ake%"));
  EXPECT_TRUE(SqlLike("brakepad", "b%k%d"));
  EXPECT_TRUE(SqlLike("brakepad", "________"));
  EXPECT_FALSE(SqlLike("brakepad", "_______"));
  EXPECT_TRUE(SqlLike("", ""));
  EXPECT_TRUE(SqlLike("", "%"));
  EXPECT_FALSE(SqlLike("", "_"));
  EXPECT_FALSE(SqlLike("abc", "abd"));
  EXPECT_TRUE(SqlLike("a%c", "a%c"));  // % in text matches via wildcard
  EXPECT_FALSE(SqlLike("Brake", "brake"));  // case-sensitive
  EXPECT_TRUE(SqlLike("aaab", "%aab"));     // backtracking
}

}  // namespace
}  // namespace fedflow::fdbs
