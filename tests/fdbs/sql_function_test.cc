#include "fdbs/sql_function.h"

#include <gtest/gtest.h>

#include "fdbs/database.h"

namespace fedflow::fdbs {
namespace {

class SqlFunctionTest : public ::testing::Test {
 protected:
  SqlFunctionTest() {
    EXPECT_TRUE(db_.Execute("CREATE TABLE nums (n INT, label VARCHAR)").ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO nums VALUES (1, 'one'), (2, 'two'), "
                            "(3, 'three')")
                    .ok());
  }

  Table MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? *r : Table();
  }

  Database db_;
};

TEST_F(SqlFunctionTest, CreateAndInvokeSimpleFunction) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION LabelOf (x INT) "
                    "RETURNS TABLE (label VARCHAR) LANGUAGE SQL RETURN "
                    "SELECT label FROM nums WHERE n = LabelOf.x")
                  .ok());
  Table t = MustQuery("SELECT L.label FROM TABLE (LabelOf(2)) AS L");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsVarchar(), "two");
}

TEST_F(SqlFunctionTest, ParameterCoercion) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION Big (x BIGINT) "
                    "RETURNS TABLE (y BIGINT) LANGUAGE SQL RETURN "
                    "SELECT Big.x + 1")
                  .ok());
  Table t = MustQuery("SELECT B.y FROM TABLE (Big(5)) AS B");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 6);
}

TEST_F(SqlFunctionTest, ResultCoercedToDeclaredSchema) {
  // Body yields INT, declaration says BIGINT: coerced on the way out.
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION AsBig (x INT) "
                    "RETURNS TABLE (y BIGINT) LANGUAGE SQL RETURN "
                    "SELECT AsBig.x")
                  .ok());
  Table t = MustQuery("SELECT B.y FROM TABLE (AsBig(7)) AS B");
  EXPECT_EQ(t.schema().column(0).type, DataType::kBigInt);
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 7);
}

TEST_F(SqlFunctionTest, ArityMismatchBetweenBodyAndDeclarationFails) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION TwoCols (x INT) "
                    "RETURNS TABLE (a INT) LANGUAGE SQL RETURN "
                    "SELECT n, label FROM nums")
                  .ok());
  auto r = db_.Execute("SELECT * FROM TABLE (TwoCols(1)) AS T");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(SqlFunctionTest, FunctionsCompose) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION F1 (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT F1.x * 2")
                  .ok());
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION F2 (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN "
                    "SELECT A.v + 1 FROM TABLE (F1(F2.x)) AS A")
                  .ok());
  Table t = MustQuery("SELECT R.v FROM TABLE (F2(10)) AS R");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 21);
}

TEST_F(SqlFunctionTest, SelfRecursionHitsDepthGuard) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION Rec (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN "
                    "SELECT R.v FROM TABLE (Rec(Rec.x)) AS R")
                  .ok());
  auto r = db_.Execute("SELECT * FROM TABLE (Rec(1)) AS R");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("depth"), std::string::npos);
}

TEST_F(SqlFunctionTest, WrongArgumentCountRejected) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION One (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT One.x")
                  .ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM TABLE (One()) AS T").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM TABLE (One(1, 2)) AS T").ok());
}

TEST_F(SqlFunctionTest, DuplicateFunctionNameRejected) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION Dup (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT Dup.x")
                  .ok());
  auto r = db_.Execute(
      "CREATE FUNCTION Dup (x INT) RETURNS TABLE (v INT) "
      "LANGUAGE SQL RETURN SELECT Dup.x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(SqlFunctionTest, DropFunctionRemovesIt) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION Gone (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT Gone.x")
                  .ok());
  ASSERT_TRUE(db_.Execute("DROP FUNCTION Gone").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM TABLE (Gone(1)) AS G").ok());
}

TEST_F(SqlFunctionTest, FunctionBodyJoinsTables) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION Pairs (lo INT) "
                    "RETURNS TABLE (a INT, b INT) LANGUAGE SQL RETURN "
                    "SELECT x.n, y.n FROM nums AS x, nums AS y "
                    "WHERE x.n < y.n AND x.n >= Pairs.lo")
                  .ok());
  Table t = MustQuery("SELECT * FROM TABLE (Pairs(1)) AS P");
  EXPECT_EQ(t.num_rows(), 3u);  // (1,2),(1,3),(2,3)
  Table t2 = MustQuery("SELECT * FROM TABLE (Pairs(2)) AS P");
  EXPECT_EQ(t2.num_rows(), 1u);
}

TEST_F(SqlFunctionTest, CatalogListsRegisteredFunctions) {
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION Listed (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT Listed.x")
                  .ok());
  auto names = db_.catalog().TableFunctionNames();
  bool found = false;
  for (const std::string& n : names) {
    if (n == "Listed") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fedflow::fdbs
