#include "fdbs/procedure.h"

#include <gtest/gtest.h>

#include "fdbs/database.h"

namespace fedflow::fdbs {
namespace {

class ProcedureTest : public ::testing::Test {
 protected:
  ProcedureTest() {
    EXPECT_TRUE(db_.Execute("CREATE TABLE nums (n INT)").ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO nums VALUES (1), (2), (3)").ok());
  }

  Table MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? *r : Table();
  }

  Database db_;
};

TEST_F(ProcedureTest, ReturnSelect) {
  MustExec(
      "CREATE PROCEDURE GetAll () BEGIN "
      "RETURN SELECT n FROM nums ORDER BY n; END");
  Table t = MustExec("CALL GetAll()");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ProcedureTest, ParametersAndVariables) {
  MustExec(
      "CREATE PROCEDURE AddUp (limit INT) BEGIN "
      "DECLARE total INT; "
      "DECLARE i INT; "
      "SET total = 0; "
      "SET i = 0; "
      "WHILE i < AddUp.limit DO "
      "  SET i = i + 1; "
      "  SET total = total + i; "
      "END WHILE; "
      "RETURN SELECT AddUp.total AS total; "
      "END");
  Table t = MustExec("CALL AddUp(4)");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 10);
}

TEST_F(ProcedureTest, IfThenElse) {
  MustExec(
      "CREATE PROCEDURE Sign (x INT) BEGIN "
      "IF Sign.x > 0 THEN RETURN SELECT 'positive' AS s; "
      "ELSE IF Sign.x < 0 THEN RETURN SELECT 'negative' AS s; "
      "ELSE RETURN SELECT 'zero' AS s; END IF; END IF; "
      "END");
  EXPECT_EQ(MustExec("CALL Sign(5)").rows()[0][0].AsVarchar(), "positive");
  EXPECT_EQ(MustExec("CALL Sign(-5)").rows()[0][0].AsVarchar(), "negative");
  EXPECT_EQ(MustExec("CALL Sign(0)").rows()[0][0].AsVarchar(), "zero");
}

TEST_F(ProcedureTest, EmitAccumulatesRows) {
  MustExec(
      "CREATE PROCEDURE Twice () BEGIN "
      "EMIT SELECT n FROM nums WHERE n <= 2 ORDER BY n; "
      "EMIT SELECT n FROM nums WHERE n = 3; "
      "END");
  Table t = MustExec("CALL Twice()");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ProcedureTest, EmitArityMismatchFails) {
  MustExec(
      "CREATE PROCEDURE Bad () BEGIN "
      "EMIT SELECT n FROM nums; "
      "EMIT SELECT n, n FROM nums; "
      "END");
  auto r = db_.Execute("CALL Bad()");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(ProcedureTest, ReturnStopsExecution) {
  MustExec(
      "CREATE PROCEDURE Early () BEGIN "
      "RETURN SELECT 1 AS v; "
      "EMIT SELECT 2 AS v; "
      "END");
  Table t = MustExec("CALL Early()");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);
}

TEST_F(ProcedureTest, NoReturnNoEmitYieldsEmptyTable) {
  MustExec("CREATE PROCEDURE Noop () BEGIN DECLARE x INT; END");
  Table t = MustExec("CALL Noop()");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ProcedureTest, NonTerminatingWhileHitsStepBudget) {
  MustExec(
      "CREATE PROCEDURE Forever () BEGIN "
      "DECLARE i INT; SET i = 1; "
      "WHILE i > 0 DO SET i = i + 1; END WHILE; "
      "END");
  auto r = db_.Execute("CALL Forever()");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("step budget"), std::string::npos);
}

TEST_F(ProcedureTest, SetUndeclaredVariableFails) {
  MustExec("CREATE PROCEDURE BadSet () BEGIN SET ghost = 1; END");
  auto r = db_.Execute("CALL BadSet()");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ProcedureTest, DuplicateDeclareFails) {
  MustExec(
      "CREATE PROCEDURE DupVar () BEGIN "
      "DECLARE x INT; DECLARE x INT; END");
  EXPECT_FALSE(db_.Execute("CALL DupVar()").ok());
}

TEST_F(ProcedureTest, VariablesCoerceToDeclaredType) {
  MustExec(
      "CREATE PROCEDURE Coerce () BEGIN "
      "DECLARE x BIGINT; SET x = 1; "
      "RETURN SELECT Coerce.x AS x; END");
  Table t = MustExec("CALL Coerce()");
  EXPECT_EQ(t.rows()[0][0].type(), DataType::kBigInt);
}

TEST_F(ProcedureTest, ArgumentsCheckedAndCoerced) {
  MustExec(
      "CREATE PROCEDURE Echo (x INT) BEGIN RETURN SELECT Echo.x AS x; END");
  EXPECT_FALSE(db_.Execute("CALL Echo()").ok());
  EXPECT_FALSE(db_.Execute("CALL Echo(1, 2)").ok());
  Table t = MustExec("CALL Echo('41')");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 41);
}

TEST_F(ProcedureTest, ProceduresNotReferencableInFromClause) {
  // The paper's restriction: a stored procedure representing a federated
  // function cannot be combined with other function or table references.
  MustExec(
      "CREATE PROCEDURE NotATable () BEGIN RETURN SELECT 1 AS v; END");
  auto r = db_.Execute("SELECT * FROM TABLE (NotATable()) AS T");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ProcedureTest, DropProcedure) {
  MustExec("CREATE PROCEDURE Gone () BEGIN RETURN SELECT 1 AS v; END");
  MustExec("DROP PROCEDURE Gone");
  EXPECT_FALSE(db_.Execute("CALL Gone()").ok());
  EXPECT_FALSE(db_.Execute("DROP PROCEDURE Gone").ok());
}

TEST_F(ProcedureTest, DuplicateProcedureRejected) {
  MustExec("CREATE PROCEDURE Dup () BEGIN RETURN SELECT 1 AS v; END");
  EXPECT_FALSE(
      db_.Execute("CREATE PROCEDURE Dup () BEGIN RETURN SELECT 2 AS v; END")
          .ok());
}

TEST_F(ProcedureTest, ProcedureQueriesTablesAndFunctions) {
  MustExec(
      "CREATE FUNCTION Twox (x INT) RETURNS TABLE (v INT) "
      "LANGUAGE SQL RETURN SELECT Twox.x * 2");
  MustExec(
      "CREATE PROCEDURE UseBoth () BEGIN "
      "DECLARE c BIGINT; "
      "SET c = 0; "
      "EMIT SELECT D.v FROM nums AS N, TABLE (Twox(N.n)) AS D "
      "WHERE N.n <= 2 ORDER BY D.v; "
      "END");
  Table t = MustExec("CALL UseBoth()");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(t.rows()[1][0].AsInt(), 4);
}

TEST_F(ProcedureTest, NestedWhileLoops) {
  MustExec(
      "CREATE PROCEDURE Grid () BEGIN "
      "DECLARE i INT; DECLARE j INT; DECLARE c INT; "
      "SET i = 0; SET c = 0; "
      "WHILE i < 3 DO "
      "  SET i = i + 1; SET j = 0; "
      "  WHILE j < 4 DO SET j = j + 1; SET c = c + 1; END WHILE; "
      "END WHILE; "
      "RETURN SELECT Grid.c AS c; END");
  Table t = MustExec("CALL Grid()");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 12);
}

}  // namespace
}  // namespace fedflow::fdbs
