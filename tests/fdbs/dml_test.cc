// Tests of the write path: INSERT ... SELECT, UPDATE, DELETE — and the
// paper's read-only boundary: table functions and external tables cannot be
// written through.
#include <gtest/gtest.h>

#include "fdbs/database.h"

namespace fedflow::fdbs {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  DmlTest() {
    EXPECT_TRUE(db_.Execute("CREATE TABLE acc (id INT, balance INT)").ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO acc VALUES (1, 100), (2, 50), "
                            "(3, 0)")
                    .ok());
  }

  Table MustExec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? *r : Table();
  }

  int64_t Affected(const std::string& sql) {
    Table t = MustExec(sql);
    return t.num_rows() == 1 ? t.rows()[0][0].AsBigInt() : -1;
  }

  Database db_;
};

TEST_F(DmlTest, UpdateWithWhere) {
  EXPECT_EQ(Affected("UPDATE acc SET balance = balance + 10 WHERE id = 1"),
            1);
  Table t = MustExec("SELECT balance FROM acc WHERE id = 1");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 110);
}

TEST_F(DmlTest, UpdateAllRows) {
  EXPECT_EQ(Affected("UPDATE acc SET balance = 0"), 3);
  Table t = MustExec("SELECT SUM(balance) FROM acc");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 0);
}

TEST_F(DmlTest, UpdateSeesOldValuesOnRightHandSides) {
  // Swap-like semantics: both assignments read the OLD row.
  ASSERT_TRUE(db_.Execute("CREATE TABLE sw (a INT, b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO sw VALUES (1, 2)").ok());
  EXPECT_EQ(Affected("UPDATE sw SET a = b, b = a"), 1);
  Table t = MustExec("SELECT a, b FROM sw");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 1);
}

TEST_F(DmlTest, UpdateCoercesToColumnType) {
  EXPECT_EQ(Affected("UPDATE acc SET balance = '77' WHERE id = 2"), 1);
  Table t = MustExec("SELECT balance FROM acc WHERE id = 2");
  EXPECT_EQ(t.rows()[0][0].type(), DataType::kInt);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 77);
}

TEST_F(DmlTest, UpdateUnknownColumnFails) {
  EXPECT_FALSE(db_.Execute("UPDATE acc SET ghost = 1").ok());
}

TEST_F(DmlTest, UpdateUnknownTableFails) {
  EXPECT_FALSE(db_.Execute("UPDATE ghost SET x = 1").ok());
}

TEST_F(DmlTest, UpdateWhereNullMatchesNothing) {
  EXPECT_EQ(Affected("UPDATE acc SET balance = 1 WHERE NULL = 1"), 0);
}

TEST_F(DmlTest, DeleteWithWhere) {
  EXPECT_EQ(Affected("DELETE FROM acc WHERE balance = 0"), 1);
  EXPECT_EQ(MustExec("SELECT * FROM acc").num_rows(), 2u);
}

TEST_F(DmlTest, DeleteAll) {
  EXPECT_EQ(Affected("DELETE FROM acc"), 3);
  EXPECT_EQ(MustExec("SELECT * FROM acc").num_rows(), 0u);
  // Table still exists.
  EXPECT_TRUE(db_.Execute("INSERT INTO acc VALUES (9, 9)").ok());
}

TEST_F(DmlTest, InsertSelectCopiesRows) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE archive (id INT, balance INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO archive SELECT id, balance FROM acc "
                          "WHERE balance > 0")
                  .ok());
  EXPECT_EQ(MustExec("SELECT * FROM archive").num_rows(), 2u);
}

TEST_F(DmlTest, InsertSelectWithExpressionsAndCoercion) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE doubled (id INT, b BIGINT)").ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO doubled SELECT id, balance * 2 FROM acc").ok());
  Table t = MustExec("SELECT SUM(b) FROM doubled");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 300);
}

TEST_F(DmlTest, InsertSelectFromSelfReadsSnapshot) {
  ASSERT_TRUE(db_.Execute("INSERT INTO acc SELECT id + 10, balance FROM acc")
                  .ok());
  // Exactly doubled, not an infinite feedback loop.
  EXPECT_EQ(MustExec("SELECT * FROM acc").num_rows(), 6u);
}

TEST_F(DmlTest, InsertSelectArityMismatchFails) {
  EXPECT_FALSE(db_.Execute("INSERT INTO acc SELECT id FROM acc").ok());
}

TEST_F(DmlTest, TableFunctionsAreReadOnly) {
  // The paper: "UDTFs only support read access, i.e., we are not able to
  // propagate inserts, deletes, and updates."
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION f (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT f.x")
                  .ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO f VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("UPDATE f SET v = 1").ok());
  EXPECT_FALSE(db_.Execute("DELETE FROM f").ok());
}

TEST_F(DmlTest, ExternalTablesAreReadOnly) {
  ExternalTable ext;
  ext.name = "remote";
  ext.schema.AddColumn("v", DataType::kInt);
  ext.provider = [](ExecContext&) -> Result<Table> {
    Schema s;
    s.AddColumn("v", DataType::kInt);
    return Table(s);
  };
  ASSERT_TRUE(db_.catalog().RegisterExternalTable(std::move(ext)).ok());
  EXPECT_TRUE(db_.Execute("SELECT * FROM remote").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO remote VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("UPDATE remote SET v = 1").ok());
  EXPECT_FALSE(db_.Execute("DELETE FROM remote").ok());
}

}  // namespace
}  // namespace fedflow::fdbs
