// Columnar execution parity: the same query run with ExecContext::columnar
// on and off must produce identical tables, identical PipelineStats counts,
// and identical errors-or-success for every construct — vectorized filters,
// three-valued logic over NULLs, non-vectorizable fallbacks (CASE, function
// calls), casts, and the columnar lateral/cross-scan transports.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/column_batch.h"
#include "common/row_source.h"
#include "fdbs/database.h"
#include "fdbs/eval.h"
#include "sql/parser.h"

namespace fedflow::fdbs {
namespace {

/// Seq(n): rows 1..n in column v.
class SeqFunction : public TableFunction {
 public:
  SeqFunction() {
    params_ = {Column{"n", DataType::kInt}};
    schema_.AddColumn("v", DataType::kInt);
  }
  const std::string& name() const override {
    static const std::string kName = "Seq";
    return kName;
  }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }
  Result<Table> Invoke(const std::vector<Value>& args, ExecContext&) override {
    Table t(schema_);
    for (int i = 1; i <= args[0].AsInt(); ++i) {
      t.AppendRowUnchecked({Value::Int(i)});
    }
    return t;
  }
  std::vector<Column> params_;
  Schema schema_;
};

class ColumnarExecTest : public ::testing::Test {
 protected:
  ColumnarExecTest() {
    EXPECT_TRUE(db_.Execute("CREATE TABLE t (id INT, name VARCHAR, w DOUBLE)")
                    .ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES "
                            "(1, 'alpha', 0.5), (2, 'beta', 1.5), "
                            "(3, 'alpha', 2.5), (4, NULL, NULL), "
                            "(NULL, 'gamma', -0.5), (6, 'delta', 3.25)")
                    .ok());
    EXPECT_TRUE(
        db_.catalog().RegisterTableFunction(std::make_shared<SeqFunction>())
            .ok());
  }

  Result<Table> Run(const std::string& sql, bool columnar,
                    PipelineStats* stats) {
    ExecContext ctx;
    ctx.columnar = columnar;
    ctx.pipeline_stats = stats;
    return db_.Execute(sql, ctx);
  }

  /// Runs `sql` both ways and requires identical outcomes: same status code,
  /// same table (types and payloads), same rows/batches crossing operator
  /// boundaries. Returns the columnar result for extra assertions.
  Result<Table> ExpectParity(const std::string& sql) {
    PipelineStats row_stats;
    PipelineStats col_stats;
    Result<Table> row = Run(sql, /*columnar=*/false, &row_stats);
    Result<Table> col = Run(sql, /*columnar=*/true, &col_stats);
    EXPECT_EQ(row.ok(), col.ok())
        << sql << "\n row: " << row.status() << "\n col: " << col.status();
    if (!row.ok() || !col.ok()) {
      if (!row.ok() && !col.ok()) {
        EXPECT_EQ(row.status().code(), col.status().code()) << sql;
      }
      return col;
    }
    EXPECT_EQ(row->num_rows(), col->num_rows()) << sql;
    EXPECT_EQ(row->schema().num_columns(), col->schema().num_columns()) << sql;
    for (size_t c = 0; c < row->schema().num_columns(); ++c) {
      EXPECT_EQ(row->schema().columns()[c].name,
                col->schema().columns()[c].name)
          << sql;
    }
    for (size_t r = 0; r < row->num_rows(); ++r) {
      for (size_t c = 0; c < row->schema().num_columns(); ++c) {
        const Value& a = row->rows()[r][c];
        const Value& b = col->rows()[r][c];
        EXPECT_EQ(a.type(), b.type())
            << sql << " at (" << r << "," << c << ")";
        EXPECT_EQ(a.ToString(), b.ToString())
            << sql << " at (" << r << "," << c << ")";
      }
    }
    EXPECT_EQ(row_stats.rows_emitted, col_stats.rows_emitted) << sql;
    EXPECT_EQ(row_stats.batches_emitted, col_stats.batches_emitted) << sql;
    EXPECT_EQ(row_stats.peak_resident_rows, col_stats.peak_resident_rows)
        << sql;
    return col;
  }

  Database db_;
};

TEST_F(ColumnarExecTest, VectorizedComparisonFilters) {
  ExpectParity("SELECT id FROM t WHERE id > 2");
  ExpectParity("SELECT id FROM t WHERE id >= 2 AND id <= 4");
  ExpectParity("SELECT name FROM t WHERE name = 'alpha'");
  ExpectParity("SELECT name FROM t WHERE name <> 'alpha'");
  ExpectParity("SELECT w FROM t WHERE w < 2.0");
  // Mixed int/double comparison promotes to double in both paths.
  ExpectParity("SELECT id FROM t WHERE id > 1.5");
}

TEST_F(ColumnarExecTest, NullSemanticsInFilters) {
  // NULL comparisons are UNKNOWN and the row is dropped, never kept.
  ExpectParity("SELECT id FROM t WHERE id > 0");
  ExpectParity("SELECT id FROM t WHERE name = 'gamma'");
  ExpectParity("SELECT id FROM t WHERE id IS NULL");
  ExpectParity("SELECT id FROM t WHERE id IS NOT NULL");
  ExpectParity("SELECT id FROM t WHERE w IS NULL OR w > 1.0");
}

TEST_F(ColumnarExecTest, ThreeValuedAndOr) {
  // NULL AND FALSE = FALSE (dropped), NULL OR TRUE = TRUE (kept): the
  // vectorized sub-selection evaluation must reproduce the exact Kleene
  // table, not just "null means drop".
  ExpectParity("SELECT id FROM t WHERE id > 0 OR name = 'gamma'");
  ExpectParity("SELECT id FROM t WHERE id > 0 AND name <> 'beta'");
  ExpectParity("SELECT id FROM t WHERE NOT (id > 2)");
  ExpectParity("SELECT id FROM t WHERE id % 2 = 0 OR w > 2.0");
}

TEST_F(ColumnarExecTest, ArithmeticInPredicates) {
  ExpectParity("SELECT id FROM t WHERE id * 2 + 1 > 5");
  ExpectParity("SELECT id FROM t WHERE id % 2 = 1");
  ExpectParity("SELECT id FROM t WHERE -id < -2");
  ExpectParity("SELECT id FROM t WHERE w * 2.0 > id");
  // Integer overflow promotion: id * big constant exceeds int32.
  ExpectParity("SELECT id FROM t WHERE id * 1000000000 > 2500000000");
}

TEST_F(ColumnarExecTest, ErrorsSurfaceInBothPaths) {
  // Division by zero inside a predicate errors in both paths with the same
  // status code (the failing row may differ; see DESIGN.md).
  ExpectParity("SELECT id FROM t WHERE id / 0 > 1");
  ExpectParity("SELECT id FROM t WHERE id % 0 = 1");
  // Varchar in a numeric context errors in both paths.
  ExpectParity("SELECT id FROM t WHERE name + 1 > 0");
}

TEST_F(ColumnarExecTest, NonVectorizableFallbacks) {
  // CASE and LIKE-with-computed-pattern compile to the row filter; the
  // columnar transport must still work end to end around it.
  ExpectParity(
      "SELECT id FROM t WHERE CASE WHEN id > 2 THEN 1 ELSE 0 END = 1");
  ExpectParity("SELECT name FROM t WHERE name LIKE 'a%'");
  ExpectParity("SELECT name FROM t WHERE UPPER(name) = 'ALPHA'");
}

TEST_F(ColumnarExecTest, LateralChainParity) {
  ExpectParity(
      "SELECT a.v, b.v FROM TABLE (Seq(5)) AS a, TABLE (Seq(a.v)) AS b "
      "WHERE b.v % 2 = 1");
  ExpectParity(
      "SELECT a.v, b.v FROM TABLE (Seq(4)) AS a, TABLE (Seq(3)) AS b "
      "WHERE a.v > b.v");
}

TEST_F(ColumnarExecTest, ProjectionAndExpressionsParity) {
  ExpectParity("SELECT id * 2, name FROM t WHERE id > 1");
  ExpectParity("SELECT * FROM t WHERE id >= 1");
  ExpectParity("SELECT id FROM t WHERE id > 0 ORDER BY id DESC");
  ExpectParity("SELECT DISTINCT name FROM t WHERE name IS NOT NULL");
  ExpectParity("SELECT COUNT(*) FROM t WHERE id > 1");
  ExpectParity("SELECT id FROM t WHERE id > 0 LIMIT 2");
}

TEST_F(ColumnarExecTest, ColumnarRecordsColumnarBatches) {
  PipelineStats stats;
  ASSERT_TRUE(Run("SELECT id FROM t WHERE id > 2", true, &stats).ok());
  EXPECT_GT(stats.columnar_batches, 0u);
  EXPECT_FALSE(stats.filter_stats.empty());
  EXPECT_EQ(stats.filter_stats[0].rows_in, 6u);
  EXPECT_EQ(stats.filter_stats[0].rows_kept, 3u);

  PipelineStats row_stats;
  ASSERT_TRUE(Run("SELECT id FROM t WHERE id > 2", false, &row_stats).ok());
  EXPECT_EQ(row_stats.columnar_batches, 0u);
}

// ---- VectorPredicate unit coverage (compile + selection semantics) ----

class VectorPredicateTest : public ::testing::Test {
 protected:
  VectorPredicateTest() {
    schema_.AddColumn("id", DataType::kInt);
    schema_.AddColumn("s", DataType::kVarchar);
    scope_.AddBinding("t", &schema_, /*offset=*/0);
  }

  /// Compiles `expr_sql` against a one-table scope over (id INT, s VARCHAR).
  std::optional<VectorPredicate> Compile(const std::string& expr_sql) {
    auto parsed = sql::ParseExpression(expr_sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    if (!parsed.ok()) return std::nullopt;
    expr_ = *parsed;
    return VectorPredicate::Compile(*expr_, scope_);
  }

  ColumnBatch MakeBatch() {
    return ColumnBatch::FromRows(
        schema_, {{Value::Int(1), Value::Varchar("aa")},
                  {Value::Int(2), Value::Varchar("ab")},
                  {Value::Null(), Value::Varchar("bb")},
                  {Value::Int(4), Value::Null()}});
  }

  Schema schema_;
  RowScope scope_;
  sql::ExprPtr expr_;
};

TEST_F(VectorPredicateTest, SelectsMatchingRows) {
  auto pred = Compile("id >= 2");
  ASSERT_TRUE(pred.has_value());
  ColumnBatch batch = MakeBatch();
  std::vector<uint32_t> sel = {0, 1, 2, 3};
  ASSERT_TRUE(pred->FilterSelection(batch, &sel).ok());
  EXPECT_EQ(sel, (std::vector<uint32_t>{1, 3}));
}

TEST_F(VectorPredicateTest, LikeOnVarchar) {
  auto pred = Compile("s LIKE 'a%'");
  ASSERT_TRUE(pred.has_value());
  ColumnBatch batch = MakeBatch();
  std::vector<uint32_t> sel = {0, 1, 2, 3};
  ASSERT_TRUE(pred->FilterSelection(batch, &sel).ok());
  EXPECT_EQ(sel, (std::vector<uint32_t>{0, 1}));
}

TEST_F(VectorPredicateTest, RespectsIncomingSelection) {
  auto pred = Compile("id >= 1");
  ASSERT_TRUE(pred.has_value());
  ColumnBatch batch = MakeBatch();
  std::vector<uint32_t> sel = {3, 1};  // pre-filtered, order preserved
  ASSERT_TRUE(pred->FilterSelection(batch, &sel).ok());
  EXPECT_EQ(sel, (std::vector<uint32_t>{3, 1}));
}

TEST_F(VectorPredicateTest, NonVectorizableReturnsNullopt) {
  EXPECT_FALSE(Compile("UPPER(s) = 'AA'").has_value());
  EXPECT_FALSE(Compile("CASE WHEN id > 1 THEN 1 ELSE 0 END = 1").has_value());
}

TEST_F(VectorPredicateTest, UnknownColumnReturnsNullopt) {
  EXPECT_FALSE(Compile("missing > 1").has_value());
}

}  // namespace
}  // namespace fedflow::fdbs
