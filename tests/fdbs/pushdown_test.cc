// Predicate pushdown: WHERE conjuncts are applied as soon as their FROM
// items have produced columns, pruning intermediate rows and — observably —
// lateral table-function invocations. Results must be identical with the
// optimization on and off.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fdbs/database.h"

namespace fedflow::fdbs {
namespace {

/// Counts invocations; Rows(n) yields rows 1..n in column v.
class CountingRows : public TableFunction {
 public:
  CountingRows() {
    params_ = {Column{"n", DataType::kInt}};
    schema_.AddColumn("v", DataType::kInt);
  }
  const std::string& name() const override {
    static const std::string kName = "Rows";
    return kName;
  }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }
  Result<Table> Invoke(const std::vector<Value>& args, ExecContext&) override {
    ++invocations;
    Table t(schema_);
    for (int i = 1; i <= args[0].AsInt(); ++i) {
      t.AppendRowUnchecked({Value::Int(i)});
    }
    return t;
  }
  std::vector<Column> params_;
  Schema schema_;
  int invocations = 0;
};

class PushdownTest : public ::testing::Test {
 protected:
  PushdownTest() {
    EXPECT_TRUE(db_.Execute("CREATE TABLE t (id INT, tag VARCHAR)").ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'keep'), (2, 'drop'), "
                            "(3, 'keep'), (4, 'drop')")
                    .ok());
    fn_ = std::make_shared<CountingRows>();
    EXPECT_TRUE(db_.catalog().RegisterTableFunction(fn_).ok());
  }

  Result<Table> Run(const std::string& sql, bool pushdown) {
    ExecContext ctx;
    ctx.db = &db_;
    ctx.predicate_pushdown = pushdown;
    return db_.Execute(sql, ctx);
  }

  Database db_;
  std::shared_ptr<CountingRows> fn_;
};

TEST_F(PushdownTest, PrunesLateralFunctionInvocations) {
  const std::string sql =
      "SELECT t.id, F.v FROM t, TABLE (Rows(t.id)) AS F "
      "WHERE t.tag = 'keep'";
  fn_->invocations = 0;
  auto with = Run(sql, true);
  ASSERT_TRUE(with.ok()) << with.status();
  // Only the two 'keep' rows reach the function.
  EXPECT_EQ(fn_->invocations, 2);

  fn_->invocations = 0;
  auto without = Run(sql, false);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(fn_->invocations, 4);

  EXPECT_TRUE(Table::SameRowsAnyOrder(*with, *without));
}

TEST_F(PushdownTest, ConjunctsSplitAcrossItems) {
  const std::string sql =
      "SELECT t.id, F.v FROM t, TABLE (Rows(t.id)) AS F "
      "WHERE t.tag = 'keep' AND F.v > 1";
  auto with = Run(sql, true);
  auto without = Run(sql, false);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_TRUE(Table::SameRowsAnyOrder(*with, *without));
  // keep rows: id 1 (v in {1}), id 3 (v in {1,2,3}); F.v > 1 leaves 2 rows.
  EXPECT_EQ(with->num_rows(), 2u);
}

TEST_F(PushdownTest, ConstantFalsePredicateShortCircuitsEverything) {
  fn_->invocations = 0;
  auto r = Run("SELECT F.v FROM t, TABLE (Rows(t.id)) AS F WHERE 1 = 0",
               true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
  // The constant-false conjunct empties the row set before any item runs.
  EXPECT_EQ(fn_->invocations, 0);
}

TEST_F(PushdownTest, AmbiguousUnqualifiedRefStillRejected) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t2 (id INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t2 VALUES (1)").ok());
  // `id` exists in both t and t2: must error even though, mid-chain, only
  // one of them would be visible.
  auto r = Run("SELECT 1 FROM t, t2 WHERE id = 1", true);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(PushdownTest, UnknownColumnStillRejected) {
  auto r = Run("SELECT 1 FROM t WHERE ghost = 1", true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(PushdownTest, OrPredicatesAreNotSplit) {
  // OR must not be decomposed; both branches evaluated as one predicate.
  const std::string sql =
      "SELECT t.id FROM t WHERE t.tag = 'keep' OR t.id = 2";
  auto with = Run(sql, true);
  auto without = Run(sql, false);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_EQ(with->num_rows(), 3u);
  EXPECT_TRUE(Table::SameRowsAnyOrder(*with, *without));
}

TEST_F(PushdownTest, RandomizedEquivalenceSweep) {
  // Random predicates over a two-table join: pushdown on/off must agree.
  Rng rng(2024);
  ASSERT_TRUE(db_.Execute("CREATE TABLE u (k INT, w INT)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO u VALUES (" +
                            std::to_string(rng.Uniform(1, 4)) + ", " +
                            std::to_string(rng.Uniform(0, 50)) + ")")
                    .ok());
  }
  const char* predicates[] = {
      "t.id = u.k",
      "t.id = u.k AND u.w > 25",
      "t.tag = 'keep' AND t.id = u.k AND u.w % 2 = 0",
      "t.id < u.k OR u.w > 40",
      "u.w BETWEEN 10 AND 30 AND t.id IN (1, 3)",
  };
  for (const char* pred : predicates) {
    std::string sql =
        std::string("SELECT t.id, u.k, u.w FROM t, u WHERE ") + pred;
    auto with = Run(sql, true);
    auto without = Run(sql, false);
    ASSERT_TRUE(with.ok()) << sql << ": " << with.status();
    ASSERT_TRUE(without.ok()) << sql << ": " << without.status();
    EXPECT_TRUE(Table::SameRowsAnyOrder(*with, *without)) << sql;
  }
}

TEST_F(PushdownTest, GroupByAndOrderByUnaffected) {
  const std::string sql =
      "SELECT t.tag, COUNT(*) AS n FROM t, TABLE (Rows(t.id)) AS F "
      "WHERE F.v <= 2 GROUP BY t.tag ORDER BY t.tag";
  auto with = Run(sql, true);
  auto without = Run(sql, false);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_TRUE(*with == *without);
}

}  // namespace
}  // namespace fedflow::fdbs
