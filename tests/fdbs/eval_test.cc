#include "fdbs/eval.h"

#include <gtest/gtest.h>

#include "fdbs/builtins.h"
#include "fdbs/catalog.h"
#include "sql/parser.h"

namespace fedflow::fdbs {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    (void)RegisterBuiltins(&catalog_);
    schema_.AddColumn("a", DataType::kInt);
    schema_.AddColumn("b", DataType::kVarchar);
    schema_.AddColumn("c", DataType::kDouble);
    scope_.AddBinding("t", &schema_, 0);
    row_ = {Value::Int(5), Value::Varchar("hi"), Value::Double(2.5)};
    scope_.set_row(&row_);
  }

  Result<Value> Eval(const std::string& text) {
    auto expr = sql::ParseExpression(text);
    if (!expr.ok()) return expr.status();
    Evaluator eval(&catalog_);
    return eval.Eval(**expr, scope_);
  }

  Value MustEval(const std::string& text) {
    auto v = Eval(text);
    EXPECT_TRUE(v.ok()) << text << " -> " << v.status();
    return v.ok() ? *v : Value::Null();
  }

  Catalog catalog_;
  Schema schema_;
  Row row_;
  RowScope scope_;
};

TEST_F(EvalTest, ColumnResolutionQualifiedAndBare) {
  EXPECT_EQ(MustEval("a").AsInt(), 5);
  EXPECT_EQ(MustEval("t.a").AsInt(), 5);
  EXPECT_EQ(MustEval("T.B").AsVarchar(), "hi");
  EXPECT_FALSE(Eval("t.zz").ok());
  EXPECT_FALSE(Eval("u.a").ok());
}

TEST_F(EvalTest, ArithmeticPromotion) {
  EXPECT_EQ(MustEval("a + 1").AsInt(), 6);
  EXPECT_EQ(MustEval("a + 1").type(), DataType::kInt);
  EXPECT_DOUBLE_EQ(MustEval("a + c").AsDouble(), 7.5);
  EXPECT_EQ(MustEval("a * 2 - 3").AsInt(), 7);
  EXPECT_EQ(MustEval("7 / 2").AsInt(), 3);   // integer division
  EXPECT_DOUBLE_EQ(MustEval("7 / 2.0").AsDouble(), 3.5);
  EXPECT_EQ(MustEval("7 % 3").AsInt(), 1);
}

TEST_F(EvalTest, IntOverflowWidensToBigInt) {
  Value v = MustEval("2000000000 + 2000000000");
  EXPECT_EQ(v.type(), DataType::kBigInt);
  EXPECT_EQ(v.AsBigInt(), 4000000000LL);
}

TEST_F(EvalTest, DivisionByZeroFails) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("1 % 0").ok());
  EXPECT_FALSE(Eval("1.0 / 0.0").ok());
}

TEST_F(EvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(MustEval("a + NULL").is_null());
  EXPECT_TRUE(MustEval("NULL * 2").is_null());
  EXPECT_TRUE(MustEval("-(NULL)").is_null());
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(MustEval("a = 5").AsBool());
  EXPECT_TRUE(MustEval("a <> 4").AsBool());
  EXPECT_TRUE(MustEval("a >= 5").AsBool());
  EXPECT_FALSE(MustEval("a < 5").AsBool());
  EXPECT_TRUE(MustEval("b = 'hi'").AsBool());
  EXPECT_TRUE(MustEval("b < 'hj'").AsBool());
}

TEST_F(EvalTest, ComparisonWithNullIsUnknown) {
  EXPECT_TRUE(MustEval("a = NULL").is_null());
  EXPECT_TRUE(MustEval("NULL <> NULL").is_null());
}

TEST_F(EvalTest, ThreeValuedLogicTruthTable) {
  // TRUE AND NULL = NULL, FALSE AND NULL = FALSE,
  // TRUE OR NULL = TRUE, FALSE OR NULL = NULL.
  EXPECT_TRUE(MustEval("TRUE AND (a = NULL)").is_null());
  EXPECT_FALSE(MustEval("FALSE AND (a = NULL)").AsBool());
  EXPECT_TRUE(MustEval("TRUE OR (a = NULL)").AsBool());
  EXPECT_TRUE(MustEval("FALSE OR (a = NULL)").is_null());
  EXPECT_TRUE(MustEval("NOT (a = NULL)").is_null());
}

TEST_F(EvalTest, ShortCircuitSkipsErrors) {
  // The right operand would divide by zero; short-circuit avoids it.
  EXPECT_FALSE(MustEval("FALSE AND (1 / 0 = 1)").AsBool());
  EXPECT_TRUE(MustEval("TRUE OR (1 / 0 = 1)").AsBool());
}

TEST_F(EvalTest, IsNullOperators) {
  EXPECT_FALSE(MustEval("a IS NULL").AsBool());
  EXPECT_TRUE(MustEval("a IS NOT NULL").AsBool());
  EXPECT_TRUE(MustEval("NULL IS NULL").AsBool());
}

TEST_F(EvalTest, ConcatOperator) {
  EXPECT_EQ(MustEval("b || '!'").AsVarchar(), "hi!");
  EXPECT_EQ(MustEval("a || b").AsVarchar(), "5hi");
  EXPECT_TRUE(MustEval("b || NULL").is_null());
}

TEST_F(EvalTest, ScalarFunctionCalls) {
  EXPECT_EQ(MustEval("UPPER(b)").AsVarchar(), "HI");
  EXPECT_EQ(MustEval("LENGTH(b)").AsInt(), 2);
  EXPECT_EQ(MustEval("BIGINT(a)").type(), DataType::kBigInt);
  EXPECT_EQ(MustEval("COALESCE(NULL, NULL, a)").AsInt(), 5);
  EXPECT_EQ(MustEval("ABS(-3)").AsInt(), 3);
  EXPECT_EQ(MustEval("MOD(9, 4)").AsBigInt(), 1);
  EXPECT_EQ(MustEval("SUBSTR(b, 2, 1)").AsVarchar(), "i");
  EXPECT_EQ(MustEval("CONCAT(b, '-', a)").AsVarchar(), "hi-5");
  EXPECT_EQ(MustEval("ROUND(2.6)").AsBigInt(), 3);
}

TEST_F(EvalTest, UnknownFunctionFails) {
  auto v = Eval("NOPE(1)");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST_F(EvalTest, ArityChecked) {
  EXPECT_FALSE(Eval("UPPER(a, b)").ok());
  EXPECT_FALSE(Eval("MOD(1)").ok());
}

TEST_F(EvalTest, AggregateOutsideGroupingRejected) {
  auto v = Eval("COUNT(*)");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvalTest, ParamScopeResolution) {
  ParamScope params;
  params.function_name = "MyFunc";
  params.params = {{"P", Value::Int(99)}};
  scope_.set_params(&params);
  EXPECT_EQ(MustEval("MyFunc.P").AsInt(), 99);
  EXPECT_EQ(MustEval("P").AsInt(), 99);
  // Column names shadow parameters on unqualified lookup.
  EXPECT_EQ(MustEval("a").AsInt(), 5);
}

TEST_F(EvalTest, TypeInference) {
  Evaluator eval(&catalog_);
  auto infer = [&](const std::string& text) {
    auto expr = sql::ParseExpression(text);
    EXPECT_TRUE(expr.ok());
    auto t = eval.InferType(**expr, scope_);
    EXPECT_TRUE(t.ok()) << text;
    return t.ok() ? *t : DataType::kNull;
  };
  EXPECT_EQ(infer("a"), DataType::kInt);
  EXPECT_EQ(infer("a + c"), DataType::kDouble);
  EXPECT_EQ(infer("a > 1"), DataType::kBool);
  EXPECT_EQ(infer("b || 'x'"), DataType::kVarchar);
  EXPECT_EQ(infer("BIGINT(a)"), DataType::kBigInt);
  EXPECT_EQ(infer("COUNT(*)"), DataType::kBigInt);
  EXPECT_EQ(infer("AVG(a)"), DataType::kDouble);
  EXPECT_EQ(infer("SUM(c)"), DataType::kDouble);
  EXPECT_EQ(infer("SUM(a)"), DataType::kBigInt);
  EXPECT_EQ(infer("MIN(b)"), DataType::kVarchar);
  EXPECT_EQ(infer("a IS NULL"), DataType::kBool);
}

TEST_F(EvalTest, VisibilityMaskHidesBindings) {
  std::vector<bool> mask = {false};
  scope_.set_visibility_mask(&mask);
  EXPECT_FALSE(Eval("t.a").ok());
  mask[0] = true;
  EXPECT_EQ(MustEval("t.a").AsInt(), 5);
  scope_.set_visibility_mask(nullptr);
}

TEST(ContainsAggregateTest, DetectsNestedAggregates) {
  auto has = [](const std::string& text) {
    auto e = sql::ParseExpression(text);
    EXPECT_TRUE(e.ok());
    return Evaluator::ContainsAggregate(**e);
  };
  EXPECT_TRUE(has("COUNT(*)"));
  EXPECT_TRUE(has("1 + SUM(x)"));
  EXPECT_TRUE(has("UPPER(VARCHAR(MAX(x)))"));
  EXPECT_FALSE(has("UPPER(x) || 'a'"));
  EXPECT_FALSE(has("a + b * c"));
}

TEST(PromoteNumericTest, Lattice) {
  EXPECT_EQ(PromoteNumeric(DataType::kInt, DataType::kInt), DataType::kInt);
  EXPECT_EQ(PromoteNumeric(DataType::kInt, DataType::kBigInt),
            DataType::kBigInt);
  EXPECT_EQ(PromoteNumeric(DataType::kBigInt, DataType::kDouble),
            DataType::kDouble);
  EXPECT_EQ(PromoteNumeric(DataType::kDouble, DataType::kInt),
            DataType::kDouble);
}

}  // namespace
}  // namespace fedflow::fdbs
