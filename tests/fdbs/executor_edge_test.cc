// Edge cases of the SELECT executor: empty inputs, NULL grouping keys,
// mixed-type ordering, wide lateral chains, name resolution corners.
#include <gtest/gtest.h>

#include "fdbs/database.h"
#include "fdbs/executor.h"
#include "sql/parser.h"

namespace fedflow::fdbs {
namespace {

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  Table MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? *r : Table();
  }

  Database db_;
};

TEST_F(ExecutorEdgeTest, SelectFromEmptyTable) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE e (x INT, y VARCHAR)").ok());
  EXPECT_EQ(MustQuery("SELECT * FROM e").num_rows(), 0u);
  EXPECT_EQ(MustQuery("SELECT x FROM e WHERE x > 0").num_rows(), 0u);
  EXPECT_EQ(MustQuery("SELECT x FROM e ORDER BY x LIMIT 5").num_rows(), 0u);
  // Schema still typed correctly on empty results.
  Table t = MustQuery("SELECT x, y FROM e");
  EXPECT_EQ(t.schema().column(0).type, DataType::kInt);
  EXPECT_EQ(t.schema().column(1).type, DataType::kVarchar);
}

TEST_F(ExecutorEdgeTest, GroupByNullKeyFormsItsOwnGroup) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE g (k VARCHAR, v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO g VALUES ('a', 1), (NULL, 2), "
                          "(NULL, 3), ('a', 4)")
                  .ok());
  Table t = MustQuery("SELECT k, SUM(v) AS s FROM g GROUP BY k ORDER BY s");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][1].AsBigInt(), 5);  // 'a' group
  EXPECT_EQ(t.rows()[1][1].AsBigInt(), 5);  // NULL group: 2+3
}

TEST_F(ExecutorEdgeTest, OrderByMixedIncomparableTypesFails) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE m (x VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO m VALUES ('a'), ('b')").ok());
  // Sorting a VARCHAR column against an INT expression is a type error.
  auto r = db_.Execute("SELECT x FROM m ORDER BY x + 0");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorEdgeTest, SelfJoinWithAliases) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE s (id INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO s VALUES (1), (2), (3)").ok());
  Table t = MustQuery(
      "SELECT a.id, b.id FROM s AS a, s AS b WHERE a.id < b.id");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorEdgeTest, ThreeWayJoin) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE j1 (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE j2 (b INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE j3 (c INT)").ok());
  for (const char* ins :
       {"INSERT INTO j1 VALUES (1), (2)", "INSERT INTO j2 VALUES (1), (2)",
        "INSERT INTO j3 VALUES (1), (2)"}) {
    ASSERT_TRUE(db_.Execute(ins).ok());
  }
  Table t = MustQuery(
      "SELECT a, b, c FROM j1, j2, j3 WHERE a = b AND b = c ORDER BY a");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[1][2].AsInt(), 2);
}

TEST_F(ExecutorEdgeTest, HavingWithoutGroupByActsOnSingleGroup) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE h (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO h VALUES (1), (2)").ok());
  EXPECT_EQ(MustQuery("SELECT SUM(v) FROM h HAVING COUNT(*) > 1").num_rows(),
            1u);
  EXPECT_EQ(MustQuery("SELECT SUM(v) FROM h HAVING COUNT(*) > 5").num_rows(),
            0u);
}

TEST_F(ExecutorEdgeTest, AggregateInsideArithmetic) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE aa (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO aa VALUES (2), (4)").ok());
  Table t = MustQuery("SELECT SUM(v) * 10 + COUNT(*) AS z FROM aa");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 62);
}

TEST_F(ExecutorEdgeTest, SameAggregateExprReusedAcrossItems) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE r (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO r VALUES (1), (3)").ok());
  Table t = MustQuery(
      "SELECT SUM(v) AS a, SUM(v) AS b, AVG(v) AS c FROM r");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 4);
  EXPECT_EQ(t.rows()[0][1].AsBigInt(), 4);
  EXPECT_DOUBLE_EQ(t.rows()[0][2].AsDouble(), 2.0);
}

TEST_F(ExecutorEdgeTest, MinMaxOnStrings) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE st (s VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO st VALUES ('pear'), ('apple'), "
                          "('quince')")
                  .ok());
  Table t = MustQuery("SELECT MIN(s), MAX(s) FROM st");
  EXPECT_EQ(t.rows()[0][0].AsVarchar(), "apple");
  EXPECT_EQ(t.rows()[0][1].AsVarchar(), "quince");
}

TEST_F(ExecutorEdgeTest, InsertWithExpressions) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE ie (v INT, s VARCHAR)").ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO ie VALUES (2 + 3 * 4, 'a' || 'b')").ok());
  Table t = MustQuery("SELECT * FROM ie");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 14);
  EXPECT_EQ(t.rows()[0][1].AsVarchar(), "ab");
}

TEST_F(ExecutorEdgeTest, WhereOnNonBooleanNumericIsTruthy) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE w (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO w VALUES (0), (1), (2)").ok());
  // Lenient truthiness: nonzero passes (documented engine behavior).
  auto r = db_.Execute("SELECT v FROM w WHERE v");
  ASSERT_TRUE(r.ok());
  // The executor only keeps rows evaluating to boolean TRUE; numeric
  // conditions are not booleans, so nothing passes.
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST_F(ExecutorEdgeTest, QualifiedStarPicksOneBinding) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE q1 (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE q2 (b INT, c INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO q1 VALUES (1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO q2 VALUES (2, 3)").ok());
  Table t = MustQuery("SELECT q2.* FROM q1, q2");
  EXPECT_EQ(t.schema().num_columns(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 2);
  EXPECT_FALSE(db_.Execute("SELECT nope.* FROM q1, q2").ok());
}

TEST_F(ExecutorEdgeTest, UnqualifiedAmbiguousColumnRejected) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE a1 (x INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE a2 (x INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO a1 VALUES (1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO a2 VALUES (2)").ok());
  auto r = db_.Execute("SELECT x FROM a1, a2");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(ExecutorEdgeTest, OrderByOrdinalPositionNotSupportedButAliasIs) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE ob (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO ob VALUES (2), (1)").ok());
  // Ordinal ORDER BY 1 sorts by the constant 1 (no-op) — rows keep insertion
  // order under stable sort.
  Table t = MustQuery("SELECT v AS sorted FROM ob ORDER BY sorted");
  EXPECT_EQ(t.rows()[0][0].AsInt(), 1);
}

TEST_F(ExecutorEdgeTest, LimitLargerThanIntMaxRows) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE lt (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO lt VALUES (1)").ok());
  EXPECT_EQ(MustQuery("SELECT v FROM lt LIMIT 2000000000").num_rows(), 1u);
}

TEST_F(ExecutorEdgeTest, DeepLateralChain) {
  // f(x) -> x+1, chained eight times through SQL functions.
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION inc (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT inc.x + 1")
                  .ok());
  Table t = MustQuery(
      "SELECT h.v FROM TABLE (inc(0)) AS a, TABLE (inc(a.v)) AS b, "
      "TABLE (inc(b.v)) AS c, TABLE (inc(c.v)) AS d, TABLE (inc(d.v)) AS e, "
      "TABLE (inc(e.v)) AS f, TABLE (inc(f.v)) AS g, TABLE (inc(g.v)) AS h");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 8);
}

TEST_F(ExecutorEdgeTest, CountDistinctViaSubFunction) {
  // No COUNT(DISTINCT ...) — but DISTINCT + COUNT composes through a
  // SQL-bodied function.
  ASSERT_TRUE(db_.Execute("CREATE TABLE cd (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO cd VALUES (1), (1), (2)").ok());
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION distinct_v () RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT DISTINCT v FROM cd")
                  .ok());
  Table t = MustQuery("SELECT COUNT(*) FROM TABLE (distinct_v()) AS d");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 2);
}

// --- LateralOrder planner edge cases (direct static calls; item schemas
// are only consulted for unqualified column references, so qualified-only
// statements may pass nullptrs).

std::vector<size_t> MustOrder(const std::string& sql) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status();
  std::vector<const Schema*> schemas(stmt->from.size(), nullptr);
  auto order = SelectExecutor::LateralOrder(*stmt, schemas);
  EXPECT_TRUE(order.ok()) << sql << " -> " << order.status();
  return order.ok() ? *order : std::vector<size_t>{};
}

TEST_F(ExecutorEdgeTest, LateralOrderSelfReferenceImposesNoOrdering) {
  // f's argument qualifier names f's own alias. A FROM item cannot depend on
  // itself (a row is not in scope while it is being produced), so the
  // self-reference is ignored rather than reported as a one-node cycle.
  EXPECT_EQ(MustOrder("SELECT * FROM TABLE (f(a.v)) AS a"),
            (std::vector<size_t>{0}));
  // Same with a sibling present: only the cross-item edge b -> a counts.
  EXPECT_EQ(MustOrder("SELECT * FROM TABLE (f(b.v + b.w)) AS b, "
                      "TABLE (g(b.v)) AS c"),
            (std::vector<size_t>{0, 1}));
}

TEST_F(ExecutorEdgeTest, LateralOrderTwoNodeCycleRejected) {
  auto stmt = sql::ParseSelect(
      "SELECT * FROM TABLE (f(b.v)) AS a, TABLE (g(a.v)) AS b");
  ASSERT_TRUE(stmt.ok());
  std::vector<const Schema*> schemas(stmt->from.size(), nullptr);
  auto order = SelectExecutor::LateralOrder(*stmt, schemas);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(order.status().message().find("cyclic dependency"),
            std::string::npos);
}

TEST_F(ExecutorEdgeTest, LateralOrderCycleRejectedEndToEnd) {
  // The same structure through the full executor: the error must surface to
  // the user, matching the paper's point that the UDTF approach cannot
  // express cyclic mappings.
  ASSERT_TRUE(db_.Execute(
                    "CREATE FUNCTION inc2 (x INT) RETURNS TABLE (v INT) "
                    "LANGUAGE SQL RETURN SELECT inc2.x + 1")
                  .ok());
  auto r = db_.Execute(
      "SELECT * FROM TABLE (inc2(b.v)) AS a, TABLE (inc2(a.v)) AS b");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cyclic"), std::string::npos);
}

TEST_F(ExecutorEdgeTest, LateralOrderIndependentItemsKeepTextualOrder) {
  // No dependencies at all: the stable sort must preserve DB2's documented
  // left-to-right FROM processing.
  EXPECT_EQ(MustOrder("SELECT * FROM t1, t2, t3, t4"),
            (std::vector<size_t>{0, 1, 2, 3}));
  // Mixed: only the constrained pair reorders; independent items stay put
  // and ready items are picked lowest-original-index first.
  EXPECT_EQ(MustOrder("SELECT * FROM TABLE (f(c.v)) AS a, t2 AS b, t3 AS c"),
            (std::vector<size_t>{1, 2, 0}));
}

TEST_F(ExecutorEdgeTest, LateralOrderParameterQualifiersImposeNoOrdering) {
  // A qualifier matching no FROM alias is an enclosing-function parameter
  // reference; it must not create an edge (and must not error).
  EXPECT_EQ(MustOrder("SELECT * FROM TABLE (f(outer_fn.p)) AS a, t AS b"),
            (std::vector<size_t>{0, 1}));
}

TEST_F(ExecutorEdgeTest, WhereTrueKeepsAll) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE wt (v INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO wt VALUES (1), (2)").ok());
  EXPECT_EQ(MustQuery("SELECT v FROM wt WHERE TRUE").num_rows(), 2u);
  EXPECT_EQ(MustQuery("SELECT v FROM wt WHERE FALSE").num_rows(), 0u);
  EXPECT_EQ(MustQuery("SELECT v FROM wt WHERE NULL IS NULL").num_rows(), 2u);
}

}  // namespace
}  // namespace fedflow::fdbs
