#include "fdbs/executor.h"

#include <gtest/gtest.h>

#include "fdbs/database.h"
#include "sql/parser.h"

namespace fedflow::fdbs {
namespace {

/// A table function for tests: Seq(n) returns rows 1..n in column v, and
/// Pair(x) returns one row (x, x*10).
class SeqFunction : public TableFunction {
 public:
  SeqFunction() {
    params_ = {Column{"n", DataType::kInt}};
    schema_.AddColumn("v", DataType::kInt);
  }
  const std::string& name() const override {
    static const std::string kName = "Seq";
    return kName;
  }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }
  Result<Table> Invoke(const std::vector<Value>& args,
                       ExecContext&) override {
    Table t(schema_);
    for (int i = 1; i <= args[0].AsInt(); ++i) {
      t.AppendRowUnchecked({Value::Int(i)});
    }
    ++invocations;
    return t;
  }
  std::vector<Column> params_;
  Schema schema_;
  int invocations = 0;
};

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    EXPECT_TRUE(db_.Execute("CREATE TABLE t (id INT, name VARCHAR)").ok());
    EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), "
                            "(3, 'a'), (4, NULL)")
                    .ok());
    seq_ = std::make_shared<SeqFunction>();
    EXPECT_TRUE(db_.catalog().RegisterTableFunction(seq_).ok());
  }

  Table MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? *r : Table();
  }

  Database db_;
  std::shared_ptr<SeqFunction> seq_;
};

TEST_F(ExecutorTest, SelectConstantWithoutFrom) {
  Table t = MustQuery("SELECT 1 + 1 AS two, 'x' AS s");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 2);
  EXPECT_EQ(t.schema().column(0).name, "two");
}

TEST_F(ExecutorTest, FullScanAndProjection) {
  Table t = MustQuery("SELECT name FROM t");
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.schema().num_columns(), 1u);
}

TEST_F(ExecutorTest, StarExpansion) {
  Table t = MustQuery("SELECT * FROM t");
  EXPECT_EQ(t.schema().num_columns(), 2u);
  EXPECT_EQ(t.schema().column(0).name, "id");
}

TEST_F(ExecutorTest, WhereFiltersAndDropsNullComparisons) {
  Table t = MustQuery("SELECT id FROM t WHERE name = 'a'");
  EXPECT_EQ(t.num_rows(), 2u);
  // Row 4 has NULL name: comparison is unknown, row dropped, no error.
  Table n = MustQuery("SELECT id FROM t WHERE name <> 'a'");
  EXPECT_EQ(n.num_rows(), 1u);
}

TEST_F(ExecutorTest, IsNullPredicate) {
  Table t = MustQuery("SELECT id FROM t WHERE name IS NULL");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 4);
}

TEST_F(ExecutorTest, CrossJoinOfBaseTables) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE u (k INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO u VALUES (10), (20)").ok());
  Table t = MustQuery("SELECT t.id, u.k FROM t, u");
  EXPECT_EQ(t.num_rows(), 8u);
}

TEST_F(ExecutorTest, JoinWithPredicate) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE u (id INT, w INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO u VALUES (1, 100), (3, 300)").ok());
  Table t = MustQuery(
      "SELECT t.name, u.w FROM t, u WHERE t.id = u.id ORDER BY u.w");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 100);
  EXPECT_EQ(t.rows()[1][0].AsVarchar(), "a");
}

TEST_F(ExecutorTest, TableFunctionProducesRows) {
  Table t = MustQuery("SELECT F.v FROM TABLE (Seq(3)) AS F");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, LateralCorrelationAgainstBaseTable) {
  // Seq is re-invoked per outer row with that row's id.
  Table t = MustQuery("SELECT t.id, F.v FROM t, TABLE (Seq(t.id)) AS F");
  // 1 + 2 + 3 + 4 rows.
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(seq_->invocations, 4);
}

TEST_F(ExecutorTest, LateralDependencyReordersExecution) {
  // G depends on F even though written first in text? Here F first, then G
  // references F.v: classic paper pattern.
  Table t = MustQuery(
      "SELECT G.v FROM TABLE (Seq(2)) AS F, TABLE (Seq(F.v)) AS G");
  // F yields 1,2; G(1) yields 1 row, G(2) yields 2 -> 3 rows.
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, LateralDependencyWrittenOutOfOrder) {
  // The dependent function appears FIRST in the FROM clause; the planner
  // must reorder by parameter availability (paper: "execution order defined
  // by input parameters").
  Table t = MustQuery(
      "SELECT G.v FROM TABLE (Seq(F.v)) AS G, TABLE (Seq(2)) AS F");
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST_F(ExecutorTest, CyclicLateralDependencyRejected) {
  auto r = db_.Execute(
      "SELECT 1 FROM TABLE (Seq(B.v)) AS A, TABLE (Seq(A.v)) AS B");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("cyclic"), std::string::npos);
}

TEST_F(ExecutorTest, EmptyFunctionResultYieldsEmptyJoin) {
  Table t = MustQuery(
      "SELECT F.v, G.v FROM TABLE (Seq(0)) AS F, TABLE (Seq(3)) AS G");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(ExecutorTest, DuplicateCorrelationNamesRejected) {
  EXPECT_FALSE(db_.Execute("SELECT 1 FROM t AS x, t AS x").ok());
}

TEST_F(ExecutorTest, UnknownTableOrFunction) {
  EXPECT_FALSE(db_.Execute("SELECT 1 FROM nope").ok());
  EXPECT_FALSE(db_.Execute("SELECT 1 FROM TABLE (nope(1)) AS N").ok());
}

TEST_F(ExecutorTest, WrongArgCountForTableFunction) {
  auto r = db_.Execute("SELECT 1 FROM TABLE (Seq(1, 2)) AS F");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("expects"), std::string::npos);
}

TEST_F(ExecutorTest, OrderByAscDescAndNullsFirst) {
  Table t = MustQuery("SELECT id, name FROM t ORDER BY name, id DESC");
  // NULL name sorts first.
  EXPECT_TRUE(t.rows()[0][1].is_null());
  EXPECT_EQ(t.rows()[1][0].AsInt(), 3);  // 'a' with id DESC -> 3 before 1
  EXPECT_EQ(t.rows()[2][0].AsInt(), 1);
  EXPECT_EQ(t.rows()[3][1].AsVarchar(), "b");
}

TEST_F(ExecutorTest, OrderByOutputAlias) {
  Table t = MustQuery("SELECT id * 10 AS x FROM t ORDER BY x DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].AsInt(), 40);
}

TEST_F(ExecutorTest, LimitTruncates) {
  EXPECT_EQ(MustQuery("SELECT id FROM t LIMIT 2").num_rows(), 2u);
  EXPECT_EQ(MustQuery("SELECT id FROM t LIMIT 0").num_rows(), 0u);
  EXPECT_EQ(MustQuery("SELECT id FROM t LIMIT 99").num_rows(), 4u);
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  Table t = MustQuery(
      "SELECT name, COUNT(*) AS n, SUM(id) AS s FROM t "
      "GROUP BY name ORDER BY n DESC, name");
  ASSERT_EQ(t.num_rows(), 3u);
  // Group 'a': two rows, ids 1+3.
  EXPECT_EQ(t.rows()[0][0].AsVarchar(), "a");
  EXPECT_EQ(t.rows()[0][1].AsBigInt(), 2);
  EXPECT_EQ(t.rows()[0][2].AsBigInt(), 4);
}

TEST_F(ExecutorTest, AggregatesWithoutGroupBy) {
  Table t = MustQuery("SELECT COUNT(*), MIN(id), MAX(id), AVG(id) FROM t");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 4);
  EXPECT_EQ(t.rows()[0][1].AsInt(), 1);
  EXPECT_EQ(t.rows()[0][2].AsInt(), 4);
  EXPECT_DOUBLE_EQ(t.rows()[0][3].AsDouble(), 2.5);
}

TEST_F(ExecutorTest, AggregateOverEmptyInputYieldsOneRow) {
  Table t = MustQuery("SELECT COUNT(*), SUM(id) FROM t WHERE id > 100");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 0);
  EXPECT_TRUE(t.rows()[0][1].is_null());
}

TEST_F(ExecutorTest, CountSkipsNulls) {
  Table t = MustQuery("SELECT COUNT(name) FROM t");
  EXPECT_EQ(t.rows()[0][0].AsBigInt(), 3);
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  Table t = MustQuery(
      "SELECT name, COUNT(*) AS n FROM t WHERE name IS NOT NULL "
      "GROUP BY name HAVING COUNT(*) > 1");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].AsVarchar(), "a");
}

TEST_F(ExecutorTest, StarWithAggregationRejected) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM t GROUP BY name").ok());
}

TEST_F(ExecutorTest, ExpressionInGroupBy) {
  Table t = MustQuery(
      "SELECT id % 2 AS parity, COUNT(*) AS n FROM t GROUP BY id % 2 "
      "ORDER BY parity");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][1].AsBigInt(), 2);
}

TEST_F(ExecutorTest, DdlAndDml) {
  EXPECT_TRUE(db_.Execute("CREATE TABLE fresh (x INT)").ok());
  EXPECT_FALSE(db_.Execute("CREATE TABLE fresh (x INT)").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE fresh").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE fresh").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO fresh VALUES (1)").ok());
}

TEST_F(ExecutorTest, InsertCoercesAndChecksArity) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE c (x BIGINT)").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO c VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO c VALUES (1, 2)").ok());
  Table t = MustQuery("SELECT x FROM c");
  EXPECT_EQ(t.rows()[0][0].type(), DataType::kBigInt);
}

TEST_F(ExecutorTest, OutputColumnNaming) {
  Table t = MustQuery("SELECT id, id + 1, UPPER(name), id AS renamed FROM t "
                      "LIMIT 1");
  EXPECT_EQ(t.schema().column(0).name, "id");
  EXPECT_EQ(t.schema().column(1).name, "col2");
  EXPECT_EQ(t.schema().column(2).name, "UPPER");
  EXPECT_EQ(t.schema().column(3).name, "renamed");
}

TEST_F(ExecutorTest, LateralOrderExposedForPlannerTests) {
  auto stmt = sql::ParseSelect(
      "SELECT 1 FROM TABLE (Seq(B.v)) AS A, TABLE (Seq(1)) AS B");
  ASSERT_TRUE(stmt.ok());
  Schema seq_schema;
  seq_schema.AddColumn("v", DataType::kInt);
  std::vector<const Schema*> schemas = {&seq_schema, &seq_schema};
  auto order = SelectExecutor::LateralOrder(*stmt, schemas);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ((*order)[0], 1u);
  EXPECT_EQ((*order)[1], 0u);
}

}  // namespace
}  // namespace fedflow::fdbs
