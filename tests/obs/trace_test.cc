// Unit tests for the fedtrace subsystem: span lifecycle, the disabled-tracer
// no-op guarantee, RMI trace-context propagation (the server-side span must
// parent under the client call span via the wire context), cost neutrality,
// error-path status attributes, metrics, and the exporters.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/vclock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/rmi.h"

namespace fedflow::obs {
namespace {

using sim::FaultInjector;
using sim::FaultProfile;
using sim::LatencyModel;
using sim::RmiChannel;

TEST(TracerTest, DisabledTracerIsNoOp) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  SpanId id = tracer.StartSpan("x", Layer::kFdbs, 0, 0);
  EXPECT_EQ(id, 0u);
  // Every operation on id 0 is accepted and ignored.
  tracer.SetAttribute(id, "k", "v");
  tracer.SetStatus(id, Status::Internal("boom"));
  tracer.AddEvent(id, 5, "event");
  tracer.AddCharge(id, "Step", 10);
  tracer.EndSpan(id, 7);
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_FALSE(tracer.ContextOf(id).valid());
}

TEST(TracerTest, SpanTreeParentingAndAttributes) {
  Tracer tracer;
  tracer.Enable();
  SpanId root = tracer.StartSpan("root", Layer::kFdbs, 0, 0);
  SpanId child = tracer.StartSpan("child", Layer::kCoupling, root, 10);
  ASSERT_NE(root, 0u);
  ASSERT_NE(child, 0u);
  tracer.SetAttribute(child, "k", "v");
  tracer.AddEvent(child, 12, "evt", "detail");
  tracer.EndSpan(child, 20);
  tracer.EndSpan(root, 30);

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].trace_id, spans[0].trace_id);
  EXPECT_EQ(spans[1].attribute("k"), "v");
  EXPECT_FALSE(spans[1].remote_parent);
  ASSERT_EQ(spans[1].events.size(), 1u);
  EXPECT_EQ(spans[1].events[0].name, "evt");
  EXPECT_EQ(spans[0].end_us, 30);
  EXPECT_TRUE(spans[0].finished);
}

TEST(TracerTest, RemoteSpanJoinsPropagatedContext) {
  Tracer tracer;
  tracer.Enable();
  SpanId client = tracer.StartSpan("call", Layer::kRmi, 0, 0);
  TraceContext ctx = tracer.ContextOf(client);
  ASSERT_TRUE(ctx.valid());
  SpanId serve = tracer.StartRemoteSpan("serve", Layer::kRmi, ctx, 0);
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].id, serve);
  EXPECT_EQ(spans[1].parent, client);
  EXPECT_EQ(spans[1].trace_id, spans[0].trace_id);
  EXPECT_TRUE(spans[1].remote_parent);
}

TEST(TracerTest, InvalidRemoteContextStartsFreshTrace) {
  Tracer tracer;
  tracer.Enable();
  SpanId s = tracer.StartRemoteSpan("serve", Layer::kRmi, TraceContext{}, 0);
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].id, s);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_FALSE(spans[0].remote_parent);
}

/// The provable propagation guarantee: invoking through the RMI channel with
/// a trace session marshals the client span's context into the request, and
/// the server side parents its serve span under it — remote_parent set.
TEST(RmiTraceTest, ServerSpanParentsUnderClientCallSpan) {
  LatencyModel model;
  Tracer tracer;
  tracer.Enable();
  SimClock clock;
  TraceSession session(&tracer, &clock);
  RmiChannel rmi(&model);
  RmiChannel::CallCosts costs;
  Schema schema({{"N", DataType::kInt}});
  auto handler = [&](const std::string&,
                     const std::vector<Value>&) -> Result<Table> {
    Table t(schema);
    EXPECT_TRUE(t.AppendRow({Value::Int(7)}).ok());
    return t;
  };
  auto out = rmi.Invoke("Fn", {Value::Int(1)}, handler, &costs, &session);
  ASSERT_TRUE(out.ok()) << out.status();

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const Span& client = spans[0];
  const Span& serve = spans[1];
  EXPECT_EQ(client.name, "rmi:Fn");
  EXPECT_EQ(serve.name, "serve:Fn");
  EXPECT_EQ(serve.parent, client.id);
  EXPECT_EQ(serve.trace_id, client.trace_id);
  EXPECT_TRUE(serve.remote_parent);
  EXPECT_FALSE(client.remote_parent);
}

/// Tracing must not change modeled wire costs: the trace context rides
/// out-of-band (appended after the payload whose size prices the call).
TEST(RmiTraceTest, TracedAndUntracedCostsAreIdentical) {
  LatencyModel model;
  Schema schema({{"N", DataType::kInt}});
  auto handler = [&](const std::string&,
                     const std::vector<Value>&) -> Result<Table> {
    Table t(schema);
    EXPECT_TRUE(t.AppendRow({Value::Int(7)}).ok());
    return t;
  };
  RmiChannel rmi(&model);
  RmiChannel::CallCosts plain;
  ASSERT_TRUE(
      rmi.Invoke("Fn", {Value::Varchar("abc")}, handler, &plain).ok());

  Tracer tracer;
  tracer.Enable();
  SimClock clock;
  TraceSession session(&tracer, &clock);
  RmiChannel::CallCosts traced;
  ASSERT_TRUE(
      rmi.Invoke("Fn", {Value::Varchar("abc")}, handler, &traced, &session)
          .ok());
  EXPECT_EQ(plain.call_us, traced.call_us);
  EXPECT_EQ(plain.return_us, traced.return_us);
}

/// Satellite fix: RMI error paths stamp the span's "status" attribute with
/// the failing code, so outages are visible in traces.
TEST(RmiTraceTest, FailedCallStampsStatusOnSpan) {
  LatencyModel model;
  FaultInjector faults(42);
  FaultProfile down;
  down.permanent_outage = true;
  faults.SetProfile("Fn", down);

  Tracer tracer;
  tracer.Enable();
  SimClock clock;
  TraceSession session(&tracer, &clock);
  RmiChannel rmi(&model, &faults);
  RmiChannel::CallCosts costs;
  auto handler = [](const std::string&,
                    const std::vector<Value>&) -> Result<Table> {
    return Status::Internal("handler must not run");
  };
  auto out = rmi.Invoke("Fn", {Value::Int(1)}, handler, &costs, &session);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);  // client span only: the serve never opened
  EXPECT_EQ(spans[0].attribute("status"), "unavailable");
  bool fault_event = false;
  for (const SpanEvent& e : spans[0].events) {
    if (e.name == "fault injected") fault_event = true;
  }
  EXPECT_TRUE(fault_event);
}

/// While a TraceSession observes the clock, every charge lands in the
/// current span, and BreakdownFromSpans reassembles the clock's breakdown
/// exactly — steps in first-insertion order with identical durations.
TEST(TraceSessionTest, ChargesReassembleClockBreakdown) {
  Tracer tracer;
  tracer.Enable();
  SimClock clock;
  TraceSession session(&tracer, &clock);
  clock.set_observer(&session);
  {
    SpanScope outer(&session, "outer", Layer::kFdbs);
    clock.Charge("A", 10);
    {
      SpanScope inner(&session, "inner", Layer::kCoupling);
      clock.Charge("B", 20);
      clock.Charge("A", 5);
    }
    clock.ChargeWork("C", 7);
  }
  clock.set_observer(nullptr);

  std::vector<Span> spans = tracer.Snapshot();
  TimeBreakdown derived = BreakdownFromSpans(spans);
  EXPECT_EQ(derived.entries(), clock.breakdown().entries());
  EXPECT_EQ(LayerTotal(spans, Layer::kFdbs), 17);      // A:10 + C:7
  EXPECT_EQ(LayerTotal(spans, Layer::kCoupling), 25);  // B:20 + A:5
}

TEST(TraceSessionTest, InactiveSessionMakesScopesNoOps) {
  Tracer tracer;  // disabled
  SimClock clock;
  TraceSession session(&tracer, &clock);
  SpanScope scope(&session, "x", Layer::kFdbs);
  EXPECT_EQ(scope.id(), 0u);
  scope.SetAttribute("k", "v");
  scope.AddEvent("e");
  EXPECT_EQ(tracer.span_count(), 0u);
  SpanScope null_scope(nullptr, "y", Layer::kFdbs);
  EXPECT_EQ(null_scope.id(), 0u);
}

TEST(MetricsTest, CountersAndHistograms) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.counter("absent"), 0u);
  metrics.Inc("calls");
  metrics.Inc("calls", 2);
  EXPECT_EQ(metrics.counter("calls"), 3u);

  metrics.Observe("lat", 100);
  metrics.Observe("lat", 300);
  Histogram h = metrics.histogram("lat");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 400);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 300);
  auto buckets = h.Buckets();
  uint64_t total = 0;
  for (const auto& [bound, count] : buckets) total += count;
  EXPECT_EQ(total, 2u);

  EXPECT_EQ(metrics.histogram("absent").count(), 0u);
  std::string dump = metrics.ToString();
  EXPECT_NE(dump.find("calls"), std::string::npos);
  EXPECT_NE(dump.find("lat"), std::string::npos);

  metrics.Reset();
  EXPECT_EQ(metrics.counter("calls"), 0u);
  EXPECT_EQ(metrics.histogram("lat").count(), 0u);
}

TEST(MetricsTest, EscapeMetricSegmentRoundTripsPlainIdentifiers) {
  // Every identifier the scenarios use passes through unchanged, so the
  // established metric names are unaffected by the escaping.
  EXPECT_EQ(EscapeMetricSegment("GetSuppQual"), "GetSuppQual");
  EXPECT_EQ(EscapeMetricSegment("tenant-a_1"), "tenant-a_1");
  // Dots (the metric-name separator) and the escape character itself are
  // rewritten; the mapping is injective ("a.b" can never collide with a
  // literal "a%2Eb").
  EXPECT_EQ(EscapeMetricSegment("a.b"), "a%2Eb");
  EXPECT_EQ(EscapeMetricSegment("a%2Eb"), "a%252Eb");
}

TEST(MetricsTest, TenantMetricNamesNoLongerCollideAcrossSegments) {
  // Before the escaping, tenant "a.b" with metric "calls" and tenant "a"
  // with metric "b.calls" both landed under "tenant.a.b.calls".
  MetricsRegistry metrics;
  TenantMetrics dotted(&metrics, "a.b");
  TenantMetrics plain(&metrics, "a");
  dotted.Inc("calls");
  plain.Inc("b.calls", 5);
  EXPECT_EQ(metrics.counter(TenantMetricName("a.b", "calls")), 1u);
  EXPECT_EQ(metrics.counter(TenantMetricName("a", "b.calls")), 5u);
  EXPECT_NE(TenantMetricName("a.b", "calls"), TenantMetricName("a", "b.calls"));
  // Plain tenants keep their historical names.
  EXPECT_EQ(TenantMetricName("acme", "call.count"), "tenant.acme.call.count");
}

TEST(ExportTest, ChromeTraceJsonAndSpanTree) {
  Tracer tracer;
  tracer.Enable();
  SpanId root = tracer.StartSpan("root", Layer::kFdbs, 0, 0);
  SpanId child = tracer.StartSpan("serve \"x\"", Layer::kRmi, root, 10);
  tracer.SetAttribute(child, "status", "unavailable");
  tracer.AddEvent(child, 12, "fault injected");
  tracer.EndSpan(child, 20);
  tracer.EndSpan(root, 30);
  std::vector<Span> spans = tracer.Snapshot();

  std::string json = ChromeTraceJson(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"rmi\""), std::string::npos);
  EXPECT_NE(json.find("serve \\\"x\\\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);     // instant event

  std::string tree = SpanTreeString(spans);
  EXPECT_NE(tree.find("[fdbs] root"), std::string::npos);
  EXPECT_NE(tree.find("status=unavailable"), std::string::npos);
  // The child renders indented under the root.
  EXPECT_LT(tree.find("[fdbs] root"), tree.find("[rmi] serve"));
}

TEST(TracerTest, ResetDropsSpans) {
  Tracer tracer;
  tracer.Enable();
  tracer.StartSpan("x", Layer::kFdbs, 0, 0);
  EXPECT_EQ(tracer.span_count(), 1u);
  tracer.Reset();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_TRUE(tracer.enabled());  // switch untouched
}

}  // namespace
}  // namespace fedflow::obs
