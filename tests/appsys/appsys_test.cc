#include <gtest/gtest.h>

#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"

namespace fedflow::appsys {
namespace {

class AppSysTest : public ::testing::Test {
 protected:
  AppSysTest()
      : scenario_(GenerateScenario({})),
        stock_(scenario_),
        purchasing_(scenario_),
        pdm_(scenario_) {}

  Scenario scenario_;
  StockKeepingSystem stock_;
  PurchasingSystem purchasing_;
  PdmSystem pdm_;
};

TEST_F(AppSysTest, DatasetIsDeterministic) {
  Scenario again = GenerateScenario({});
  ASSERT_EQ(again.suppliers.size(), scenario_.suppliers.size());
  for (size_t i = 0; i < again.suppliers.size(); ++i) {
    EXPECT_EQ(again.suppliers[i].supplier_no,
              scenario_.suppliers[i].supplier_no);
    EXPECT_EQ(again.suppliers[i].quality, scenario_.suppliers[i].quality);
  }
  EXPECT_EQ(again.stock.size(), scenario_.stock.size());
  EXPECT_EQ(again.discounts.size(), scenario_.discounts.size());
}

TEST_F(AppSysTest, DifferentSeedsChangeRatings) {
  Scenario other = GenerateScenario({8, 50, 99});
  bool any_diff = false;
  for (size_t i = 0; i < other.suppliers.size() - 1; ++i) {
    if (other.suppliers[i].quality != scenario_.suppliers[i].quality) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(AppSysTest, DataVersionBumpsOnlyOnMutatingCalls) {
  EXPECT_EQ(stock_.data_version(), 0);
  // Reads never move the version.
  ASSERT_TRUE(stock_.Call("GetQuality", {Value::Int(1234)}).ok());
  EXPECT_EQ(stock_.data_version(), 0);
  // A successful mutating call bumps it by exactly one ...
  auto written = stock_.Call("SetQuality", {Value::Int(1234), Value::Int(42)});
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(stock_.data_version(), 1);
  // ... and the write is visible through the read path.
  auto read = stock_.Call("GetQuality", {Value::Int(1234)});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->table.rows()[0][0].AsInt(), 42);
  // A failed call (unknown supplier resolves, but wrong arity fails) leaves
  // the version alone.
  EXPECT_FALSE(stock_.Call("SetQuality", {Value::Int(1)}).ok());
  EXPECT_EQ(stock_.data_version(), 1);
  // Other systems' versions are independent.
  EXPECT_EQ(purchasing_.data_version(), 0);
}

TEST_F(AppSysTest, DatasetGuaranteesPaperFixtures) {
  // Supplier 1234 "Stark" and component 17 "brakepad" exist; 1234 stocks 17.
  bool stark = false;
  for (const SupplierRecord& s : scenario_.suppliers) {
    if (s.supplier_no == 1234 && s.name == "Stark") stark = true;
  }
  EXPECT_TRUE(stark);
  bool brakepad = false;
  for (const ComponentRecord& c : scenario_.components) {
    if (c.comp_no == 17 && c.name == "brakepad") brakepad = true;
  }
  EXPECT_TRUE(brakepad);
  bool stocked = false;
  for (const StockRecord& item : scenario_.stock) {
    if (item.supplier_no == 1234 && item.comp_no == 17) stocked = true;
  }
  EXPECT_TRUE(stocked);
}

TEST_F(AppSysTest, BomIsAcyclic) {
  // Sub-components always have larger numbers than their parent.
  for (const ComponentRecord& c : scenario_.components) {
    for (int32_t sub : c.sub_components) {
      EXPECT_GT(sub, c.comp_no);
    }
  }
}

TEST_F(AppSysTest, CallValidatesArityAndCoercesTypes) {
  EXPECT_FALSE(stock_.Call("GetQuality", {}).ok());
  EXPECT_FALSE(stock_.Call("GetQuality", {Value::Int(1), Value::Int(2)}).ok());
  // VARCHAR '1234' coerces to INT.
  auto r = stock_.Call("GetQuality", {Value::Varchar("1234")});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.rows()[0][0].AsInt(), 9);
}

TEST_F(AppSysTest, UnknownFunctionIsNotFound) {
  auto r = stock_.Call("NoSuchFn", {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(AppSysTest, UnknownKeysYieldEmptyTables) {
  EXPECT_EQ(stock_.Call("GetQuality", {Value::Int(424242)})->table.num_rows(),
            0u);
  EXPECT_EQ(purchasing_.Call("GetSupplierNo", {Value::Varchar("Ghost")})
                ->table.num_rows(),
            0u);
  EXPECT_EQ(pdm_.Call("GetCompNo", {Value::Varchar("unobtainium")})
                ->table.num_rows(),
            0u);
}

TEST_F(AppSysTest, StockFunctions) {
  auto number =
      stock_.Call("GetNumber", {Value::Int(1234), Value::Int(17)});
  ASSERT_TRUE(number.ok());
  EXPECT_EQ(number->table.rows()[0][0].AsInt(), 100000 + 234 * 100 + 17);
  auto comps = stock_.Call("GetSuppComps", {Value::Int(1234)});
  ASSERT_TRUE(comps.ok());
  EXPECT_GT(comps->table.num_rows(), 0u);
}

TEST_F(AppSysTest, PurchasingFunctions) {
  auto no = purchasing_.Call("GetSupplierNo", {Value::Varchar("stark")});
  ASSERT_TRUE(no.ok());  // case-insensitive lookup
  EXPECT_EQ(no->table.rows()[0][0].AsInt(), 1234);
  auto name = purchasing_.Call("GetSupplierName", {Value::Int(1234)});
  EXPECT_EQ(name->table.rows()[0][0].AsVarchar(), "Stark");
  auto relia = purchasing_.Call("GetReliability", {Value::Int(1234)});
  EXPECT_EQ(relia->table.rows()[0][0].AsInt(), 8);
  auto grade = purchasing_.Call("GetGrade", {Value::Int(9), Value::Int(8)});
  EXPECT_EQ(grade->table.rows()[0][0].AsInt(), 8);
  auto yes = purchasing_.Call("DecidePurchase", {Value::Int(5), Value::Int(1)});
  EXPECT_EQ(yes->table.rows()[0][0].AsVarchar(), "BUY");
  auto nope =
      purchasing_.Call("DecidePurchase", {Value::Int(4), Value::Int(1)});
  EXPECT_EQ(nope->table.rows()[0][0].AsVarchar(), "REJECT");
}

TEST_F(AppSysTest, DiscountFunctionFiltersByThreshold) {
  auto all = purchasing_.Call("GetCompSupp4Discount", {Value::Int(0)});
  auto some = purchasing_.Call("GetCompSupp4Discount", {Value::Int(10)});
  ASSERT_TRUE(all.ok() && some.ok());
  EXPECT_GT(all->table.num_rows(), some->table.num_rows());
  EXPECT_EQ(all->table.schema().num_columns(), 2u);
}

TEST_F(AppSysTest, PdmFunctions) {
  auto no = pdm_.Call("GetCompNo", {Value::Varchar("brakepad")});
  EXPECT_EQ(no->table.rows()[0][0].AsInt(), 17);
  auto name = pdm_.Call("GetCompName", {Value::Int(17)});
  EXPECT_EQ(name->table.rows()[0][0].AsVarchar(), "brakepad");
  auto subs = pdm_.Call("GetSubCompNo", {Value::Int(2)});
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->table.schema().column(0).name, "SubCompNo");
}

TEST_F(AppSysTest, CallCostsModeled) {
  auto r = stock_.Call("GetQuality", {Value::Int(1234)});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->cost_us, 0);
  // Table-valued calls cost more per row.
  auto fn = stock_.GetFunction("GetSuppComps");
  ASSERT_TRUE(fn.ok());
  auto comps = stock_.Call("GetSuppComps", {Value::Int(1234)});
  EXPECT_EQ(comps->cost_us,
            (*fn)->base_cost_us +
                (*fn)->per_row_cost_us *
                    static_cast<VDuration>(comps->table.num_rows()));
}

TEST_F(AppSysTest, CallCountTracksEverything) {
  PdmSystem fresh(scenario_);
  EXPECT_EQ(fresh.call_count(), 0);
  (void)fresh.Call("GetCompNo", {Value::Varchar("x")});
  (void)fresh.Call("NoSuch", {});
  EXPECT_EQ(fresh.call_count(), 2);
}

TEST_F(AppSysTest, FaultInjectionAndRecovery) {
  stock_.InjectFault("GetQuality", Status::ExecutionError("down"));
  auto r = stock_.Call("GetQuality", {Value::Int(1234)});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("down"), std::string::npos);
  stock_.InjectFault("GetQuality", Status::OK());
  EXPECT_TRUE(stock_.Call("GetQuality", {Value::Int(1234)}).ok());
}

TEST_F(AppSysTest, FunctionNamesEnumerated) {
  auto names = purchasing_.FunctionNames();
  EXPECT_EQ(names.size(), 9u);  // 6 read functions + PlaceOrder/CancelOrder/GetOpenOrders
}

TEST_F(AppSysTest, RegistryLookupAndDuplicates) {
  AppSystemRegistry registry;
  ASSERT_TRUE(
      registry.Add(std::make_shared<PdmSystem>(scenario_)).ok());
  EXPECT_FALSE(
      registry.Add(std::make_shared<PdmSystem>(scenario_)).ok());
  EXPECT_TRUE(registry.Get("PDM").ok());
  EXPECT_FALSE(registry.Get("erp").ok());
  EXPECT_EQ(registry.Names().size(), 1u);
}

TEST_F(AppSysTest, ScenarioScalesWithConfig) {
  Scenario big = GenerateScenario({16, 200, 42});
  EXPECT_EQ(big.suppliers.size(), 17u);  // + Stark
  EXPECT_EQ(big.components.size(), 200u);
  EXPECT_GT(big.stock.size(), scenario_.stock.size());
}

TEST_F(AppSysTest, DecisionRuleOracle) {
  EXPECT_EQ(PurchasingSystem::Decide(5, 1), "BUY");
  EXPECT_EQ(PurchasingSystem::Decide(4, 1), "REJECT");
  EXPECT_EQ(PurchasingSystem::Decide(10, 99), "BUY");
}

}  // namespace
}  // namespace fedflow::appsys
