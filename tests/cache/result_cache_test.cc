// Unit tests for the result cache: hit/miss accounting, data-version
// supersede, LRU byte budgets, per-tenant quotas, slot flushes, and
// determinism of the eviction order. A ThreadPool smoke test exercises the
// locking under real concurrency for the TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "cache/cache_key.h"
#include "cache/result_cache.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace fedflow::cache {
namespace {

Table OneCellTable(int64_t v) {
  Table t(Schema({Column{"V", DataType::kBigInt}}));
  t.AppendRowUnchecked({Value::BigInt(v)});
  return t;
}

ResultCache::Key MakeKey(const std::string& function,
                         const std::string& args = "a1",
                         const std::string& version = "STOCK:0") {
  ResultCache::Key key;
  key.scope = kFederatedScope;
  key.function = function;
  key.args = args;
  key.version = version;
  return key;
}

ResultCache::Entry MakeEntry(int64_t v, uint64_t slot = 1,
                             const std::string& tenant = "default") {
  ResultCache::Entry entry;
  entry.table = OneCellTable(v);
  entry.saved_cost_us = 1000;
  entry.slot = slot;
  entry.tenant = tenant;
  return entry;
}

TEST(ResultCacheTest, MissThenInsertThenHit) {
  ResultCache cache;
  Table out;
  EXPECT_FALSE(cache.Lookup(MakeKey("F"), &out));
  cache.Insert(MakeKey("F"), MakeEntry(7));
  ASSERT_TRUE(cache.Lookup(MakeKey("F"), &out));
  EXPECT_EQ(out.rows()[0][0].AsBigInt(), 7);
  // Function identity is case-insensitive, args/version are exact.
  EXPECT_TRUE(cache.Lookup(MakeKey("f"), &out));
  EXPECT_FALSE(cache.Lookup(MakeKey("F", "a2"), &out));
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.insertions, 1);
}

TEST(ResultCacheTest, NewerVersionSupersedesOnLookupAndInsert) {
  ResultCache cache;
  cache.Insert(MakeKey("F", "a1", "STOCK:0"), MakeEntry(1));
  // A lookup at a different data version drops the stale entry and misses.
  Table out;
  EXPECT_FALSE(cache.Lookup(MakeKey("F", "a1", "STOCK:1"), &out));
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 0u);
  // An insert at a newer version replaces a resident stale entry.
  cache.Insert(MakeKey("F", "a1", "STOCK:1"), MakeEntry(2));
  cache.Insert(MakeKey("F", "a1", "STOCK:2"), MakeEntry(3));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().invalidations, 2);
  ASSERT_TRUE(cache.Lookup(MakeKey("F", "a1", "STOCK:2"), &out));
  EXPECT_EQ(out.rows()[0][0].AsBigInt(), 3);
}

TEST(ResultCacheTest, LruEvictionRespectsByteBudgetAndRecency) {
  const size_t one = EstimateTableBytes(OneCellTable(0));
  ResultCacheOptions options;
  options.max_bytes = 2 * one;
  ResultCache cache(options);
  cache.Insert(MakeKey("A"), MakeEntry(1));
  cache.Insert(MakeKey("B"), MakeEntry(2));
  EXPECT_EQ(cache.size(), 2u);
  // Touch A so B becomes the LRU victim.
  Table out;
  ASSERT_TRUE(cache.Lookup(MakeKey("A"), &out));
  cache.Insert(MakeKey("C"), MakeEntry(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_TRUE(cache.Lookup(MakeKey("A"), &out));
  EXPECT_FALSE(cache.Lookup(MakeKey("B"), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey("C"), &out));
  EXPECT_LE(cache.bytes(), options.max_bytes);
}

TEST(ResultCacheTest, OversizedEntryIsNotAdmitted) {
  ResultCacheOptions options;
  options.max_bytes = 8;  // smaller than any real table estimate
  ResultCache cache(options);
  cache.Insert(MakeKey("F"), MakeEntry(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, TenantQuotaEvictsThatTenantFirst) {
  const size_t one = EstimateTableBytes(OneCellTable(0));
  ResultCacheOptions options;
  options.max_bytes = 100 * one;
  options.per_tenant_max_bytes = 2 * one;
  ResultCache cache(options);
  cache.Insert(MakeKey("A"), MakeEntry(1, 1, "acme"));
  cache.Insert(MakeKey("B"), MakeEntry(2, 1, "acme"));
  cache.Insert(MakeKey("C"), MakeEntry(3, 1, "globex"));
  // acme is at quota; its third entry evicts its own LRU (A), not globex's.
  cache.Insert(MakeKey("D"), MakeEntry(4, 1, "acme"));
  Table out;
  EXPECT_FALSE(cache.Lookup(MakeKey("A"), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey("B"), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey("C"), &out));
  EXPECT_TRUE(cache.Lookup(MakeKey("D"), &out));
  EXPECT_LE(cache.tenant_bytes("acme"), options.per_tenant_max_bytes);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ResultCacheTest, SlotAndFunctionAndFullInvalidation) {
  ResultCache cache;
  cache.Insert(MakeKey("A"), MakeEntry(1, 1));
  cache.Insert(MakeKey("B"), MakeEntry(2, 2));
  cache.Insert(MakeKey("B", "a2"), MakeEntry(3, 3));
  // Evicting slot 2 flushes only the entry produced on it.
  EXPECT_EQ(cache.InvalidateSlots({2}), 1);
  Table out;
  EXPECT_TRUE(cache.Lookup(MakeKey("A"), &out));
  EXPECT_FALSE(cache.Lookup(MakeKey("B"), &out));
  // Function invalidation is case-insensitive and spans arg fingerprints.
  EXPECT_EQ(cache.InvalidateFunction("b"), 1);
  EXPECT_FALSE(cache.Lookup(MakeKey("B", "a2"), &out));
  // Reboot drops everything.
  cache.Insert(MakeKey("C"), MakeEntry(4));
  EXPECT_EQ(cache.InvalidateAll(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, GaugesTrackResidency) {
  obs::MetricsRegistry metrics;
  ResultCache cache;
  cache.AttachMetrics(&metrics);
  cache.Insert(MakeKey("A"), MakeEntry(1, 1, "acme"));
  EXPECT_EQ(metrics.gauge("cache.result.entries"), 1);
  EXPECT_EQ(metrics.gauge("cache.result.bytes"),
            static_cast<int64_t>(cache.bytes()));
  EXPECT_GT(metrics.gauge(obs::TenantMetricName("acme", "cache.result.bytes")),
            0);
  EXPECT_EQ(cache.InvalidateAll(), 1);
  EXPECT_EQ(metrics.gauge("cache.result.entries"), 0);
}

TEST(ResultCacheTest, ConcurrentMixedOperationsAreSafe) {
  ResultCacheOptions options;
  options.max_bytes = 1 << 16;
  ResultCache cache(options);
  std::atomic<int64_t> hits{0};
  {
    ThreadPool pool(4);
    for (int t = 0; t < 8; ++t) {
      pool.Submit([&cache, &hits, t] {
        for (int i = 0; i < 200; ++i) {
          const std::string fn = "F" + std::to_string((t + i) % 5);
          cache.Insert(MakeKey(fn, "a" + std::to_string(i % 3)),
                       MakeEntry(i, static_cast<uint64_t>(t % 3 + 1)));
          Table out;
          if (cache.Lookup(MakeKey(fn, "a" + std::to_string(i % 3)), &out)) {
            hits.fetch_add(1);
          }
          if (i % 50 == 0) cache.InvalidateSlots({2});
          if (i % 70 == 0) cache.InvalidateFunction("F1");
        }
      });
    }
  }
  // The pool destructor drained every task; the cache is still coherent.
  ResultCache::Stats stats = cache.stats();
  EXPECT_GT(hits.load(), 0);
  EXPECT_EQ(stats.insertions, 8 * 200);
  EXPECT_LE(cache.bytes(), options.max_bytes);
}

TEST(ResultCacheTest, AdmissionRejectsEntriesBelowSavedCostThreshold) {
  ResultCacheOptions options;
  options.min_saved_cost_us = 40;  // the modeled cache_probe_us
  ResultCache cache(options);
  obs::MetricsRegistry metrics;
  cache.AttachMetrics(&metrics);

  // Saves less than the probe would cost: rejected, nothing resident.
  ResultCache::Entry cheap = MakeEntry(1);
  cheap.saved_cost_us = 39;
  cache.Insert(MakeKey("F"), std::move(cheap));
  Table out;
  EXPECT_FALSE(cache.Lookup(MakeKey("F"), &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().admission_rejected, 1);
  EXPECT_EQ(cache.stats().insertions, 0);
  EXPECT_EQ(metrics.Counters()["cache.admission.rejected"], 1u);

  // At the threshold: admitted (the probe exactly pays for itself).
  ResultCache::Entry worthwhile = MakeEntry(2);
  worthwhile.saved_cost_us = 40;
  cache.Insert(MakeKey("F"), std::move(worthwhile));
  EXPECT_TRUE(cache.Lookup(MakeKey("F"), &out));
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.stats().admission_rejected, 1);

  // Threshold 0 (the default) admits everything.
  ResultCache open_cache;
  ResultCache::Entry free_entry = MakeEntry(3);
  free_entry.saved_cost_us = 0;
  open_cache.Insert(MakeKey("G"), std::move(free_entry));
  EXPECT_TRUE(open_cache.Lookup(MakeKey("G"), &out));
  EXPECT_EQ(open_cache.stats().admission_rejected, 0);
}

}  // namespace
}  // namespace fedflow::cache
