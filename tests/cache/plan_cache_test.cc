// Unit tests for the plan cache: compile-exactly-once semantics (via the
// plan::BuildPlanInvocations probe), pointer-stable sharing, options-drift
// invalidation, and the metrics it reports.
#include <gtest/gtest.h>

#include <memory>

#include "appsys/dataset.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/registry.h"
#include "appsys/stockkeeping.h"
#include "cache/plan_cache.h"
#include "federation/sample_scenario.h"
#include "obs/metrics.h"
#include "plan/optimizer.h"

namespace fedflow::cache {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() {
    appsys::Scenario scenario = appsys::GenerateScenario({});
    EXPECT_TRUE(systems_
                    .Add(std::make_shared<appsys::StockKeepingSystem>(scenario))
                    .ok());
    EXPECT_TRUE(
        systems_.Add(std::make_shared<appsys::PurchasingSystem>(scenario))
            .ok());
    EXPECT_TRUE(
        systems_.Add(std::make_shared<appsys::PdmSystem>(scenario)).ok());
  }

  static federation::FederatedFunctionSpec Spec(const char* name) {
    for (const federation::FederatedFunctionSpec& spec :
         federation::AllSampleSpecs()) {
      if (spec.name == name) return spec;
    }
    ADD_FAILURE() << "unknown sample spec " << name;
    return {};
  }

  appsys::AppSystemRegistry systems_;
  sim::LatencyModel model_;
  PlanCache cache_;
};

TEST_F(PlanCacheTest, CompilesExactlyOncePerSpecAndShares) {
  const federation::FederatedFunctionSpec spec = Spec("GetSuppQual");
  const int64_t before = plan::BuildPlanInvocations();
  auto first = cache_.GetOrBuild(spec, systems_, model_);
  ASSERT_TRUE(first.ok());
  auto second = cache_.GetOrBuild(spec, systems_, model_);
  ASSERT_TRUE(second.ok());
  // One BuildPlan total; both callers share the same instance.
  EXPECT_EQ(plan::BuildPlanInvocations() - before, 1);
  EXPECT_EQ(first->get(), second->get());
  PlanCache::Stats stats = cache_.stats();
  EXPECT_EQ(stats.compiles, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(cache_.size(), 1u);
}

TEST_F(PlanCacheTest, LookupIsCaseInsensitiveAndNeverCompiles) {
  const federation::FederatedFunctionSpec spec = Spec("GetSuppQual");
  EXPECT_EQ(cache_.Lookup("GetSuppQual"), nullptr);
  ASSERT_TRUE(cache_.GetOrBuild(spec, systems_, model_).ok());
  const int64_t before = plan::BuildPlanInvocations();
  EXPECT_NE(cache_.Lookup("GETSUPPQUAL"), nullptr);
  EXPECT_NE(cache_.Lookup("getsuppqual"), nullptr);
  EXPECT_EQ(plan::BuildPlanInvocations(), before);
  // Lookups are not counted as hits or misses.
  EXPECT_EQ(cache_.stats().hits, 0);
}

TEST_F(PlanCacheTest, OptionsDriftRecompilesAndCountsInvalidation) {
  const federation::FederatedFunctionSpec spec = Spec("GetSuppQualRelia");
  auto passthrough = cache_.GetOrBuild(spec, systems_, model_);
  ASSERT_TRUE(passthrough.ok());
  plan::PlanOptions optimized;
  optimized.sequential_baseline = true;
  optimized.parallelize = true;
  auto parallel = cache_.GetOrBuild(spec, systems_, model_, optimized);
  ASSERT_TRUE(parallel.ok());
  EXPECT_NE(passthrough->get(), parallel->get());
  EXPECT_EQ(cache_.stats().invalidations, 1);
  EXPECT_EQ(cache_.stats().compiles, 2);
  // The replacement is resident: same options now hit.
  auto again = cache_.GetOrBuild(spec, systems_, model_, optimized);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(parallel->get(), again->get());
  EXPECT_EQ(cache_.stats().hits, 1);
}

TEST_F(PlanCacheTest, InvalidateAndClearDropEntries) {
  ASSERT_TRUE(cache_.GetOrBuild(Spec("GibKompNr"), systems_, model_).ok());
  ASSERT_TRUE(cache_.GetOrBuild(Spec("GetSuppQual"), systems_, model_).ok());
  EXPECT_EQ(cache_.size(), 2u);
  EXPECT_TRUE(cache_.Invalidate("gibkompnr"));
  EXPECT_FALSE(cache_.Invalidate("gibkompnr"));
  EXPECT_EQ(cache_.Lookup("GibKompNr"), nullptr);
  cache_.Clear();
  EXPECT_EQ(cache_.size(), 0u);
}

TEST_F(PlanCacheTest, ReportsMetricsWhenAttached) {
  obs::MetricsRegistry metrics;
  cache_.AttachMetrics(&metrics);
  const federation::FederatedFunctionSpec spec = Spec("GetSuppQual");
  ASSERT_TRUE(cache_.GetOrBuild(spec, systems_, model_).ok());
  ASSERT_TRUE(cache_.GetOrBuild(spec, systems_, model_).ok());
  EXPECT_EQ(metrics.counter("cache.plan.miss"), 1u);
  EXPECT_EQ(metrics.counter("cache.plan.compile"), 1u);
  EXPECT_EQ(metrics.counter("cache.plan.hit"), 1u);
}

}  // namespace
}  // namespace fedflow::cache
