#include <gtest/gtest.h>

#include "sql/parser.h"
#include "wfms/condition.h"
#include "wfms/container.h"

namespace fedflow::wfms {
namespace {

TEST(ContainerTest, SetGetAndOverwrite) {
  Container c;
  c.Set("A", Container::WrapScalar("v", Value::Int(1)));
  EXPECT_TRUE(c.Has("a"));  // case-insensitive
  c.Set("a", Container::WrapScalar("v", Value::Int(2)));
  auto t = c.Get("A");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->rows()[0][0].AsInt(), 2);
  EXPECT_EQ(c.Names().size(), 1u);
}

TEST(ContainerTest, GetMissingFails) {
  Container c;
  auto t = c.Get("nope");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(ContainerTest, WrapScalarBuilds1x1Table) {
  Table t = Container::WrapScalar("x", Value::Varchar("v"));
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.schema().column(0).name, "x");
  EXPECT_EQ(t.schema().column(0).type, DataType::kVarchar);
}

TEST(ContainerTest, WrapNullScalarDefaultsVarchar) {
  Table t = Container::WrapScalar("x", Value::Null());
  EXPECT_EQ(t.schema().column(0).type, DataType::kVarchar);
  EXPECT_TRUE(t.rows()[0][0].is_null());
}

TEST(ContainerTest, ExtractScalarRequiresSingleRow) {
  Schema s;
  s.AddColumn("v", DataType::kInt);
  Table t(s);
  EXPECT_FALSE(Container::ExtractScalar(t, "v").ok());
  t.AppendRowUnchecked({Value::Int(1)});
  EXPECT_EQ(Container::ExtractScalar(t, "v")->AsInt(), 1);
  t.AppendRowUnchecked({Value::Int(2)});
  EXPECT_FALSE(Container::ExtractScalar(t, "v").ok());
}

TEST(ContainerTest, ExtractScalarUnknownColumn) {
  Schema s;
  s.AddColumn("v", DataType::kInt);
  Table t(s);
  t.AppendRowUnchecked({Value::Int(1)});
  EXPECT_FALSE(Container::ExtractScalar(t, "w").ok());
}

// --- conditions -------------------------------------------------------------

class ConditionTest : public ::testing::Test {
 protected:
  Result<Value> Eval(const std::string& text) {
    auto expr = sql::ParseExpression(text);
    if (!expr.ok()) return expr.status();
    return EvalCondition(**expr, resolver_);
  }
  Result<bool> EvalBool(const std::string& text) {
    auto expr = sql::ParseExpression(text);
    if (!expr.ok()) return expr.status();
    return EvalConditionBool(**expr, resolver_);
  }

  ConditionResolver resolver_ = [](const std::string& q,
                                   const std::string& n) -> Result<Value> {
    if (q == "A" && n == "x") return Value::Int(7);
    if (q == "A" && n == "s") return Value::Varchar("ok");
    if (q.empty() && n == "ITERATION") return Value::Int(3);
    if (q.empty() && n == "nullv") return Value::Null();
    return Status::NotFound("no " + q + "." + n);
  };
};

TEST_F(ConditionTest, ResolvesQualifiedAndUnqualifiedRefs) {
  EXPECT_EQ(Eval("A.x")->AsInt(), 7);
  EXPECT_EQ(Eval("ITERATION")->AsInt(), 3);
  EXPECT_FALSE(Eval("B.x").ok());
}

TEST_F(ConditionTest, ComparisonAndLogic) {
  EXPECT_TRUE(*EvalBool("A.x > 5 AND ITERATION < 10"));
  EXPECT_FALSE(*EvalBool("A.x > 5 AND ITERATION > 10"));
  EXPECT_TRUE(*EvalBool("A.x = 7 OR 1 = 0"));
  EXPECT_TRUE(*EvalBool("NOT (A.x = 0)"));
  EXPECT_TRUE(*EvalBool("A.s = 'ok'"));
}

TEST_F(ConditionTest, ArithmeticInsideConditions) {
  EXPECT_TRUE(*EvalBool("A.x * 2 = 14"));
  EXPECT_TRUE(*EvalBool("ITERATION + 4 >= A.x"));
  EXPECT_EQ(Eval("A.x % 4")->AsBigInt(), 3);
}

TEST_F(ConditionTest, UnknownCollapsesToFalse) {
  // NULL comparison -> unknown -> the transition does not fire.
  EXPECT_FALSE(*EvalBool("nullv = 1"));
  EXPECT_FALSE(*EvalBool("nullv > 0 AND A.x = 7"));
  EXPECT_TRUE(*EvalBool("nullv IS NULL"));
}

TEST_F(ConditionTest, FunctionCallsRejected) {
  auto r = Eval("UPPER(A.s) = 'OK'");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(ConditionTest, DivisionByZeroSurfaces) {
  EXPECT_FALSE(Eval("A.x / 0 = 1").ok());
}

TEST_F(ConditionTest, ShortCircuit) {
  // Right side would fail (unknown ref), but left decides.
  EXPECT_FALSE(*EvalBool("1 = 0 AND B.broken = 1"));
  EXPECT_TRUE(*EvalBool("1 = 1 OR B.broken = 1"));
}

TEST_F(ConditionTest, NumericTruthiness) {
  EXPECT_TRUE(*EvalBool("1"));
  EXPECT_FALSE(*EvalBool("0"));
  EXPECT_TRUE(*EvalBool("A.x"));
}

TEST_F(ConditionTest, ConcatInCondition) {
  EXPECT_TRUE(*EvalBool("A.s || '!' = 'ok!'"));
}

}  // namespace
}  // namespace fedflow::wfms
