#include "wfms/model.h"

#include <gtest/gtest.h>

#include "wfms/builder.h"

namespace fedflow::wfms {
namespace {

ActivityDef Program(const std::string& name) {
  ActivityDef a;
  a.name = name;
  a.kind = ActivityKind::kProgram;
  a.system = "sys";
  a.function = "fn";
  return a;
}

TEST(ValidateTest, MinimalValidProcess) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.output_activity = "A";
  EXPECT_TRUE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsEmptyProcess) {
  ProcessDefinition def;
  def.name = "p";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsMissingName) {
  ProcessDefinition def;
  def.activities.push_back(Program("A"));
  def.output_activity = "A";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsDuplicateActivityNames) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.activities.push_back(Program("a"));  // case-insensitive duplicate
  def.output_activity = "A";
  auto st = ValidateProcess(def);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
}

TEST(ValidateTest, RejectsUnknownOutputActivity) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.output_activity = "B";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsUnknownConnectorEndpoints) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.output_activity = "A";
  def.connectors.push_back({"A", "Z", nullptr});
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsSelfLoop) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.output_activity = "A";
  def.connectors.push_back({"A", "A", nullptr});
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsControlFlowCycle) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.activities.push_back(Program("B"));
  def.output_activity = "B";
  def.connectors.push_back({"A", "B", nullptr});
  def.connectors.push_back({"B", "A", nullptr});
  auto st = ValidateProcess(def);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cycle"), std::string::npos);
}

TEST(ValidateTest, RejectsDataFlowWithoutControlPath) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  ActivityDef b = Program("B");
  b.inputs.push_back(InputSource::FromActivity("A", "v"));
  def.activities.push_back(std::move(b));
  def.output_activity = "B";
  // No connector A -> B: B could start before A's output exists.
  auto st = ValidateProcess(def);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("control path"), std::string::npos);
  def.connectors.push_back({"A", "B", nullptr});
  EXPECT_TRUE(ValidateProcess(def).ok());
}

TEST(ValidateTest, TransitiveControlPathSuffices) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("A"));
  def.activities.push_back(Program("B"));
  ActivityDef c = Program("C");
  c.inputs.push_back(InputSource::FromActivity("A", "v"));
  def.activities.push_back(std::move(c));
  def.output_activity = "C";
  def.connectors.push_back({"A", "B", nullptr});
  def.connectors.push_back({"B", "C", nullptr});
  EXPECT_TRUE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsUnknownProcessInput) {
  ProcessDefinition def;
  def.name = "p";
  ActivityDef a = Program("A");
  a.inputs.push_back(InputSource::FromProcessInput("missing"));
  def.activities.push_back(std::move(a));
  def.output_activity = "A";
  EXPECT_FALSE(ValidateProcess(def).ok());
  def.input_params.push_back(Column{"missing", DataType::kInt});
  EXPECT_TRUE(ValidateProcess(def).ok());
}

TEST(ValidateTest, RejectsReadingOwnOutput) {
  ProcessDefinition def;
  def.name = "p";
  ActivityDef a = Program("A");
  a.inputs.push_back(InputSource::FromActivity("A", "v"));
  def.activities.push_back(std::move(a));
  def.output_activity = "A";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, ProgramNeedsSystemAndFunction) {
  ProcessDefinition def;
  def.name = "p";
  ActivityDef a;
  a.name = "A";
  a.kind = ActivityKind::kProgram;
  def.activities.push_back(std::move(a));
  def.output_activity = "A";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, HelperNeedsHelperName) {
  ProcessDefinition def;
  def.name = "p";
  ActivityDef a;
  a.name = "A";
  a.kind = ActivityKind::kHelper;
  def.activities.push_back(std::move(a));
  def.output_activity = "A";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, BlockNeedsSubProcessAndMatchingArity) {
  auto sub = std::make_shared<ProcessDefinition>();
  sub->name = "sub";
  sub->input_params.push_back(Column{"x", DataType::kInt});
  sub->activities.push_back(Program("Inner"));
  sub->output_activity = "Inner";

  ProcessDefinition def;
  def.name = "p";
  ActivityDef block;
  block.name = "B";
  block.kind = ActivityKind::kBlock;
  def.activities.push_back(block);
  def.output_activity = "B";
  EXPECT_FALSE(ValidateProcess(def).ok());  // no sub

  def.activities[0].sub = sub;
  EXPECT_FALSE(ValidateProcess(def).ok());  // arity mismatch (0 vs 1)

  def.activities[0].inputs.push_back(InputSource::Constant(Value::Int(1)));
  EXPECT_TRUE(ValidateProcess(def).ok());

  def.activities[0].max_iterations = 0;
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ValidateTest, InvalidSubProcessSurfaces) {
  auto sub = std::make_shared<ProcessDefinition>();
  sub->name = "sub";  // no activities -> invalid
  ProcessDefinition def;
  def.name = "p";
  ActivityDef block;
  block.name = "B";
  block.kind = ActivityKind::kBlock;
  block.sub = sub;
  def.activities.push_back(std::move(block));
  def.output_activity = "B";
  EXPECT_FALSE(ValidateProcess(def).ok());
}

TEST(ProcessDefinitionTest, FindActivityCaseInsensitive) {
  ProcessDefinition def;
  def.name = "p";
  def.activities.push_back(Program("Alpha"));
  auto a = def.FindActivity("ALPHA");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->name, "Alpha");
  EXPECT_FALSE(def.FindActivity("beta").ok());
  EXPECT_EQ(*def.ActivityIndex("alpha"), 0u);
}

TEST(BuilderTest, BuildsAndValidates) {
  ProcessBuilder b("proc");
  b.Input("x", DataType::kInt);
  b.Program("A", "sys", "fn", {InputSource::FromProcessInput("x")});
  b.Program("B", "sys", "fn", {InputSource::FromActivity("A", "v")});
  b.Connect("A", "B");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->activities.size(), 2u);
  EXPECT_EQ(def->connectors.size(), 1u);
}

TEST(BuilderTest, ParsesConditions) {
  ProcessBuilder b("proc");
  b.Program("A", "sys", "fn", {});
  b.Program("B", "sys", "fn", {});
  b.Connect("A", "B", "A.v > 3");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok()) << def.status();
  ASSERT_NE(def->connectors[0].condition, nullptr);
  EXPECT_EQ(def->connectors[0].condition->ToSql(), "(A.v > 3)");
}

TEST(BuilderTest, BadConditionFailsBuild) {
  ProcessBuilder b("proc");
  b.Program("A", "sys", "fn", {});
  b.Program("B", "sys", "fn", {});
  b.Connect("A", "B", ">>> nonsense");
  b.Output("B");
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, DefaultOutputIsLastActivity) {
  ProcessBuilder b("proc");
  b.Program("A", "sys", "fn", {});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->output_activity, "A");
}

TEST(BuilderTest, JoinAppliesToLastActivity) {
  ProcessBuilder b("proc");
  b.Program("A", "sys", "fn", {});
  b.Program("B", "sys", "fn", {}).Join(JoinKind::kOr);
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->activities[0].join, JoinKind::kAnd);
  EXPECT_EQ(def->activities[1].join, JoinKind::kOr);
}

}  // namespace
}  // namespace fedflow::wfms
