#include "wfms/fdl.h"

#include <gtest/gtest.h>

namespace fedflow::wfms {
namespace {

constexpr char kBuySuppComp[] = R"(
-- the paper's Fig. 1 process
PROCESS BuySuppComp (SupplierNo INT, CompName VARCHAR)
  PROGRAM GQ SYSTEM stock FUNCTION GetQuality IN (INPUT.SupplierNo)
  PROGRAM GR SYSTEM purchasing FUNCTION GetReliability IN (INPUT.SupplierNo)
  PROGRAM GG SYSTEM purchasing FUNCTION GetGrade IN (GQ.Qual, GR.Relia)
  PROGRAM GCN SYSTEM pdm FUNCTION GetCompNo IN (INPUT.CompName)
  PROGRAM DP SYSTEM purchasing FUNCTION DecidePurchase \
      IN (GG.Grade, GCN.No)
  CONNECT GQ -> GG
  CONNECT GR -> GG
  CONNECT GG -> DP
  CONNECT GCN -> DP
  OUTPUT DP
END
)";

TEST(FdlTest, ParsesFig1Process) {
  auto procs = ParseFdl(kBuySuppComp);
  ASSERT_TRUE(procs.ok()) << procs.status();
  ASSERT_EQ(procs->size(), 1u);
  const ProcessDefinition& p = (*procs)[0];
  EXPECT_EQ(p.name, "BuySuppComp");
  ASSERT_EQ(p.input_params.size(), 2u);
  EXPECT_EQ(p.input_params[1].type, DataType::kVarchar);
  EXPECT_EQ(p.activities.size(), 5u);
  EXPECT_EQ(p.connectors.size(), 4u);
  EXPECT_EQ(p.output_activity, "DP");
  // Data flow parsed: GG reads GQ.Qual.
  auto gg = p.FindActivity("GG");
  ASSERT_TRUE(gg.ok());
  ASSERT_EQ((*gg)->inputs.size(), 2u);
  EXPECT_EQ((*gg)->inputs[0].kind, InputSource::Kind::kActivityOutput);
  EXPECT_EQ((*gg)->inputs[0].activity, "GQ");
  EXPECT_EQ((*gg)->inputs[0].column, "Qual");
}

TEST(FdlTest, LineContinuationSupported) {
  auto procs = ParseFdl(kBuySuppComp);
  ASSERT_TRUE(procs.ok());
  auto dp = (*procs)[0].FindActivity("DP");
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ((*dp)->inputs.size(), 2u);
}

TEST(FdlTest, ConstantsAndWholeTableSources) {
  auto procs = ParseFdl(R"(
PROCESS P (x INT)
  PROGRAM A SYSTEM s FUNCTION f IN (1234, INPUT.x, 'text', -5, 2.5)
  HELPER H USING concat IN (A.*)
  CONNECT A -> H
  OUTPUT H
END
)");
  ASSERT_TRUE(procs.ok()) << procs.status();
  const auto& a = (*procs)[0].activities[0];
  ASSERT_EQ(a.inputs.size(), 5u);
  EXPECT_EQ(a.inputs[0].constant.AsInt(), 1234);
  EXPECT_EQ(a.inputs[2].constant.AsVarchar(), "text");
  EXPECT_EQ(a.inputs[3].constant.AsInt(), -5);
  EXPECT_DOUBLE_EQ(a.inputs[4].constant.AsDouble(), 2.5);
  const auto& h = (*procs)[0].activities[1];
  EXPECT_EQ(h.inputs[0].kind, InputSource::Kind::kActivityOutput);
  EXPECT_EQ(h.inputs[0].column, "");
}

TEST(FdlTest, ConditionsOnConnectors) {
  auto procs = ParseFdl(R"(
PROCESS P ()
  PROGRAM A SYSTEM s FUNCTION f
  PROGRAM B SYSTEM s FUNCTION g JOIN OR
  CONNECT A -> B WHEN A.v > 3 AND A.v < 10
  OUTPUT B
END
)");
  ASSERT_TRUE(procs.ok()) << procs.status();
  ASSERT_NE((*procs)[0].connectors[0].condition, nullptr);
  EXPECT_EQ((*procs)[0].activities[1].join, JoinKind::kOr);
}

TEST(FdlTest, BlockReferencesEarlierProcess) {
  auto procs = ParseFdl(R"(
PROCESS Body (ITERATION INT)
  PROGRAM A SYSTEM s FUNCTION f IN (INPUT.ITERATION)
  OUTPUT A
END
PROCESS Loop (MaxNo INT)
  BLOCK L SUB Body IN (0) UNION MAXITER 500 UNTIL ITERATION >= MaxNo
  OUTPUT L
END
)");
  ASSERT_TRUE(procs.ok()) << procs.status();
  ASSERT_EQ(procs->size(), 2u);
  const ActivityDef& block = (*procs)[1].activities[0];
  EXPECT_EQ(block.kind, ActivityKind::kBlock);
  ASSERT_NE(block.sub, nullptr);
  EXPECT_EQ(block.sub->name, "Body");
  EXPECT_EQ(block.accumulate, BlockAccumulate::kUnionAll);
  EXPECT_EQ(block.max_iterations, 500);
  ASSERT_NE(block.exit_condition, nullptr);
}

TEST(FdlTest, BlockReferencingUnknownProcessFails) {
  auto procs = ParseFdl(R"(
PROCESS Loop (n INT)
  BLOCK L SUB Ghost IN (0)
  OUTPUT L
END
)");
  ASSERT_FALSE(procs.ok());
  EXPECT_NE(procs.status().message().find("Ghost"), std::string::npos);
}

TEST(FdlTest, ErrorsCarryLineNumbers) {
  auto procs = ParseFdl("PROCESS P ()\n  NONSENSE here\nEND\n");
  ASSERT_FALSE(procs.ok());
  EXPECT_NE(procs.status().message().find("line 2"), std::string::npos);
}

TEST(FdlTest, MissingEndFails) {
  auto procs = ParseFdl("PROCESS P ()\n  PROGRAM A SYSTEM s FUNCTION f\n");
  ASSERT_FALSE(procs.ok());
  EXPECT_NE(procs.status().message().find("missing END"), std::string::npos);
}

TEST(FdlTest, StatementOutsideProcessFails) {
  EXPECT_FALSE(ParseFdl("PROGRAM A SYSTEM s FUNCTION f\n").ok());
}

TEST(FdlTest, NestedProcessFails) {
  EXPECT_FALSE(ParseFdl("PROCESS A ()\nPROCESS B ()\nEND\nEND\n").ok());
}

TEST(FdlTest, ValidationRunsAtEnd) {
  // Data flow without a control path must be rejected by END-time validation.
  auto procs = ParseFdl(R"(
PROCESS P ()
  PROGRAM A SYSTEM s FUNCTION f
  PROGRAM B SYSTEM s FUNCTION g IN (A.v)
  OUTPUT B
END
)");
  ASSERT_FALSE(procs.ok());
  EXPECT_NE(procs.status().message().find("control path"), std::string::npos);
}

TEST(FdlTest, DefaultOutputIsLastActivity) {
  auto procs = ParseFdl(R"(
PROCESS P ()
  PROGRAM A SYSTEM s FUNCTION f
  PROGRAM B SYSTEM s FUNCTION g
END
)");
  ASSERT_TRUE(procs.ok()) << procs.status();
  EXPECT_EQ((*procs)[0].output_activity, "B");
}

TEST(FdlTest, RoundTripThroughToFdl) {
  auto procs = ParseFdl(kBuySuppComp);
  ASSERT_TRUE(procs.ok());
  std::string emitted = ToFdl((*procs)[0]);
  auto reparsed = ParseFdl(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << emitted;
  EXPECT_EQ(ToFdl((*reparsed)[0]), emitted);
}

TEST(FdlTest, RoundTripWithBlocksEmitsSubProcessFirst) {
  auto procs = ParseFdl(R"(
PROCESS Body (ITERATION INT)
  PROGRAM A SYSTEM s FUNCTION f IN (INPUT.ITERATION)
  OUTPUT A
END
PROCESS Loop (MaxNo INT)
  BLOCK L SUB Body IN (0) UNION UNTIL ITERATION >= MaxNo
  OUTPUT L
END
)");
  ASSERT_TRUE(procs.ok()) << procs.status();
  std::string emitted = ToFdl((*procs)[1]);
  EXPECT_LT(emitted.find("PROCESS Body"), emitted.find("PROCESS Loop"));
  auto reparsed = ParseFdl(emitted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << emitted;
  EXPECT_EQ(reparsed->size(), 2u);
}

}  // namespace
}  // namespace fedflow::wfms
