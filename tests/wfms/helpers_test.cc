#include "wfms/helpers.h"

#include <gtest/gtest.h>

namespace fedflow::wfms {
namespace {

Table OneRow(std::vector<std::pair<std::string, Value>> cells) {
  Schema s;
  Row row;
  for (auto& [name, v] : cells) {
    s.AddColumn(name, v.is_null() ? DataType::kVarchar : v.type());
    row.push_back(v);
  }
  Table t(s);
  t.AppendRowUnchecked(std::move(row));
  return t;
}

TEST(HelpersTest, IdentityReturnsInput) {
  Table in = OneRow({{"x", Value::Int(1)}});
  auto out = MakeIdentityHelper()({in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
  EXPECT_FALSE(MakeIdentityHelper()({in, in}).ok());
}

TEST(HelpersTest, CastChangesColumnTypeKeepingOthers) {
  Table in = OneRow({{"a", Value::Int(5)}, {"b", Value::Varchar("x")}});
  auto out = MakeCastHelper("a", DataType::kBigInt)({in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().column(0).type, DataType::kBigInt);
  EXPECT_EQ(out->schema().column(1).type, DataType::kVarchar);
  EXPECT_EQ(out->rows()[0][0].AsBigInt(), 5);
}

TEST(HelpersTest, CastUnknownColumnFails) {
  Table in = OneRow({{"a", Value::Int(5)}});
  EXPECT_FALSE(MakeCastHelper("zz", DataType::kBigInt)({in}).ok());
}

TEST(HelpersTest, CastFailureSurfaces) {
  Table in = OneRow({{"a", Value::Varchar("not a number")}});
  EXPECT_FALSE(MakeCastHelper("a", DataType::kInt)({in}).ok());
}

TEST(HelpersTest, RenameReplacesColumnNames) {
  Table in = OneRow({{"a", Value::Int(1)}, {"b", Value::Int(2)}});
  auto out = MakeRenameHelper({"x", "y"})({in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().column(0).name, "x");
  EXPECT_FALSE(MakeRenameHelper({"only_one"})({in}).ok());
}

TEST(HelpersTest, ConcatCombinesSingleRows) {
  Table a = OneRow({{"x", Value::Int(1)}});
  Table b = OneRow({{"y", Value::Varchar("v")}});
  auto out = MakeConcatHelper()({a, b});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().num_columns(), 2u);
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->rows()[0][1].AsVarchar(), "v");
}

TEST(HelpersTest, ConcatRejectsMultiRowInput) {
  Table a = OneRow({{"x", Value::Int(1)}});
  Table multi = a;
  multi.AppendRowUnchecked({Value::Int(2)});
  EXPECT_FALSE(MakeConcatHelper()({multi}).ok());
  EXPECT_FALSE(MakeConcatHelper()({}).ok());
}

TEST(HelpersTest, UnionAllStacksRows) {
  Table a = OneRow({{"x", Value::Int(1)}});
  Table b = OneRow({{"x", Value::Int(2)}});
  auto out = MakeUnionAllHelper()({a, b});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
}

TEST(HelpersTest, UnionAllSkipsDeadBranchPlaceholders) {
  Table a = OneRow({{"x", Value::Int(1)}});
  Table dead;  // zero columns = dead-path placeholder
  auto out = MakeUnionAllHelper()({dead, a});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);
  auto all_dead = MakeUnionAllHelper()({dead});
  ASSERT_TRUE(all_dead.ok());
  EXPECT_EQ(all_dead->num_rows(), 0u);
}

TEST(HelpersTest, UnionAllArityMismatchFails) {
  Table a = OneRow({{"x", Value::Int(1)}});
  Table b = OneRow({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  EXPECT_FALSE(MakeUnionAllHelper()({a, b}).ok());
}

TEST(HelpersTest, JoinMatchesEqualKeys) {
  Schema ls;
  ls.AddColumn("SubCompNo", DataType::kInt);
  Table left(ls);
  left.AppendRowUnchecked({Value::Int(1)});
  left.AppendRowUnchecked({Value::Int(2)});
  left.AppendRowUnchecked({Value::Int(3)});
  Schema rs;
  rs.AddColumn("CompNo", DataType::kInt);
  rs.AddColumn("SupplierNo", DataType::kInt);
  Table right(rs);
  right.AppendRowUnchecked({Value::Int(2), Value::Int(100)});
  right.AppendRowUnchecked({Value::Int(2), Value::Int(200)});
  right.AppendRowUnchecked({Value::Int(9), Value::Int(300)});

  auto out = MakeJoinHelper("SubCompNo", "CompNo")({left, right});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->schema().num_columns(), 3u);
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->rows()[0][0].AsInt(), 2);
}

TEST(HelpersTest, JoinAcrossNumericWidths) {
  Schema ls;
  ls.AddColumn("k", DataType::kInt);
  Table left(ls);
  left.AppendRowUnchecked({Value::Int(7)});
  Schema rs;
  rs.AddColumn("k2", DataType::kBigInt);
  Table right(rs);
  right.AppendRowUnchecked({Value::BigInt(7)});
  auto out = MakeJoinHelper("k", "k2")({left, right});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1u);
}

TEST(HelpersTest, JoinNullKeysNeverMatch) {
  Schema s;
  s.AddColumn("k", DataType::kInt);
  Table left(s);
  left.AppendRowUnchecked({Value::Null()});
  Table right(s);
  right.AppendRowUnchecked({Value::Null()});
  auto out = MakeJoinHelper("k", "k")({left, right});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
}

TEST(HelpersTest, JoinRequiresTwoInputsAndKnownColumns) {
  Table a = OneRow({{"x", Value::Int(1)}});
  EXPECT_FALSE(MakeJoinHelper("x", "x")({a}).ok());
  EXPECT_FALSE(MakeJoinHelper("zz", "x")({a, a}).ok());
}

TEST(HelpersTest, ProjectSelectsAndReorders) {
  Table in = OneRow({{"a", Value::Int(1)}, {"b", Value::Int(2)},
                     {"c", Value::Int(3)}});
  auto out = MakeProjectHelper({"c", "a"})({in});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().column(0).name, "c");
  EXPECT_EQ(out->rows()[0][0].AsInt(), 3);
  EXPECT_EQ(out->rows()[0][1].AsInt(), 1);
  EXPECT_FALSE(MakeProjectHelper({"zz"})({in}).ok());
}

TEST(HelpersTest, ConstIgnoresInputs) {
  auto out = MakeConstHelper("k", Value::Varchar("c"))({});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows()[0][0].AsVarchar(), "c");
}

}  // namespace
}  // namespace fedflow::wfms
