#include "wfms/engine.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <map>
#include <mutex>

#include "wfms/builder.h"
#include "wfms/helpers.h"

namespace fedflow::wfms {
namespace {

/// Scriptable invoker: each function maps to a handler plus a fixed duration.
class FakeInvoker : public ProgramInvoker {
 public:
  using Handler =
      std::function<Result<Table>(const std::vector<Value>& args)>;

  void Define(const std::string& fn, VDuration duration, Handler handler) {
    handlers_[fn] = {duration, std::move(handler)};
  }

  /// Convenience: fn(args) returns one row {col: args[0] + delta}.
  void DefineAddOne(const std::string& fn, VDuration duration,
                    const std::string& col = "v") {
    Define(fn, duration, [col](const std::vector<Value>& args) {
      Schema s;
      s.AddColumn(col, DataType::kInt);
      Table t(s);
      t.AppendRowUnchecked({Value::Int(args.empty() ? 1 : args[0].AsInt() + 1)});
      return t;
    });
  }

  Result<InvokeResult> Invoke(const std::string& system,
                              const std::string& function,
                              const std::vector<Value>& args) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      calls_.emplace_back(system, function);
    }
    auto it = handlers_.find(function);
    if (it == handlers_.end()) {
      return Status::NotFound("fake function not defined: " + function);
    }
    FEDFLOW_ASSIGN_OR_RETURN(Table out, it->second.second(args));
    InvokeResult r;
    r.output = std::move(out);
    r.duration = it->second.first;
    r.steps.Add(steps::kProcessActivities, it->second.first);
    return r;
  }

  std::vector<std::pair<std::string, std::string>> calls() {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

 private:
  std::map<std::string, std::pair<VDuration, Handler>> handlers_;
  std::mutex mu_;
  std::vector<std::pair<std::string, std::string>> calls_;
};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(EngineOptions{}) {}

  Engine engine_;
  FakeInvoker invoker_;
};

TEST_F(EngineTest, SequentialChainComputesAdditiveTime) {
  invoker_.DefineAddOne("f1", 100);
  invoker_.DefineAddOne("f2", 200);
  ProcessBuilder b("chain");
  b.Input("x", DataType::kInt);
  b.Program("A", "sys", "f1", {InputSource::FromProcessInput("x")});
  b.Program("B", "sys", "f2", {InputSource::FromActivity("A", "v")});
  b.Connect("A", "B");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {Value::Int(5)}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 7);
  EXPECT_EQ(result->elapsed_us, 300);
  EXPECT_EQ(result->breakdown.Of(steps::kProcessActivities), 300);
}

TEST_F(EngineTest, ParallelForkElapsedIsMaxNotSum) {
  invoker_.DefineAddOne("slow", 1000, "a");
  invoker_.DefineAddOne("fast", 100, "b");
  ProcessBuilder b("fork");
  b.Input("x", DataType::kInt);
  b.Program("S", "sys", "slow", {InputSource::FromProcessInput("x")});
  b.Program("F", "sys", "fast", {InputSource::FromProcessInput("x")});
  b.Helper("J", "concat",
           {InputSource::FromActivity("S", ""),
            InputSource::FromActivity("F", "")});
  b.Connect("S", "J");
  b.Connect("F", "J");
  b.Output("J");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {Value::Int(1)}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  // Elapsed: max(1000, 100) = 1000, not 1100. Work records 1100.
  EXPECT_EQ(result->elapsed_us, 1000);
  EXPECT_EQ(result->breakdown.Of(steps::kProcessActivities), 1100);
  // Concat produced one row with both columns.
  EXPECT_EQ(result->output.schema().num_columns(), 2u);
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 2);
}

TEST_F(EngineTest, NavigationAndContainerCostsCharged) {
  EngineOptions opts;
  opts.navigation_cost_us = 10;
  opts.container_cost_us = 5;
  Engine engine(opts);
  invoker_.DefineAddOne("f", 100);
  ProcessBuilder b("p");
  b.Program("A", "sys", "f", {InputSource::Constant(Value::Int(1))});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine.RunDefinition(*def, {}, &invoker_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->elapsed_us, 115);
  EXPECT_EQ(result->breakdown.Of(steps::kWorkflowNavigation), 10);
  EXPECT_EQ(result->breakdown.Of(steps::kProcessActivities), 105);
}

TEST_F(EngineTest, TransitionConditionRoutesFlow) {
  invoker_.DefineAddOne("src", 10);
  invoker_.DefineAddOne("then", 10, "t");
  invoker_.DefineAddOne("else", 10, "e");
  ProcessBuilder b("route");
  b.Input("x", DataType::kInt);
  b.Program("A", "sys", "src", {InputSource::FromProcessInput("x")});
  b.Program("T", "sys", "then", {InputSource::Constant(Value::Int(0))});
  b.Program("E", "sys", "else", {InputSource::Constant(Value::Int(0))});
  b.Helper("OUT", "union_all",
           {InputSource::FromActivity("T", ""),
            InputSource::FromActivity("E", "")});
  b.Join(JoinKind::kOr);
  b.Connect("A", "T", "A.v > 100");
  b.Connect("A", "E", "A.v <= 100");
  b.Connect("T", "OUT");
  b.Connect("E", "OUT");
  b.Output("E");
  auto def = b.Build();
  ASSERT_TRUE(def.ok()) << def.status();
  auto result = engine_.RunDefinition(*def, {Value::Int(5)}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  // A.v = 6 <= 100: E ran, T was dead-path eliminated.
  bool t_dead = false, e_ran = false;
  for (const AuditEntry& entry : result->audit.entries()) {
    if (entry.activity == "T" && entry.event == AuditEvent::kActivityDead) {
      t_dead = true;
    }
    if (entry.activity == "E" &&
        entry.event == AuditEvent::kActivityFinished) {
      e_ran = true;
    }
  }
  EXPECT_TRUE(t_dead);
  EXPECT_TRUE(e_ran);
}

TEST_F(EngineTest, DeadPathPropagatesThroughAndJoin) {
  invoker_.DefineAddOne("f", 10);
  ProcessBuilder b("deadchain");
  b.Program("A", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Program("B", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Program("C", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Connect("A", "B", "1 = 0");  // never true
  b.Connect("B", "C");           // C AND-joins on dead B
  b.Output("A");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  int dead = 0;
  for (const AuditEntry& entry : result->audit.entries()) {
    if (entry.event == AuditEvent::kActivityDead) ++dead;
  }
  EXPECT_EQ(dead, 2);  // B and C
}

TEST_F(EngineTest, DeadOutputActivityIsAnError) {
  invoker_.DefineAddOne("f", 10);
  ProcessBuilder b("deadout");
  b.Program("A", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Program("B", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Connect("A", "B", "1 = 0");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("dead-path"), std::string::npos);
}

TEST_F(EngineTest, OrJoinFiresOnFirstTrueEdge) {
  invoker_.DefineAddOne("f", 10);
  ProcessBuilder b("orjoin");
  b.Program("A", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Program("B", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Program("C", "sys", "f", {InputSource::Constant(Value::Int(7))});
  b.Join(JoinKind::kOr);
  b.Connect("A", "C");
  b.Connect("B", "C", "1 = 0");
  b.Output("C");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 8);
}

TEST_F(EngineTest, ActivityFailureAbortsProcess) {
  invoker_.DefineAddOne("ok", 10);
  invoker_.Define("boom", 10, [](const std::vector<Value>&) -> Result<Table> {
    return Status::ExecutionError("kaput");
  });
  ProcessBuilder b("failing");
  b.Program("A", "sys", "ok", {InputSource::Constant(Value::Int(1))});
  b.Program("B", "sys", "boom", {InputSource::FromActivity("A", "v")});
  b.Connect("A", "B");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("kaput"), std::string::npos);
  EXPECT_NE(result.status().message().find("activity B"), std::string::npos);
}

TEST_F(EngineTest, MissingInvokerForProgramActivities) {
  ProcessBuilder b("noinv");
  b.Program("A", "sys", "f", {});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, nullptr);
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, HelperOnlyProcessNeedsNoInvoker) {
  ProcessBuilder b("helpers");
  b.Helper("C", "constant_five", {});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(engine_
                  .RegisterHelper("constant_five",
                                  MakeConstHelper("v", Value::Int(5)))
                  .ok());
  auto result = engine_.RunDefinition(*def, {}, nullptr);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 5);
}

TEST_F(EngineTest, UnknownHelperFails) {
  ProcessBuilder b("nohelper");
  b.Helper("H", "does_not_exist", {});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ProcessInputArityAndCoercion) {
  invoker_.DefineAddOne("f", 10);
  ProcessBuilder b("inputs");
  b.Input("x", DataType::kInt);
  b.Program("A", "sys", "f", {InputSource::FromProcessInput("x")});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  EXPECT_FALSE(engine_.RunDefinition(*def, {}, &invoker_).ok());
  EXPECT_FALSE(
      engine_.RunDefinition(*def, {Value::Int(1), Value::Int(2)}, &invoker_)
          .ok());
  // VARCHAR '41' coerces to INT 41.
  auto result =
      engine_.RunDefinition(*def, {Value::Varchar("41")}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 42);
}

TEST_F(EngineTest, ScalarInputFromMultiRowOutputFails) {
  invoker_.Define("multi", 10, [](const std::vector<Value>&) {
    Schema s;
    s.AddColumn("v", DataType::kInt);
    Table t(s);
    t.AppendRowUnchecked({Value::Int(1)});
    t.AppendRowUnchecked({Value::Int(2)});
    return Result<Table>(t);
  });
  invoker_.DefineAddOne("g", 10);
  ProcessBuilder b("multirow");
  b.Program("A", "sys", "multi", {});
  b.Program("B", "sys", "g", {InputSource::FromActivity("A", "v")});
  b.Connect("A", "B");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("exactly one row"),
            std::string::npos);
}

TEST_F(EngineTest, RegisteredProcessRunsByName) {
  invoker_.DefineAddOne("f", 10);
  ProcessBuilder b("registered");
  b.Program("A", "sys", "f", {InputSource::Constant(Value::Int(1))});
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(engine_.RegisterProcess(*def).ok());
  EXPECT_FALSE(engine_.RegisterProcess(*def).ok());  // duplicate
  auto result = engine_.Run("REGISTERED", {}, &invoker_);  // case-insensitive
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(engine_.Run("ghost", {}, &invoker_).ok());
  EXPECT_TRUE(engine_.GetProcess("registered").ok());
}

TEST_F(EngineTest, AuditTrailRecordsLifecycle) {
  invoker_.DefineAddOne("f", 50);
  ProcessBuilder b("audited");
  b.Program("A", "sys", "f", {InputSource::Constant(Value::Int(1))});
  b.Program("B", "sys", "f", {InputSource::FromActivity("A", "v")});
  b.Connect("A", "B");
  b.Output("B");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_TRUE(result.ok());
  const auto& entries = result->audit.entries();
  ASSERT_GE(entries.size(), 6u);
  EXPECT_EQ(entries.front().event, AuditEvent::kProcessStarted);
  EXPECT_EQ(entries.back().event, AuditEvent::kProcessFinished);
  auto b_events = result->audit.ForActivity("B");
  ASSERT_EQ(b_events.size(), 2u);
  EXPECT_EQ(b_events[0].event, AuditEvent::kActivityStarted);
  EXPECT_EQ(b_events[0].time, 50);
  EXPECT_EQ(b_events[1].time, 100);
}

// --- blocks / loops ----------------------------------------------------------

class BlockTest : public EngineTest {
 protected:
  std::shared_ptr<ProcessDefinition> MakeBody(bool with_n = false) {
    invoker_.Define("item", 100, [](const std::vector<Value>& args) {
      Schema s;
      s.AddColumn("v", DataType::kInt);
      Table t(s);
      t.AppendRowUnchecked({Value::Int(args[0].AsInt() * 10)});
      return Result<Table>(t);
    });
    ProcessBuilder b("body");
    if (with_n) b.Input("n", DataType::kInt);
    b.Input("ITERATION", DataType::kInt);
    b.Program("Item", "sys", "item",
              {InputSource::FromProcessInput("ITERATION")});
    auto def = b.BuildShared();
    EXPECT_TRUE(def.ok());
    return def.ok() ? *def : nullptr;
  }

  /// Block inputs for a body built with with_n=true.
  std::vector<InputSource> NBlockInputs() {
    return {InputSource::FromProcessInput("n"),
            InputSource::Constant(Value::Int(0))};
  }
};

TEST_F(BlockTest, DoUntilLoopUnionsIterations) {
  ProcessBuilder b("loop");
  b.Input("n", DataType::kInt);
  b.Block("L", MakeBody(/*with_n=*/true), NBlockInputs(),
          "ITERATION >= n", BlockAccumulate::kUnionAll);
  auto def = b.Build();
  ASSERT_TRUE(def.ok()) << def.status();
  auto result = engine_.RunDefinition(*def, {Value::Int(4)}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->output.num_rows(), 4u);
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 10);
  EXPECT_EQ(result->output.rows()[3][0].AsInt(), 40);
}

TEST_F(BlockTest, LastIterationAccumulateKeepsFinalOutput) {
  ProcessBuilder b("loop");
  b.Input("n", DataType::kInt);
  b.Block("L", MakeBody(/*with_n=*/true), NBlockInputs(),
          "ITERATION >= n", BlockAccumulate::kLastIteration);
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {Value::Int(3)}, &invoker_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.num_rows(), 1u);
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 30);
}

TEST_F(BlockTest, LoopTimeScalesLinearly) {
  ProcessBuilder b("loop");
  b.Input("n", DataType::kInt);
  b.Block("L", MakeBody(/*with_n=*/true), NBlockInputs(),
          "ITERATION >= n", BlockAccumulate::kUnionAll);
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto t2 = engine_.RunDefinition(*def, {Value::Int(2)}, &invoker_);
  auto t8 = engine_.RunDefinition(*def, {Value::Int(8)}, &invoker_);
  ASSERT_TRUE(t2.ok() && t8.ok());
  EXPECT_EQ(t8->elapsed_us, 4 * t2->elapsed_us);
}

TEST_F(BlockTest, NoExitConditionRunsOnce) {
  ProcessBuilder b("once");
  b.Block("L", MakeBody(), {InputSource::Constant(Value::Int(7))});
  // body has one param (ITERATION), overridden per iteration
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->output.rows()[0][0].AsInt(), 10);  // ITERATION=1 override
}

TEST_F(BlockTest, MaxIterationsGuard) {
  ProcessBuilder b("runaway");
  b.Block("L", MakeBody(), {InputSource::Constant(Value::Int(0))},
          "1 = 0", BlockAccumulate::kLastIteration, /*max_iterations=*/5);
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_iterations"),
            std::string::npos);
}

TEST_F(BlockTest, LoopIterationsAudited) {
  ProcessBuilder b("loop");
  b.Input("n", DataType::kInt);
  b.Block("L", MakeBody(/*with_n=*/true), NBlockInputs(),
          "ITERATION >= n", BlockAccumulate::kUnionAll);
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {Value::Int(3)}, &invoker_);
  ASSERT_TRUE(result.ok());
  int iterations = 0;
  for (const AuditEntry& e : result->audit.entries()) {
    if (e.event == AuditEvent::kLoopIteration) ++iterations;
  }
  EXPECT_EQ(iterations, 3);
}

TEST_F(EngineTest, ParallelActivitiesReallyRunConcurrently) {
  // Two activities that each block until the other has started: only
  // possible if the engine really executes them on different threads.
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  auto barrier = [&](const std::vector<Value>&) -> Result<Table> {
    std::unique_lock<std::mutex> lock(mu);
    ++started;
    cv.notify_all();
    if (!cv.wait_for(lock, std::chrono::seconds(10),
                     [&] { return started >= 2; })) {
      return Status::ExecutionError("barrier timeout");
    }
    Schema s;
    s.AddColumn("v", DataType::kInt);
    Table t(s);
    t.AppendRowUnchecked({Value::Int(1)});
    return t;
  };
  invoker_.Define("b1", 10, barrier);
  invoker_.Define("b2", 10, barrier);
  ProcessBuilder b("concurrent");
  b.Program("A", "sys", "b1", {});
  b.Program("B", "sys", "b2", {});
  b.Helper("J", "concat",
           {InputSource::FromActivity("A", ""),
            InputSource::FromActivity("B", "")});
  b.Connect("A", "J");
  b.Connect("B", "J");
  b.Output("J");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  auto result = engine_.RunDefinition(*def, {}, &invoker_);
  ASSERT_TRUE(result.ok()) << result.status();
}

// --- Forward recovery -------------------------------------------------------

/// Counts audit entries of `event` in `trail`.
int CountEvents(const AuditTrail& trail, AuditEvent event) {
  int n = 0;
  for (const AuditEntry& e : trail.entries()) {
    if (e.event == event) ++n;
  }
  return n;
}

class RecoveryTest : public EngineTest {
 protected:
  /// Registers chain A(100) -> B(200) -> C(300) whose middle activity fails
  /// `fail_b_times` times before succeeding.
  void RegisterChain(int fail_b_times) {
    invoker_.DefineAddOne("f_a", 100);
    auto remaining = std::make_shared<int>(fail_b_times);
    invoker_.Define("f_b", 200, [remaining](const std::vector<Value>& args) {
      if (*remaining > 0) {
        --*remaining;
        return Result<Table>(Status::Unavailable("flaky backend"));
      }
      Schema s;
      s.AddColumn("v", DataType::kInt);
      Table t(s);
      t.AppendRowUnchecked({Value::Int(args[0].AsInt() + 1)});
      return Result<Table>(std::move(t));
    });
    invoker_.DefineAddOne("f_c", 300);
    ProcessBuilder b("chain");
    b.Input("x", DataType::kInt);
    b.Program("A", "sys", "f_a", {InputSource::FromProcessInput("x")});
    b.Program("B", "sys", "f_b", {InputSource::FromActivity("A", "v")});
    b.Program("C", "sys", "f_c", {InputSource::FromActivity("B", "v")});
    b.Connect("A", "B");
    b.Connect("B", "C");
    b.Output("C");
    auto def = b.Build();
    ASSERT_TRUE(def.ok());
    ASSERT_TRUE(engine_.RegisterProcess(*def).ok());
  }

  /// Program-activity invocations so far, by function name.
  int Calls(const std::string& fn) {
    int n = 0;
    for (const auto& [system, function] : invoker_.calls()) {
      if (function == fn) ++n;
    }
    return n;
  }
};

TEST_F(RecoveryTest, FailurePersistsCompletedActivitiesInCheckpoint) {
  RegisterChain(/*fail_b_times=*/1);
  InstanceCheckpoint ckpt;
  auto failed =
      engine_.RunRecoverable("chain", {Value::Int(5)}, &invoker_, &ckpt);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(ckpt.valid);
  EXPECT_EQ(ckpt.process, "chain");
  ASSERT_EQ(ckpt.completed.size(), 1u);
  EXPECT_EQ(ckpt.completed[0].activity, "A");
  EXPECT_EQ(ckpt.completed[0].end_us, 100);
  EXPECT_EQ(ckpt.completed[0].output.rows()[0][0].AsInt(), 6);
  EXPECT_EQ(ckpt.failed_at_us, 100);
  EXPECT_EQ(ckpt.attempt_work.Of(steps::kProcessActivities), 100)
      << "the failed activity charges no work";
  EXPECT_EQ(CountEvents(ckpt.audit, AuditEvent::kActivityCheckpointed), 1);
  EXPECT_EQ(CountEvents(ckpt.audit, AuditEvent::kActivityFailed), 1);
}

TEST_F(RecoveryTest, ResumeReExecutesOnlyFailedAndUnrunActivities) {
  RegisterChain(/*fail_b_times=*/1);
  InstanceCheckpoint ckpt;
  ASSERT_FALSE(
      engine_.RunRecoverable("chain", {Value::Int(5)}, &invoker_, &ckpt).ok());
  EXPECT_EQ(Calls("f_a"), 1);
  EXPECT_EQ(Calls("f_b"), 1);
  EXPECT_EQ(Calls("f_c"), 0);

  auto resumed = engine_.ResumeFrom(ckpt, &invoker_);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->output.rows()[0][0].AsInt(), 8);
  // A was restored from the checkpoint, not re-executed.
  EXPECT_EQ(Calls("f_a"), 1);
  EXPECT_EQ(Calls("f_b"), 2);
  EXPECT_EQ(Calls("f_c"), 1);
  // elapsed_us spans the whole instance timeline...
  EXPECT_EQ(resumed->elapsed_us, 600);
  // ...while the breakdown holds only the new work (B + C, not A).
  EXPECT_EQ(resumed->breakdown.Of(steps::kProcessActivities), 500);
  EXPECT_EQ(CountEvents(resumed->audit, AuditEvent::kProcessResumed), 1);
  // Success invalidates the checkpoint.
  EXPECT_FALSE(ckpt.valid);
}

TEST_F(RecoveryTest, SiblingBranchesRunToCompletionAndAreCheckpointed) {
  // Deterministic failure semantics: a failing activity does not cancel
  // independent branches, so the checkpoint content is the same regardless
  // of thread timing — the slow sibling is persisted, the failed branch and
  // the join are not.
  invoker_.DefineAddOne("slow_ok", 1000, "a");
  auto remaining = std::make_shared<int>(1);
  invoker_.Define("fail_once", 10, [remaining](const std::vector<Value>&) {
    if (*remaining > 0) {
      --*remaining;
      return Result<Table>(Status::Unavailable("flaky"));
    }
    Schema s;
    s.AddColumn("b", DataType::kInt);
    Table t(s);
    t.AppendRowUnchecked({Value::Int(7)});
    return Result<Table>(std::move(t));
  });
  ProcessBuilder b("fork");
  b.Input("x", DataType::kInt);
  b.Program("S", "sys", "slow_ok", {InputSource::FromProcessInput("x")});
  b.Program("F", "sys", "fail_once", {InputSource::FromProcessInput("x")});
  b.Helper("J", "concat",
           {InputSource::FromActivity("S", ""),
            InputSource::FromActivity("F", "")});
  b.Connect("S", "J");
  b.Connect("F", "J");
  b.Output("J");
  auto def = b.Build();
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(engine_.RegisterProcess(*def).ok());

  InstanceCheckpoint ckpt;
  ASSERT_FALSE(
      engine_.RunRecoverable("fork", {Value::Int(1)}, &invoker_, &ckpt).ok());
  ASSERT_TRUE(ckpt.valid);
  ASSERT_EQ(ckpt.completed.size(), 1u);
  EXPECT_EQ(ckpt.completed[0].activity, "S");

  auto resumed = engine_.ResumeFrom(ckpt, &invoker_);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(Calls("slow_ok"), 1) << "the slow sibling must not re-execute";
  EXPECT_EQ(Calls("fail_once"), 2);
  EXPECT_EQ(resumed->output.schema().num_columns(), 2u);
}

TEST_F(RecoveryTest, ExhaustedRetriesKeepCheckpointUsable) {
  // Two consecutive failures: each failed attempt refreshes the checkpoint
  // and the third run completes from it.
  RegisterChain(/*fail_b_times=*/2);
  InstanceCheckpoint ckpt;
  ASSERT_FALSE(
      engine_.RunRecoverable("chain", {Value::Int(5)}, &invoker_, &ckpt).ok());
  ASSERT_FALSE(engine_.ResumeFrom(ckpt, &invoker_).ok());
  ASSERT_TRUE(ckpt.valid);
  auto ok = engine_.ResumeFrom(ckpt, &invoker_);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(Calls("f_a"), 1);
  EXPECT_EQ(Calls("f_b"), 3);
}

TEST_F(RecoveryTest, GuardsRejectBadCheckpoints) {
  RegisterChain(/*fail_b_times=*/0);
  auto null_ckpt =
      engine_.RunRecoverable("chain", {Value::Int(5)}, &invoker_, nullptr);
  EXPECT_FALSE(null_ckpt.ok());

  InstanceCheckpoint ckpt;
  auto not_failed = engine_.ResumeFrom(ckpt, &invoker_);
  EXPECT_FALSE(not_failed.ok());

  ckpt.valid = true;
  ckpt.process = "some_other_process";
  auto mismatch =
      engine_.RunRecoverable("chain", {Value::Int(5)}, &invoker_, &ckpt);
  EXPECT_FALSE(mismatch.ok());
}

TEST_F(RecoveryTest, SuccessfulRunLeavesCheckpointInvalid) {
  RegisterChain(/*fail_b_times=*/0);
  InstanceCheckpoint ckpt;
  auto ok = engine_.RunRecoverable("chain", {Value::Int(5)}, &invoker_, &ckpt);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_FALSE(ckpt.valid);
  EXPECT_TRUE(ckpt.completed.empty());
  EXPECT_EQ(ok->output.rows()[0][0].AsInt(), 8);
  EXPECT_EQ(ok->elapsed_us, 600);
}

}  // namespace
}  // namespace fedflow::wfms
