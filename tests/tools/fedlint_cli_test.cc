// Tests for the fedlint CLI contract: argument parsing, the three output
// formats, and the exit-code mapping (0 clean / warnings, 1 warnings under
// --strict, 2 errors, 64 usage — 64 is produced by main() on parse failure).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "fedlint_cli.h"

namespace fedflow::tools {
namespace {

using analysis::Diagnostic;
using analysis::Severity;

CliOptions MustParse(const std::vector<std::string>& args) {
  CliOptions options;
  std::string error;
  EXPECT_TRUE(ParseCliArgs(args, &options, &error)) << error;
  return options;
}

TEST(ParseCliArgsTest, RecognizesModesFormatsAndStrict) {
  EXPECT_EQ(MustParse({}).mode, LintMode::kSample);
  EXPECT_EQ(MustParse({"--list-corpus"}).mode, LintMode::kListCorpus);
  EXPECT_EQ(MustParse({"--corpus-all"}).mode, LintMode::kCorpusAll);

  CliOptions one = MustParse({"--corpus", "dead-node"});
  EXPECT_EQ(one.mode, LintMode::kCorpusOne);
  EXPECT_EQ(one.corpus_name, "dead-node");

  EXPECT_EQ(MustParse({"--format=json"}).format, OutputFormat::kJson);
  EXPECT_EQ(MustParse({"--format=sarif"}).format, OutputFormat::kSarif);
  EXPECT_EQ(MustParse({"--format=text"}).format, OutputFormat::kText);
  EXPECT_TRUE(MustParse({"--strict"}).strict);
  EXPECT_FALSE(MustParse({}).strict);
}

TEST(ParseCliArgsTest, RejectsUnknownArgumentsWithUsage) {
  CliOptions options;
  std::string error;
  EXPECT_FALSE(ParseCliArgs({"--bogus"}, &options, &error));
  EXPECT_NE(error.find("usage:"), std::string::npos);
  EXPECT_FALSE(ParseCliArgs({"--format=yaml"}, &options, &error));
  EXPECT_FALSE(ParseCliArgs({"--corpus"}, &options, &error));
}

TEST(RunFedlintTest, SampleModeIsWarningsOnlyByDefault) {
  std::string output;
  CliOptions options;
  // The sample scenario carries one FF410 warning (GetSubCompDiscounts), so
  // plain fedlint exits 0 and --strict flips it to 1.
  EXPECT_EQ(RunFedlint(options, &output), 0);
  EXPECT_NE(output.find("FF410"), std::string::npos);

  options.strict = true;
  output.clear();
  EXPECT_EQ(RunFedlint(options, &output), 1);
}

TEST(RunFedlintTest, CorpusModesExitTwoOnErrors) {
  CliOptions options;
  options.mode = LintMode::kCorpusAll;
  std::string output;
  EXPECT_EQ(RunFedlint(options, &output), 2);

  options.mode = LintMode::kCorpusOne;
  options.corpus_name = "cast-never-succeeds";
  output.clear();
  EXPECT_EQ(RunFedlint(options, &output), 2);
  EXPECT_NE(output.find("FF400"), std::string::npos);
  EXPECT_NE(output.find("spec:CastNever/output:Reliable"), std::string::npos);

  options.corpus_name = "no-such-entry";
  output.clear();
  EXPECT_EQ(RunFedlint(options, &output), 2);
  EXPECT_NE(output.find("unknown corpus entry"), std::string::npos);
}

TEST(RunFedlintTest, WarningsOnlyCorpusEntryHonorsStrict) {
  CliOptions options;
  options.mode = LintMode::kCorpusOne;
  options.corpus_name = "unused-param";  // FF050, warning severity
  std::string output;
  EXPECT_EQ(RunFedlint(options, &output), 0);
  options.strict = true;
  output.clear();
  EXPECT_EQ(RunFedlint(options, &output), 1);
}

TEST(RunFedlintTest, ListCorpusNamesBothCorpora) {
  CliOptions options;
  options.mode = LintMode::kListCorpus;
  std::string output;
  EXPECT_EQ(RunFedlint(options, &output), 0);
  EXPECT_NE(output.find("dead-node"), std::string::npos);            // malformed
  EXPECT_NE(output.find("stage-over-tenant-quota"), std::string::npos);
}

TEST(FormatFindingsTest, TextIsOneDiagnosticPerLine) {
  std::vector<Diagnostic> diags = {
      Diagnostic{Severity::kError, "FF400", "spec:X/output:Y", "bad cast", ""},
      Diagnostic{Severity::kWarning, "FF410", "spec:X/node:N", "unbounded",
                 "hint"}};
  std::string text = FormatFindings(diags, OutputFormat::kText);
  EXPECT_NE(text.find("error[FF400] spec:X/output:Y: bad cast"),
            std::string::npos);
  EXPECT_NE(text.find("note: hint"), std::string::npos);
}

TEST(FormatFindingsTest, JsonEscapesAndCounts) {
  std::vector<Diagnostic> diags = {Diagnostic{
      Severity::kError, "FF400", "spec:X", "a \"quoted\"\nmessage", ""}};
  std::string json = FormatFindings(diags, OutputFormat::kJson);
  EXPECT_NE(json.find("\\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 0"), std::string::npos);
}

TEST(FormatFindingsTest, SarifCarriesRuleTableAndLogicalLocations) {
  std::vector<Diagnostic> diags = {Diagnostic{
      Severity::kWarning, "FF410", "spec:X/node:N", "unbounded", ""}};
  std::string sarif = FormatFindings(diags, OutputFormat::kSarif);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  // The registry's rule metadata rides along...
  EXPECT_NE(sarif.find("\"id\": \"FF410\""), std::string::npos);
  EXPECT_NE(sarif.find("df-unbounded-invocations"), std::string::npos);
  // ...and the finding references it with its logical location.
  EXPECT_NE(sarif.find("\"ruleId\": \"FF410\""), std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\": \"spec:X/node:N\""),
            std::string::npos);
}

TEST(FormatFindingsTest, EmptyInputsStayWellFormed) {
  std::string json = FormatFindings({}, OutputFormat::kJson);
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
  std::string sarif = FormatFindings({}, OutputFormat::kSarif);
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

}  // namespace
}  // namespace fedflow::tools
