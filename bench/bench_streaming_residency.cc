// Residency micro-bench for the streaming execution pipeline: a 10k-row
// A-UDTF feeding a lateral chain, pulled in 256-row batches vs. fully
// materialized (batch_size = 0). The measured quantity is
// PipelineStats::peak_resident_rows — rows buffered inside operators at the
// worst moment — which streaming bounds by O(batch size · chain depth) while
// the materializing plan holds the whole intermediate result.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fdbs/database.h"

namespace fedflow::bench {
namespace {

constexpr int kRows = 10000;

constexpr char kQuery[] =
    "SELECT a.v, b.v2 FROM TABLE (gen10k()) AS a, "
    "TABLE (passthru(a.v)) AS b WHERE b.v2 >= 0";

/// A generator-backed A-UDTF standing in for a remote source whose transport
/// can stream: Invoke materializes all 10k rows, InvokeStream yields them
/// batch by batch without ever holding the full result.
class Gen10kUdtf : public fdbs::TableFunction {
 public:
  Gen10kUdtf() { schema_.AddColumn("v", DataType::kInt); }

  const std::string& name() const override { return name_; }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }

  Result<Table> Invoke(const std::vector<Value>&,
                       fdbs::ExecContext&) override {
    Table t(schema_);
    for (int i = 0; i < kRows; ++i) t.AppendRowUnchecked({Value::Int(i)});
    return t;
  }

  Result<RowSourcePtr> InvokeStream(const std::vector<Value>&,
                                    fdbs::ExecContext&,
                                    size_t batch_size) override {
    auto next = std::make_shared<int>(0);
    const size_t chunk =
        batch_size == 0 ? static_cast<size_t>(kRows) : batch_size;
    return MakeGeneratorSource(
        schema_, [next, chunk]() -> Result<RowBatch> {
          RowBatch batch;
          while (*next < kRows && batch.size() < chunk) {
            batch.rows.push_back({Value::Int((*next)++)});
          }
          return batch;
        });
  }

 private:
  std::string name_ = "gen10k";
  std::vector<Column> params_;
  Schema schema_;
};

std::unique_ptr<fdbs::Database> MakeDatabase() {
  auto db = std::make_unique<fdbs::Database>();
  auto st = db->catalog().RegisterTableFunction(std::make_shared<Gen10kUdtf>());
  if (st.ok()) {
    auto r = db->Execute(
        "CREATE FUNCTION passthru (x INT) RETURNS TABLE (v2 INT) "
        "LANGUAGE SQL RETURN SELECT passthru.x * 2");
    st = r.status();
  }
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return db;
}

/// Runs the chain under the given batch size; returns the peak residency.
size_t Measure(fdbs::Database* db, size_t batch_size) {
  PipelineStats stats;
  fdbs::ExecContext ctx;
  ctx.batch_size = batch_size;
  ctx.pipeline_stats = &stats;
  auto r = db->Execute(kQuery, ctx);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (r->num_rows() != static_cast<size_t>(kRows)) {
    std::fprintf(stderr, "wrong row count: %zu\n", r->num_rows());
    std::abort();
  }
  return stats.peak_resident_rows;
}

void BM_LateralChain(benchmark::State& state) {
  auto db = MakeDatabase();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  size_t peak = 0;
  for (auto _ : state) {
    peak = Measure(db.get(), batch_size);
  }
  state.counters["peak_resident_rows"] =
      benchmark::Counter(static_cast<double>(peak));
}
BENCHMARK(BM_LateralChain)
    ->Arg(0)  // batch_size 0 = unbounded (materializing baseline)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void PrintTable() {
  auto db = MakeDatabase();
  std::printf(
      "\n=== Peak intermediate-row residency, 10k-row A-UDTF chain ===\n");
  std::printf("query: %s\n\n", kQuery);
  std::printf("%-26s %20s\n", "plan", "peak resident rows");
  PrintRule(48);
  BenchJson json("streaming_residency");
  const size_t materialized = Measure(db.get(), 0);
  json.Add("materializing", "peak_resident_rows",
           static_cast<int64_t>(materialized));
  std::printf("%-26s %20zu\n", "materializing (batch=0)", materialized);
  for (size_t bs : {size_t{64}, size_t{256}, size_t{1024}}) {
    const size_t peak = Measure(db.get(), bs);
    json.Add("streaming_batch" + std::to_string(bs), "peak_resident_rows",
             static_cast<int64_t>(peak));
    std::printf("streaming (batch=%-5zu)     %20zu\n", bs, peak);
    // The contract the refactor exists for: residency tracks the batch
    // size, not the 10k-row intermediate result.
    if (peak >= materialized || peak > 8 * bs) {
      std::fprintf(stderr,
                   "residency not bounded: peak %zu at batch size %zu "
                   "(materializing peak %zu)\n",
                   peak, bs, materialized);
      std::abort();
    }
  }
  PrintRule(48);
  std::printf(
      "the materializing plan buffers the whole 10k-row intermediate\n"
      "result between operators; the streaming plan holds a few batches\n");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
