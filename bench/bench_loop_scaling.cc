// §4 loop-scaling reproduction: the cyclic federated function AllCompNames
// (do-until loop over the same local function in the WfMS architecture).
// Paper: "the overall processing time rises linearly to the number of
// function calls."
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace fedflow::bench {
namespace {

IntegrationServer* Server() {
  // The loop sweeps up to 64 iterations; give the component catalog room so
  // every GetCompName probe hits.
  static auto server = MustMakeServer(Architecture::kWfms, {},
                                      appsys::ScenarioConfig{8, 128, 42});
  return server.get();
}

void BM_AllCompNames(benchmark::State& state) {
  const int iterations = static_cast<int>(state.range(0));
  IntegrationServer* server = Server();
  (void)HotCall(server, "AllCompNames", {Value::Int(iterations)});
  for (auto _ : state) {
    auto result = MustCall(server, "AllCompNames", {Value::Int(iterations)});
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
    if (result.table.num_rows() != static_cast<size_t>(iterations)) {
      state.SkipWithError("unexpected row count");
    }
  }
}
BENCHMARK(BM_AllCompNames)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Iterations(3);

void PrintTable() {
  std::printf("\n=== Loop scaling: AllCompNames(N), WfMS architecture ===\n");
  std::printf("%6s %14s %18s\n", "N", "elapsed [us]", "per-iteration [us]");
  PrintRule(42);
  IntegrationServer* server = Server();
  BenchJson json("loop_scaling");
  std::vector<std::pair<int, VDuration>> points;
  for (int n : {1, 2, 4, 8, 16, 32, 64}) {
    auto result = HotCall(server, "AllCompNames", {Value::Int(n)});
    points.emplace_back(n, result.elapsed_us);
    json.Add("AllCompNames/n" + std::to_string(n), "elapsed_us",
             result.elapsed_us);
    std::printf("%6d %14lld %18.1f\n", n,
                static_cast<long long>(result.elapsed_us),
                static_cast<double>(result.elapsed_us) / n);
  }
  PrintRule(42);
  // Linearity check: least-squares fit elapsed = a*N + b, report R^2.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double count = static_cast<double>(points.size());
  for (auto [n, t] : points) {
    sx += n;
    sy += static_cast<double>(t);
    sxx += static_cast<double>(n) * n;
    sxy += static_cast<double>(n) * static_cast<double>(t);
  }
  double slope = (count * sxy - sx * sy) / (count * sxx - sx * sx);
  double intercept = (sy - slope * sx) / count;
  double ss_tot = 0, ss_res = 0;
  double mean = sy / count;
  for (auto [n, t] : points) {
    double predicted = slope * n + intercept;
    ss_tot += (static_cast<double>(t) - mean) * (static_cast<double>(t) - mean);
    ss_res += (static_cast<double>(t) - predicted) *
              (static_cast<double>(t) - predicted);
  }
  double r2 = 1.0 - ss_res / ss_tot;
  std::printf("paper:    overall processing time rises linearly with the "
              "number of calls\n");
  std::printf("measured: fit elapsed = %.0f*N + %.0f us, R^2 = %.6f\n", slope,
              intercept, r2);
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
