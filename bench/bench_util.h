// Shared helpers for the reproduction benches. Every bench binary measures
// VIRTUAL time (the deterministic cost model) via google-benchmark's manual
// timing, and afterwards prints the paper-vs-measured comparison for its
// table/figure.
#ifndef FEDFLOW_BENCH_BENCH_UTIL_H_
#define FEDFLOW_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "federation/sample_scenario.h"

namespace fedflow::bench {

using federation::Architecture;
using federation::IntegrationServer;

/// Builds a sample server or aborts (benches have no error channel).
inline std::unique_ptr<IntegrationServer> MustMakeServer(
    Architecture arch, sim::LatencyModel model = {},
    appsys::ScenarioConfig config = {}) {
  auto server = federation::MakeSampleServer(arch, config, model);
  if (!server.ok()) {
    std::fprintf(stderr, "failed to build server: %s\n",
                 server.status().ToString().c_str());
    std::abort();
  }
  return std::move(*server);
}

/// One timed federated call; aborts on failure.
inline IntegrationServer::TimedResult MustCall(
    IntegrationServer* server, const std::string& name,
    const std::vector<Value>& args) {
  auto result = server->CallFederated(name, args);
  if (!result.ok()) {
    std::fprintf(stderr, "call %s failed: %s\n", name.c_str(),
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(*result);
}

/// Calls until hot, then returns one hot measurement.
inline IntegrationServer::TimedResult HotCall(
    IntegrationServer* server, const std::string& name,
    const std::vector<Value>& args) {
  (void)MustCall(server, name, args);
  (void)MustCall(server, name, args);
  return MustCall(server, name, args);
}

/// The sample workload of Fig. 5, in order of increasing mapping complexity.
struct SampleCall {
  const char* name;
  const char* mapping_case;
  int local_functions;
  std::vector<Value> args;
};

inline std::vector<SampleCall> Fig5Workload() {
  return {
      {"GibKompNr", "trivial", 1, {Value::Varchar("brakepad")}},
      {"GetNumberSupp1234", "simple", 1, {Value::Int(17)}},
      {"GetSuppQualRelia", "independent", 2, {Value::Int(1234)}},
      {"GetSuppQual", "dependent: linear", 2, {Value::Varchar("Stark")}},
      {"GetSubCompDiscounts", "independent + join", 2,
       {Value::Int(3), Value::Int(5)}},
      {"GetNoSuppComp", "dependent: (1:n)", 3,
       {Value::Varchar("Stark"), Value::Varchar("brakepad")}},
      {"GetSuppInfo", "dependent: (n:1)", 3, {Value::Varchar("Acme")}},
      {"BuySuppComp", "general example (Fig. 1)", 5,
       {Value::Int(1234), Value::Varchar("brakepad")}},
  };
}

/// Prints a rule line of the given width.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Machine-readable bench output: integer metrics (virtual-clock times,
/// counts — never wall time) collected per scenario and written as
/// BENCH_<name>.json in the working directory. Because every value comes off
/// the deterministic virtual clock, the file is bit-identical across
/// machines and runs, so CI can diff it against a checked-in golden. The
/// path note goes to stderr; stdout tables stay byte-identical.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& scenario, const std::string& metric,
           int64_t value) {
    rows_.push_back(Row{scenario, metric, value});
  }

  /// Records a WALL-clock measurement (nanoseconds off the host's steady
  /// clock). Wall metrics are machine-dependent, so they go to a separate
  /// BENCH_<name>_wall.json that CI reports but never diffs against a
  /// golden. Metric names end in "_wall_ns" by convention so a wall value
  /// can never be mistaken for a virtual-clock one.
  void AddWall(const std::string& scenario, const std::string& metric,
               int64_t value_ns) {
    wall_rows_.push_back(Row{scenario, metric, value_ns});
  }

  void Write() const {
    WriteFile("BENCH_" + name_ + ".json", rows_);
    if (!wall_rows_.empty()) {
      WriteFile("BENCH_" + name_ + "_wall.json", wall_rows_);
    }
  }

 private:
  struct Row {
    std::string scenario;
    std::string metric;
    int64_t value;
  };

  void WriteFile(const std::string& path, const std::vector<Row>& rows) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": [",
                 name_.c_str());
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"scenario\": \"%s\", \"metric\": \"%s\", "
                   "\"value\": %lld}",
                   i == 0 ? "" : ",", rows[i].scenario.c_str(),
                   rows[i].metric.c_str(),
                   static_cast<long long>(rows[i].value));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench metrics written to %s\n", path.c_str());
  }

  std::string name_;
  std::vector<Row> rows_;
  std::vector<Row> wall_rows_;
};

}  // namespace fedflow::bench

#endif  // FEDFLOW_BENCH_BENCH_UTIL_H_
