// §4 controller ablation: "Assume, we can implement our prototypes without
// the controller. Then, the total time of the WfMS solution would decrease by
// 8%, whereas the UDTF solution would decrease by even 25%. As a result, the
// overall processing time ratio between workflow and UDTF approach would
// increase from 3 to 3.7."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/latency.h"

namespace fedflow::bench {
namespace {

const std::vector<Value>& Args() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Varchar("brakepad")};
  return args;
}

VDuration MeasureHot(Architecture arch, const sim::LatencyModel& model) {
  auto server = MustMakeServer(arch, model);
  return HotCall(server.get(), "GetNoSuppComp", Args()).elapsed_us;
}

void BM_WithController(benchmark::State& state, Architecture arch) {
  auto server = MustMakeServer(arch);
  (void)HotCall(server.get(), "GetNoSuppComp", Args());
  for (auto _ : state) {
    auto r = MustCall(server.get(), "GetNoSuppComp", Args());
    state.SetIterationTime(static_cast<double>(r.elapsed_us) * 1e-6);
  }
}
void BM_WithoutController(benchmark::State& state, Architecture arch) {
  auto server = MustMakeServer(arch, sim::WithoutController({}));
  (void)HotCall(server.get(), "GetNoSuppComp", Args());
  for (auto _ : state) {
    auto r = MustCall(server.get(), "GetNoSuppComp", Args());
    state.SetIterationTime(static_cast<double>(r.elapsed_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_WithController, wfms, Architecture::kWfms)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_WithController, udtf, Architecture::kUdtf)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_WithoutController, wfms, Architecture::kWfms)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_WithoutController, udtf, Architecture::kUdtf)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);

void PrintTable() {
  sim::LatencyModel with_controller;
  sim::LatencyModel without_controller = sim::WithoutController({});

  std::printf("\n=== Controller ablation (GetNoSuppComp, hot calls) ===\n");
  std::printf("%-16s %18s %18s %10s\n", "architecture", "with ctrl [us]",
              "without ctrl [us]", "decrease");
  PrintRule(66);
  BenchJson json("controller_ablation");
  VDuration w_with = 0, w_without = 0, u_with = 0, u_without = 0;
  for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf}) {
    VDuration with = MeasureHot(arch, with_controller);
    VDuration without = MeasureHot(arch, without_controller);
    const char* scenario = arch == Architecture::kWfms ? "wfms" : "udtf";
    json.Add(scenario, "with_controller_us", with);
    json.Add(scenario, "without_controller_us", without);
    if (arch == Architecture::kWfms) {
      w_with = with;
      w_without = without;
    } else {
      u_with = with;
      u_without = without;
    }
    std::printf("%-16s %18lld %18lld %9.1f%%\n",
                federation::ArchitectureName(arch),
                static_cast<long long>(with), static_cast<long long>(without),
                100.0 * (1.0 - static_cast<double>(without) /
                                   static_cast<double>(with)));
  }
  PrintRule(66);
  std::printf("paper:    WfMS decreases ~8%%, UDTF ~25%%; ratio rises from "
              "~3 to ~3.7\n");
  std::printf("measured: ratio with controller %.2f, without %.2f\n",
              static_cast<double>(w_with) / static_cast<double>(u_with),
              static_cast<double>(w_without) /
                  static_cast<double>(u_without));
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
