// Fig. 6 reproduction: time portions of one (hot) call of the federated
// function GetNoSuppComp in the WfMS and the UDTF approach, next to the
// percentages the paper reports.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "sim/latency.h"
#include "wfms/engine.h"

namespace fedflow::bench {
namespace {

const std::vector<Value>& Args() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Varchar("brakepad")};
  return args;
}

void BM_Breakdown(benchmark::State& state, Architecture arch) {
  auto server = MustMakeServer(arch);
  (void)HotCall(server.get(), "GetNoSuppComp", Args());
  for (auto _ : state) {
    auto result = MustCall(server.get(), "GetNoSuppComp", Args());
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_Breakdown, wfms, Architecture::kWfms)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_Breakdown, udtf, Architecture::kUdtf)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Paper Fig. 6 percentages.
const std::map<std::string, int>& PaperShares(Architecture arch) {
  static const std::map<std::string, int> wfms = {
      {"Start UDTF", 9},
      {"Process UDTF", 11},
      {"RMI call", 3},
      {"Start workflow and Java environment", 10},
      {"Process activities", 51},
      {"Workflow", 9},
      {"Controller", 5},
      {"RMI return", 0},
      {"Finish UDTF", 2},
  };
  static const std::map<std::string, int> udtf = {
      {"Start I-UDTF", 11},  {"Prepare A-UDTFs", 28}, {"RMI calls", 24},
      {"Controller runs", 0}, {"Process activities", 6}, {"Finish A-UDTFs", 21},
      {"RMI returns", 1},    {"Finish I-UDTF", 9},
  };
  return arch == Architecture::kWfms ? wfms : udtf;
}

void PrintBreakdown(Architecture arch, BenchJson& json) {
  auto server = MustMakeServer(arch);
  auto result = HotCall(server.get(), "GetNoSuppComp", Args());
  const char* scenario = arch == Architecture::kWfms ? "wfms" : "udtf";
  json.Add(scenario, "elapsed_us", result.elapsed_us);
  for (const auto& [step, dur] : result.breakdown.entries()) {
    json.Add(scenario, step, dur);
  }
  std::printf("\n--- %s: GetNoSuppComp, one hot call (total %lld us) ---\n",
              federation::ArchitectureName(arch),
              static_cast<long long>(result.elapsed_us));
  std::printf("%-38s %10s %9s %9s\n", "step", "time [us]", "measured",
              "paper");
  PrintRule(72);
  const auto& paper = PaperShares(arch);
  for (const auto& [step, dur] : result.breakdown.entries()) {
    int pct = result.breakdown.PercentOf(step);
    auto it = paper.find(step);
    if (it != paper.end()) {
      std::printf("%-38s %10lld %8d%% %8d%%\n", step.c_str(),
                  static_cast<long long>(dur), pct, it->second);
    } else {
      std::printf("%-38s %10lld %8d%% %9s\n", step.c_str(),
                  static_cast<long long>(dur), pct, "-");
    }
  }
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n=== Fig. 6: time portions of the overall function call ===\n");
  fedflow::bench::BenchJson json("fig6_breakdown");
  fedflow::bench::PrintBreakdown(fedflow::bench::Architecture::kWfms, json);
  fedflow::bench::PrintBreakdown(fedflow::bench::Architecture::kUdtf, json);
  json.Write();
  return 0;
}
