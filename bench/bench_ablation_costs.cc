// Extension ablation (DESIGN.md §6): which cost drives the WfMS/UDTF gap?
// Sweeps the per-activity Java-program boot cost (the paper's explanation of
// the "extreme difference regarding the various process activities") and the
// RMI marshalling cost, reporting the elapsed-time ratio for GetNoSuppComp.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/latency.h"

namespace fedflow::bench {
namespace {

const std::vector<Value>& Args() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Varchar("brakepad")};
  return args;
}

struct ElapsedPair {
  VDuration wfms_us = 0;
  VDuration udtf_us = 0;
};

ElapsedPair MeasurePair(const sim::LatencyModel& model) {
  auto wfms = MustMakeServer(Architecture::kWfms, model);
  auto udtf = MustMakeServer(Architecture::kUdtf, model);
  ElapsedPair pair;
  pair.wfms_us = HotCall(wfms.get(), "GetNoSuppComp", Args()).elapsed_us;
  pair.udtf_us = HotCall(udtf.get(), "GetNoSuppComp", Args()).elapsed_us;
  return pair;
}

double RatioFor(const sim::LatencyModel& model) {
  ElapsedPair pair = MeasurePair(model);
  return static_cast<double>(pair.wfms_us) /
         static_cast<double>(pair.udtf_us);
}

void BM_RatioDefaultModel(benchmark::State& state) {
  for (auto _ : state) {
    double ratio = RatioFor({});
    benchmark::DoNotOptimize(ratio);
  }
}
BENCHMARK(BM_RatioDefaultModel)->Unit(benchmark::kMillisecond)->Iterations(2);

void PrintJvmSweep(BenchJson& json) {
  std::printf("\n=== Ablation: per-activity JVM boot cost vs WfMS/UDTF ratio "
              "(GetNoSuppComp) ===\n");
  std::printf("%18s %10s\n", "jvm boot [us]", "ratio");
  PrintRule(30);
  for (VDuration boot : {0LL, 1000LL, 2000LL, 4500LL, 9000LL, 18000LL}) {
    sim::LatencyModel model;
    model.wf_jvm_boot_activity_us = boot;
    ElapsedPair pair = MeasurePair(model);
    std::string scenario = "jvm_boot_" + std::to_string(boot);
    json.Add(scenario, "wfms_elapsed_us", pair.wfms_us);
    json.Add(scenario, "udtf_elapsed_us", pair.udtf_us);
    std::printf("%18lld %9.2fx\n", static_cast<long long>(boot),
                static_cast<double>(pair.wfms_us) /
                    static_cast<double>(pair.udtf_us));
  }
  PrintRule(30);
  std::printf("paper:    starting a new Java program per activity is the "
              "main WfMS cost;\n"
              "          without it the approaches converge\n");
}

void PrintRmiSweep(BenchJson& json) {
  std::printf("\n=== Ablation: RMI call cost vs WfMS/UDTF ratio "
              "(GetNoSuppComp) ===\n");
  std::printf("%18s %10s\n", "rmi call [us]", "ratio");
  PrintRule(30);
  for (VDuration rmi : {0LL, 390LL, 780LL, 1560LL, 3120LL}) {
    sim::LatencyModel model;
    model.rmi_call_base_us = rmi;
    ElapsedPair pair = MeasurePair(model);
    std::string scenario = "rmi_call_" + std::to_string(rmi);
    json.Add(scenario, "wfms_elapsed_us", pair.wfms_us);
    json.Add(scenario, "udtf_elapsed_us", pair.udtf_us);
    std::printf("%18lld %9.2fx\n", static_cast<long long>(rmi),
                static_cast<double>(pair.wfms_us) /
                    static_cast<double>(pair.udtf_us));
  }
  PrintRule(30);
  std::printf("note:     RMI hits the UDTF approach k times per call but the "
              "WfMS approach once,\n"
              "          so a costlier wire narrows the gap\n");
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::BenchJson json("ablation_costs");
  fedflow::bench::PrintJvmSweep(json);
  fedflow::bench::PrintRmiSweep(json);
  json.Write();
  return 0;
}
