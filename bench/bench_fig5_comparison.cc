// Fig. 5 reproduction: elapsed time of the workflow vs. the enhanced UDTF
// approach over the sample functions of increasing mapping complexity
// (repeated/hot calls, as in the paper's measurement section).
//
// Paper's findings to reproduce in shape:
//  - the WfMS approach is up to ~3x slower than the UDTF approach,
//  - UDTF processing times rise less steeply with the number of functions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace fedflow::bench {
namespace {

IntegrationServer* Server(Architecture arch) {
  static auto wfms = MustMakeServer(Architecture::kWfms);
  static auto udtf = MustMakeServer(Architecture::kUdtf);
  static auto java = MustMakeServer(Architecture::kJavaUdtf);
  switch (arch) {
    case Architecture::kWfms:
      return wfms.get();
    case Architecture::kUdtf:
      return udtf.get();
    case Architecture::kJavaUdtf:
      return java.get();
  }
  return udtf.get();
}

void BM_FederatedCall(benchmark::State& state, Architecture arch,
                      const SampleCall& call) {
  IntegrationServer* server = Server(arch);
  // Warm up: the paper's Fig. 5 uses repeated calls.
  (void)HotCall(server, call.name, call.args);
  for (auto _ : state) {
    auto result = MustCall(server, call.name, call.args);
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
    benchmark::DoNotOptimize(result.table);
  }
  state.counters["local_functions"] = call.local_functions;
  state.counters["virtual_us"] = static_cast<double>(
      MustCall(server, call.name, call.args).elapsed_us);
}

void RegisterAll() {
  for (const SampleCall& call : Fig5Workload()) {
    for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf,
                              Architecture::kJavaUdtf}) {
      std::string prefix = "fig5/udtf/";
      if (arch == Architecture::kWfms) prefix = "fig5/wfms/";
      if (arch == Architecture::kJavaUdtf) prefix = "fig5/java/";
      std::string name = prefix + call.name;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [arch, call](benchmark::State& st) {
                                     BM_FederatedCall(st, arch, call);
                                   })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(5);
    }
  }
}

/// Least-squares slope of elapsed over local-function count (us/function).
double Slope(const std::vector<std::pair<int, VDuration>>& points) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(points.size());
  for (auto [x, y] : points) {
    sx += x;
    sy += static_cast<double>(y);
    sxx += static_cast<double>(x) * x;
    sxy += static_cast<double>(x) * static_cast<double>(y);
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

void PrintFig5Table() {
  std::printf("\n=== Fig. 5: processing time per federated function "
              "(hot calls, virtual time) ===\n");
  std::printf("%-22s %-24s %5s %11s %11s %11s %7s %7s\n", "function",
              "mapping case", "#fns", "WfMS [us]", "UDTF [us]", "Java [us]",
              "ratio", "work-r");
  PrintRule(106);
  BenchJson json("fig5_comparison");
  std::vector<std::pair<int, VDuration>> wfms_points, udtf_points;
  for (const SampleCall& call : Fig5Workload()) {
    auto w = HotCall(Server(Architecture::kWfms), call.name, call.args);
    auto u = HotCall(Server(Architecture::kUdtf), call.name, call.args);
    auto j = HotCall(Server(Architecture::kJavaUdtf), call.name, call.args);
    json.Add(call.name, "wfms_elapsed_us", w.elapsed_us);
    json.Add(call.name, "udtf_elapsed_us", u.elapsed_us);
    json.Add(call.name, "java_elapsed_us", j.elapsed_us);
    // Elapsed ratio (our engine overlaps parallel activities) and the
    // work-total ratio (the sum of all step times, which is what a fully
    // serialized engine — like the paper's — would take end to end).
    double ratio = static_cast<double>(w.elapsed_us) /
                   static_cast<double>(u.elapsed_us);
    double work_ratio = static_cast<double>(w.breakdown.Total()) /
                        static_cast<double>(u.breakdown.Total());
    wfms_points.emplace_back(call.local_functions, w.elapsed_us);
    udtf_points.emplace_back(call.local_functions, u.elapsed_us);
    std::printf("%-22s %-24s %5d %11lld %11lld %11lld %6.2fx %6.2fx\n",
                call.name, call.mapping_case, call.local_functions,
                static_cast<long long>(w.elapsed_us),
                static_cast<long long>(u.elapsed_us),
                static_cast<long long>(j.elapsed_us), ratio, work_ratio);
  }
  PrintRule(106);
  std::printf("(Java column: the paper's third architecture, described but "
              "not measured there — an extension here)\n");
  std::printf("paper:    WfMS up to ~3x slower; workflow times rise more "
              "steeply with #functions\n");
  std::printf("measured: slope WfMS %.0f us/function vs UDTF %.0f "
              "us/function; work-total ratio ~3 at the\n"
              "          Fig. 6 anchor (GetNoSuppComp); elapsed ratios dip "
              "where our engine overlaps\n"
              "          parallel activities\n",
              Slope(wfms_points), Slope(udtf_points));
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  fedflow::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintFig5Table();
  return 0;
}
