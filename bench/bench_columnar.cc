// Row-vs-columnar wall-clock bench: a predicate-heavy 10k-row A-UDTF
// lateral chain executed twice — once with ExecContext::columnar off (the
// classic row-at-a-time pipeline) and once with it on (ColumnBatch transport
// plus vectorized filters). Both runs produce bit-identical results and
// identical PipelineStats counts; the only difference is wall time, which is
// measured here with the host's steady clock and reported as *_wall_ns
// metrics in BENCH_columnar_wall.json (never golden-diffed). The checked-in
// golden BENCH_columnar.json holds only deterministic counts.
//
// The bench aborts if the columnar path is not at least 2x faster than the
// row path — the speedup the refactor exists for.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fdbs/database.h"

namespace fedflow::bench {
namespace {

constexpr int kRows = 10000;

// Predicate-heavy: a dozen vectorizable conjuncts spanning integer modular
// arithmetic, mixed int/double promotion, varchar LIKE and inequality, and
// cross-source comparisons that only become ready after the lateral apply.
// Nearly all rows survive every conjunct, so each one runs over the full
// 10k rows — the worst case for row-at-a-time evaluation.
constexpr char kQuery[] =
    "SELECT a.v, a.d, a.s, b.v2 FROM TABLE (gen10k()) AS a, "
    "TABLE (passthru(a.v)) AS b "
    "WHERE (a.v * 7 + 3) % 11 >= 0 "
    "AND a.v % 97 <> 13 "
    "AND (a.v * 13 + 7) % 101 <> 102 "
    "AND a.d * 1.5 + 2.25 < 100000.0 "
    "AND a.d >= -1.0 "
    "AND (a.d + 0.5) * (a.d + 1.5) >= 0.0 "
    "AND a.d * a.d + 1.0 > 0.5 "
    "AND a.s LIKE 'row%' "
    "AND a.s LIKE '%o%' "
    "AND a.s <> 'nope' "
    "AND b.v2 + a.v >= 0 "
    "AND (a.v * 3 + b.v2 * 5) % 7 <> 9";

/// A 10k-row generator A-UDTF with one column per predicate family: an INT
/// counter, a DOUBLE derived from it, and a short VARCHAR tag.
class Gen10kUdtf : public fdbs::TableFunction {
 public:
  Gen10kUdtf() {
    schema_.AddColumn("v", DataType::kInt);
    schema_.AddColumn("d", DataType::kDouble);
    schema_.AddColumn("s", DataType::kVarchar);
  }

  const std::string& name() const override { return name_; }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }

  Result<Table> Invoke(const std::vector<Value>&,
                       fdbs::ExecContext&) override {
    Table t(schema_);
    for (int i = 0; i < kRows; ++i) t.AppendRowUnchecked(MakeRow(i));
    return t;
  }

  Result<RowSourcePtr> InvokeStream(const std::vector<Value>&,
                                    fdbs::ExecContext&,
                                    size_t batch_size) override {
    auto next = std::make_shared<int>(0);
    const size_t chunk =
        batch_size == 0 ? static_cast<size_t>(kRows) : batch_size;
    return MakeGeneratorSource(schema_, [next, chunk]() -> Result<RowBatch> {
      RowBatch batch;
      while (*next < kRows && batch.size() < chunk) {
        batch.rows.push_back(MakeRow((*next)++));
      }
      return batch;
    });
  }

 private:
  static Row MakeRow(int i) {
    return {Value::Int(i), Value::Double(i * 0.001),
            Value::Varchar("row" + std::to_string(i % 100))};
  }

  std::string name_ = "gen10k";
  std::vector<Column> params_;
  Schema schema_;
};

/// The lateral inner function: one row per invocation, doubling its INT
/// argument. A native UDTF rather than a SQL-bodied one so the per-row
/// invocation cost stays small and the bench measures the transport and the
/// predicates, not the subquery machinery.
class PassthruUdtf : public fdbs::TableFunction {
 public:
  PassthruUdtf() {
    params_.push_back(Column{"x", DataType::kInt});
    schema_.AddColumn("v2", DataType::kInt);
  }

  const std::string& name() const override { return name_; }
  const std::vector<Column>& params() const override { return params_; }
  const Schema& result_schema() const override { return schema_; }

  Result<Table> Invoke(const std::vector<Value>& args,
                       fdbs::ExecContext&) override {
    FEDFLOW_ASSIGN_OR_RETURN(int64_t x, args[0].ToInt64());
    Table t(schema_);
    t.AppendRowUnchecked({Value::Int(static_cast<int32_t>(x * 2))});
    return t;
  }

 private:
  std::string name_ = "passthru";
  std::vector<Column> params_;
  Schema schema_;
};

std::unique_ptr<fdbs::Database> MakeDatabase() {
  auto db = std::make_unique<fdbs::Database>();
  auto st = db->catalog().RegisterTableFunction(std::make_shared<Gen10kUdtf>());
  if (st.ok()) {
    st = db->catalog().RegisterTableFunction(std::make_shared<PassthruUdtf>());
  }
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return db;
}

struct RunResult {
  Table table{Schema{}};
  PipelineStats stats;
  int64_t wall_ns = 0;
};

/// One execution of the chain under the given transport; wall time covers
/// exactly the Execute call.
RunResult RunOnce(fdbs::Database* db, bool columnar) {
  RunResult out;
  fdbs::ExecContext ctx;
  ctx.columnar = columnar;
  ctx.pipeline_stats = &out.stats;
  const auto start = std::chrono::steady_clock::now();
  auto r = db->Execute(kQuery, ctx);
  const auto stop = std::chrono::steady_clock::now();
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  out.table = std::move(*r);
  out.wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return out;
}

/// Best-of-N wall time: the minimum is the least noisy location statistic
/// for a CPU-bound loop on a shared machine.
RunResult BestOf(fdbs::Database* db, bool columnar, int trials) {
  RunResult best = RunOnce(db, columnar);
  for (int i = 1; i < trials; ++i) {
    RunResult next = RunOnce(db, columnar);
    if (next.wall_ns < best.wall_ns) best = std::move(next);
  }
  return best;
}

void RequireIdentical(const RunResult& row, const RunResult& col) {
  if (row.table.num_rows() != col.table.num_rows() ||
      row.table.schema().num_columns() != col.table.schema().num_columns()) {
    std::fprintf(stderr, "row/columnar shape mismatch: %zux%zu vs %zux%zu\n",
                 row.table.num_rows(), row.table.schema().num_columns(),
                 col.table.num_rows(), col.table.schema().num_columns());
    std::abort();
  }
  for (size_t r = 0; r < row.table.num_rows(); ++r) {
    for (size_t c = 0; c < row.table.schema().num_columns(); ++c) {
      const Value& a = row.table.rows()[r][c];
      const Value& b = col.table.rows()[r][c];
      if (a.type() != b.type() || a.ToString() != b.ToString()) {
        std::fprintf(stderr, "value mismatch at (%zu,%zu): %s vs %s\n", r, c,
                     a.ToString().c_str(), b.ToString().c_str());
        std::abort();
      }
    }
  }
  // The transport must be invisible to the virtual-cost accounting: same
  // rows and batches crossing operator boundaries in both modes.
  if (row.stats.rows_emitted != col.stats.rows_emitted ||
      row.stats.batches_emitted != col.stats.batches_emitted) {
    std::fprintf(stderr,
                 "pipeline stats diverged: rows %zu vs %zu, batches %zu "
                 "vs %zu\n",
                 row.stats.rows_emitted, col.stats.rows_emitted,
                 row.stats.batches_emitted, col.stats.batches_emitted);
    std::abort();
  }
}

void BM_LateralChain(benchmark::State& state) {
  auto db = MakeDatabase();
  const bool columnar = state.range(0) != 0;
  for (auto _ : state) {
    RunResult r = RunOnce(db.get(), columnar);
    benchmark::DoNotOptimize(r.table.num_rows());
  }
}
BENCHMARK(BM_LateralChain)
    ->Arg(0)  // row-at-a-time pipeline
    ->Arg(1)  // columnar pipeline
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void PrintTable() {
  auto db = MakeDatabase();
  constexpr int kTrials = 5;
  // Warm both paths once (catalog lookups, plan construction) before timing.
  (void)RunOnce(db.get(), false);
  (void)RunOnce(db.get(), true);
  const RunResult row = BestOf(db.get(), false, kTrials);
  const RunResult col = BestOf(db.get(), true, kTrials);
  RequireIdentical(row, col);

  const double speedup =
      static_cast<double>(row.wall_ns) / static_cast<double>(col.wall_ns);
  std::printf(
      "\n=== Row vs columnar wall time, predicate-heavy 10k-row chain ===\n");
  std::printf("query: %s\n\n", kQuery);
  std::printf("%-14s %16s %14s %14s\n", "transport", "exec wall (us)",
              "rows out", "batches");
  PrintRule(62);
  std::printf("%-14s %16.1f %14zu %14zu\n", "row", row.wall_ns / 1e3,
              row.table.num_rows(), row.stats.batches_emitted);
  std::printf("%-14s %16.1f %14zu %14zu\n", "columnar", col.wall_ns / 1e3,
              col.table.num_rows(), col.stats.batches_emitted);
  PrintRule(62);
  std::printf("columnar speedup: %.2fx (best of %d trials each)\n", speedup,
              kTrials);

  BenchJson json("columnar");
  for (const auto* run : {&row, &col}) {
    const std::string mode = run == &row ? "row" : "columnar";
    json.Add(mode, "rows_out", static_cast<int64_t>(run->table.num_rows()));
    json.Add(mode, "rows_emitted",
             static_cast<int64_t>(run->stats.rows_emitted));
    json.Add(mode, "batches_emitted",
             static_cast<int64_t>(run->stats.batches_emitted));
    json.Add(mode, "columnar_batches",
             static_cast<int64_t>(run->stats.columnar_batches));
    json.AddWall(mode, "exec_wall_ns", run->wall_ns);
  }
  json.AddWall("columnar", "speedup_x1000",
               static_cast<int64_t>(speedup * 1000.0));
  json.Write();

  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "columnar speedup %.2fx below the 2.0x floor "
                 "(row %lld ns, columnar %lld ns)\n",
                 speedup, static_cast<long long>(row.wall_ns),
                 static_cast<long long>(col.wall_ns));
    std::abort();
  }
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
