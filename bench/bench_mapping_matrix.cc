// §3 table reproduction: the supported-mapping-complexity matrix. Unlike the
// paper's hand-written table, each row here is COMPUTED: we attempt to
// compile a representative spec of every heterogeneity case with both
// couplings and report whether compilation succeeds.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "bench/bench_util.h"
#include "federation/classify.h"
#include "federation/java_coupling.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"

namespace fedflow::bench {
namespace {

using federation::ClassifySet;
using federation::ClassifySpec;
using federation::FederatedFunctionSpec;
using federation::MappingCase;
using federation::MappingCaseName;

struct MatrixRow {
  MappingCase mapping_case;
  std::vector<FederatedFunctionSpec> specs;  // >1 = general case
};

std::vector<MatrixRow> Cases() {
  return {
      {MappingCase::kTrivial, {federation::GibKompNrSpec()}},
      {MappingCase::kSimple, {federation::GetNumberSupp1234Spec()}},
      {MappingCase::kIndependent, {federation::GetSuppQualReliaSpec()}},
      {MappingCase::kDependentLinear, {federation::GetSuppQualSpec()}},
      {MappingCase::kDependent1N, {federation::GetNoSuppCompSpec()}},
      {MappingCase::kDependentN1, {federation::GetSuppInfoSpec()}},
      {MappingCase::kDependentCyclic, {federation::AllCompNamesSpec()}},
      // General: two federated functions sharing local functions.
      {MappingCase::kGeneral,
       {federation::BuySuppCompSpec(), federation::GetSuppQualReliaSpec()}},
  };
}

struct Harness {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  sim::LatencyModel model;
  sim::SystemState state;
  fdbs::Database db;
  federation::Controller controller{&systems, &model};
  wfms::Engine engine;
  federation::UdtfCoupling udtf{&db, &systems, &controller, &model, &state};
  federation::WfmsCoupling wfms{&db,    &engine, &systems,
                                &controller, &model,  &state};

  Harness() {
    (void)systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario));
    (void)systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario));
    (void)systems.Add(std::make_shared<appsys::PdmSystem>(scenario));
    controller.Start();
  }
};

void BM_ClassifyAllCases(benchmark::State& state) {
  auto rows = Cases();
  for (auto _ : state) {
    for (const MatrixRow& row : rows) {
      auto c = row.specs.size() == 1 ? ClassifySpec(row.specs[0])
                                     : ClassifySet(row.specs);
      benchmark::DoNotOptimize(c);
    }
  }
}
BENCHMARK(BM_ClassifyAllCases);

void BM_CompileBothCouplings(benchmark::State& state) {
  Harness harness;
  auto spec = federation::BuySuppCompSpec();
  for (auto _ : state) {
    auto sql = harness.udtf.CompileIUdtfSql(spec);
    auto process = harness.wfms.CompileProcess(spec);
    benchmark::DoNotOptimize(sql);
    benchmark::DoNotOptimize(process);
  }
}
BENCHMARK(BM_CompileBothCouplings);

void PrintMatrix() {
  Harness harness;
  std::printf("\n=== Mapping-complexity support matrix (computed by "
              "compilation attempts) ===\n");
  std::printf("%-20s %-12s %-12s %-12s %-10s %-10s\n", "case", "UDTF",
              "WfMS", "Java (ext)", "paper-UDTF", "paper-WfMS");
  PrintRule(82);
  const auto paper = federation::SupportMatrix();
  BenchJson json("mapping_matrix");
  bool all_match = true;
  for (const MatrixRow& row : Cases()) {
    // Attempt compilation with both couplings over every spec of the row.
    bool udtf_ok = true;
    bool wfms_ok = true;
    for (const FederatedFunctionSpec& spec : row.specs) {
      if (!harness.udtf.CompileIUdtfSql(spec).ok()) udtf_ok = false;
      if (!harness.wfms.CompileProcess(spec).ok()) wfms_ok = false;
    }
    // The general case additionally requires ONE mapping artifact covering
    // the whole set, which a single SQL statement cannot provide.
    if (row.mapping_case == MappingCase::kGeneral) udtf_ok = false;
    const bool java_ok = federation::JavaUdtfSupports(row.mapping_case);

    bool paper_udtf = false;
    bool paper_wfms = false;
    for (const auto& entry : paper) {
      if (entry.mapping_case == row.mapping_case) {
        paper_udtf = entry.udtf_supported;
        paper_wfms = entry.wfms_supported;
      }
    }
    if (udtf_ok != paper_udtf || wfms_ok != paper_wfms) all_match = false;
    json.Add(MappingCaseName(row.mapping_case), "udtf_supported",
             udtf_ok ? 1 : 0);
    json.Add(MappingCaseName(row.mapping_case), "wfms_supported",
             wfms_ok ? 1 : 0);
    json.Add(MappingCaseName(row.mapping_case), "java_supported",
             java_ok ? 1 : 0);
    std::printf("%-20s %-12s %-12s %-12s %-10s %-10s\n",
                MappingCaseName(row.mapping_case),
                udtf_ok ? "supported" : "NOT supp.",
                wfms_ok ? "supported" : "NOT supp.",
                java_ok ? "supported" : "NOT supp.",
                paper_udtf ? "supported" : "NOT supp.",
                paper_wfms ? "supported" : "NOT supp.");
  }
  PrintRule(70);
  std::printf("measured matrix matches the paper's table: %s\n",
              all_match ? "yes" : "NO");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintMatrix();
  return 0;
}
