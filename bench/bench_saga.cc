// Saga abort-cost experiment: a write-path federated function (reserve stock
// + place order, then an auditing read) fails its final read persistently,
// exhausting the retry budget, so the saga coordinator runs backward
// recovery. The couplings differ only in how the FAILED forward attempts
// burn time: the WfMS engine resumes each retry from the last completed
// activity (only the failed read re-runs), while the restart-everything
// I-UDTFs re-interpret the whole statement per attempt — re-invoking the
// supplier lookup for real and replaying the applied writes through the
// dedup ledger. Backward recovery itself (compensations in reverse apply
// order) costs the same everywhere, so the whole gap is forward burn.
//
// A second scenario measures exactly-once recovery that SUCCEEDS: one lost
// write acknowledgement with retries enabled. The dedup ledger turns the
// retry into an acknowledgement replay on every coupling; the overhead gap
// is again the resume-vs-restart granularity.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "plan/optimizer.h"
#include "txn/saga.h"

namespace fedflow::bench {
namespace {

constexpr int kMaxAttempts = 6;

/// The forward-path local functions of the audited procurement saga, in
/// execution order. A fault-free call invokes each exactly once.
const char* const kForwardFunctions[] = {"GetSupplierNo", "ReserveStock",
                                         "PlaceOrder", "GetOpenOrders"};

const std::vector<Value>& Args() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Int(17), Value::Int(5)};
  return args;
}

/// ProcureComponent plus a final auditing read of the supplier's open
/// orders. The read runs AFTER both writes, so a persistent failure there
/// aborts a fully-applied saga — the worst case for backward recovery.
federation::FederatedFunctionSpec AuditedSpec() {
  federation::FederatedFunctionSpec spec = federation::ProcureComponentSpec();
  spec.name = "ProcureComponentAudited";
  spec.calls.push_back(
      {"AU", "purchasing", "GetOpenOrders",
       {federation::SpecArg::NodeColumn("GSN", "SupplierNo")}});
  spec.outputs = {
      {"OrderNo", "AU", "OrderNo", DataType::kNull},
      {"CompNo", "AU", "CompNo", DataType::kNull},
      {"Amount", "AU", "Amount", DataType::kNull},
  };
  return spec;
}

std::unique_ptr<IntegrationServer> MakeSagaServer(Architecture arch) {
  auto server = MustMakeServer(arch);
  // Sequential baseline: the audit read has no data edge to the writes, and
  // letting the WfMS engine run it concurrently with them makes the
  // checkpoint contents (and so the retry resume point) depend on thread
  // timing. The full declaration-order chain keeps every cell bit-stable
  // and mirrors how the I-UDTFs interpret the statement anyway.
  plan::PlanOptions options;
  options.sequential_baseline = true;
  Status status = server->RegisterFederatedFunction(AuditedSpec(), options);
  if (!status.ok()) {
    std::fprintf(stderr, "saga registration failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  sim::RetryPolicy& retry = server->retry_policy();
  retry.max_attempts = kMaxAttempts;
  retry.initial_backoff_us = 1000;
  retry.backoff_multiplier = 2;
  retry.max_backoff_us = 32000;
  return server;
}

struct AbortStats {
  VDuration failed_elapsed_us = 0;  ///< forward burn across all attempts
  VDuration abort_cost_us = 0;      ///< backward recovery (compensations)
  int64_t forward_attempts = 0;     ///< store-reaching forward invocations
  int64_t redundant_forward = 0;    ///< beyond the 4 a clean call needs
  int64_t steps_applied = 0;
  int64_t compensations_run = 0;
  int64_t dedup_hits = 0;
};

/// Hot server, every attempt of the auditing read fails transiently: the
/// retry budget exhausts and the saga aborts with both writes applied.
AbortStats MeasureAbort(Architecture arch) {
  auto server = MakeSagaServer(arch);
  (void)HotCall(server.get(), "ProcureComponentAudited", Args());
  sim::FaultInjector& faults = server->fault_injector();
  faults.ResetCounters();
  faults.InjectTransientFailures("GetOpenOrders", kMaxAttempts + 1);

  auto result = server->CallFederated("ProcureComponentAudited", Args());
  if (result.ok()) {
    std::fprintf(stderr, "faulted saga call unexpectedly succeeded\n");
    std::abort();
  }
  auto outcome = server->saga_runtime().LastOutcome("ProcureComponentAudited");
  if (!outcome.has_value() || !outcome->aborted) {
    std::fprintf(stderr, "saga did not record an abort\n");
    std::abort();
  }
  faults.ClearProfiles();

  AbortStats stats;
  stats.failed_elapsed_us = outcome->failed_elapsed_us;
  stats.abort_cost_us = outcome->abort_cost_us;
  for (const char* fn : kForwardFunctions) {
    stats.forward_attempts += faults.attempts(fn);
  }
  stats.redundant_forward =
      stats.forward_attempts - static_cast<int64_t>(std::size(kForwardFunctions));
  stats.steps_applied = outcome->steps_applied;
  stats.compensations_run = outcome->compensations_run;
  stats.dedup_hits = outcome->dedup_hits;
  return stats;
}

struct LostAckStats {
  VDuration clean_elapsed_us = 0;      ///< hot fault-free commit
  VDuration recovered_elapsed_us = 0;  ///< commit with one lost write ack
  VDuration recovery_overhead_us = 0;
  int64_t write_attempts = 0;  ///< store applies of the faulted write
  int64_t dedup_hits = 0;
};

/// Hot server, the acknowledgement of PlaceOrder's first apply is lost: the
/// retry must recover through the dedup ledger without re-applying.
LostAckStats MeasureLostAck(Architecture arch) {
  auto server = MakeSagaServer(arch);
  LostAckStats stats;
  stats.clean_elapsed_us =
      HotCall(server.get(), "ProcureComponentAudited", Args()).elapsed_us;

  sim::FaultInjector& faults = server->fault_injector();
  faults.ResetCounters();
  faults.InjectTransientFailures("PlaceOrder", 1);
  stats.recovered_elapsed_us =
      MustCall(server.get(), "ProcureComponentAudited", Args()).elapsed_us;
  auto outcome = server->saga_runtime().LastOutcome("ProcureComponentAudited");
  if (!outcome.has_value() || outcome->aborted) {
    std::fprintf(stderr, "lost-ack recovery did not commit\n");
    std::abort();
  }
  stats.recovery_overhead_us =
      stats.recovered_elapsed_us - stats.clean_elapsed_us;
  stats.write_attempts = faults.attempts("PlaceOrder");
  stats.dedup_hits = outcome->dedup_hits;
  return stats;
}

void BM_SagaAbort(benchmark::State& state, Architecture arch) {
  for (auto _ : state) {
    AbortStats stats = MeasureAbort(arch);
    state.SetIterationTime(
        static_cast<double>(stats.failed_elapsed_us + stats.abort_cost_us) *
        1e-6);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK_CAPTURE(BM_SagaAbort, wfms, Architecture::kWfms)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_SagaAbort, udtf, Architecture::kUdtf)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void PrintTableAndEmitJson() {
  struct NamedArch {
    const char* label;
    Architecture arch;
  };
  const NamedArch archs[] = {{"wfms", Architecture::kWfms},
                             {"udtf", Architecture::kUdtf},
                             {"java_udtf", Architecture::kJavaUdtf}};

  std::printf("\n=== Saga abort cost: ProcureComponentAudited, audit read "
              "down, %d attempts ===\n",
              kMaxAttempts);
  std::printf("both writes apply before the failure; the WfMS resumes each "
              "retry at the failed\nactivity, the I-UDTFs restart the whole "
              "statement (writes replay via the dedup\nledger); backward "
              "recovery then compensates in reverse apply order\n\n");
  std::printf("%-11s %13s %11s %12s %9s %9s %7s %6s\n", "architecture",
              "forward [us]", "abort [us]", "penalty [us]", "attempts",
              "redundant", "applied", "dedup");
  PrintRule(86);
  BenchJson json("saga");
  for (const NamedArch& a : archs) {
    AbortStats stats = MeasureAbort(a.arch);
    std::printf("%-11s %13lld %11lld %12lld %9lld %9lld %7lld %6lld\n",
                a.label, static_cast<long long>(stats.failed_elapsed_us),
                static_cast<long long>(stats.abort_cost_us),
                static_cast<long long>(stats.failed_elapsed_us +
                                       stats.abort_cost_us),
                static_cast<long long>(stats.forward_attempts),
                static_cast<long long>(stats.redundant_forward),
                static_cast<long long>(stats.steps_applied),
                static_cast<long long>(stats.dedup_hits));
    std::string scenario = std::string(a.label) + "/abort";
    json.Add(scenario, "failed_elapsed_us", stats.failed_elapsed_us);
    json.Add(scenario, "abort_cost_us", stats.abort_cost_us);
    json.Add(scenario, "total_penalty_us",
             stats.failed_elapsed_us + stats.abort_cost_us);
    json.Add(scenario, "forward_attempts", stats.forward_attempts);
    json.Add(scenario, "redundant_forward_calls", stats.redundant_forward);
    json.Add(scenario, "steps_applied", stats.steps_applied);
    json.Add(scenario, "compensations_run", stats.compensations_run);
    json.Add(scenario, "dedup_hits", stats.dedup_hits);
  }
  PrintRule(86);

  std::printf("\n=== Exactly-once recovery: one lost PlaceOrder "
              "acknowledgement, retries on ===\n\n");
  std::printf("%-11s %11s %15s %14s %9s %6s\n", "architecture", "clean [us]",
              "recovered [us]", "overhead [us]", "applies", "dedup");
  PrintRule(74);
  for (const NamedArch& a : archs) {
    LostAckStats stats = MeasureLostAck(a.arch);
    std::printf("%-11s %11lld %15lld %14lld %9lld %6lld\n", a.label,
                static_cast<long long>(stats.clean_elapsed_us),
                static_cast<long long>(stats.recovered_elapsed_us),
                static_cast<long long>(stats.recovery_overhead_us),
                static_cast<long long>(stats.write_attempts),
                static_cast<long long>(stats.dedup_hits));
    std::string scenario = std::string(a.label) + "/lost_ack";
    json.Add(scenario, "clean_elapsed_us", stats.clean_elapsed_us);
    json.Add(scenario, "recovered_elapsed_us", stats.recovered_elapsed_us);
    json.Add(scenario, "recovery_overhead_us", stats.recovery_overhead_us);
    json.Add(scenario, "write_store_applies", stats.write_attempts);
    json.Add(scenario, "dedup_hits", stats.dedup_hits);
  }
  PrintRule(74);
  std::printf("expected: the WfMS abort burns strictly less virtual time and "
              "strictly fewer\nredundant local calls than either "
              "restart-everything I-UDTF; every coupling\napplies each write "
              "exactly once (applies stay 1 under the lost ack)\n");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTableAndEmitJson();
  return 0;
}
