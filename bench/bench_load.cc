// Multi-tenant load experiment: the paper measured one flow at a time (§4);
// this bench offers the same Poisson arrival stream to a single-controller
// deployment and to a warm pool of four, per architecture. The arrival rate
// is set to ~1.5x what one controller can serve (derived from the measured
// hot service time), so the singleton saturates and queues while the pool
// absorbs the burst — throughput and the p50/p99/p999 sojourn tail quantify
// what the paper's single-controller architecture leaves on the table under
// concurrent load. All times are virtual, so the golden is bit-identical.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "federation/controller_pool.h"
#include "load/load_harness.h"

namespace fedflow::bench {
namespace {

// The mixed workload: the Fig. 5 cases every architecture can express.
std::vector<load::Invocation> Workload() {
  return {
      {"GibKompNr", {Value::Varchar("brakepad")}},
      {"GetSuppQual", {Value::Varchar("Stark")}},
      {"GetNumberSupp1234", {Value::Int(17)}},
  };
}

std::unique_ptr<IntegrationServer> MakePooledServer(Architecture arch,
                                                    size_t pool_size) {
  federation::ControllerPoolOptions pool;
  pool.max_size = pool_size;
  auto server = federation::MakeSampleServer(arch, {}, {}, pool);
  if (!server.ok()) {
    std::fprintf(stderr, "failed to build server: %s\n",
                 server.status().ToString().c_str());
    std::abort();
  }
  return std::move(*server);
}

// Mean virtual service time of the workload, hot, on a single controller —
// the yardstick the arrival rate is derived from.
VDuration HotServiceTime(Architecture arch) {
  auto server = MakePooledServer(arch, 1);
  VDuration total = 0;
  for (const load::Invocation& inv : Workload()) {
    total += HotCall(server.get(), inv.function, inv.args).elapsed_us;
  }
  return total / static_cast<VDuration>(Workload().size());
}

load::LoadOptions OfferedLoad(VDuration service_us) {
  load::LoadOptions options;
  options.mode = load::ArrivalMode::kOpen;
  // Offered load ~1.5x one controller's capacity: gap = service * 2/3.
  options.mean_interarrival_us = service_us * 2 / 3;
  options.total_invocations = 120;
  options.queue_capacity = 256;
  options.seed = 42;
  return options;
}

load::LoadReport RunOne(Architecture arch, size_t pool_size,
                        const load::LoadOptions& options) {
  auto server = MakePooledServer(arch, pool_size);
  load::LoadHarness harness(server.get(), options);
  auto report = harness.Run(Workload());
  if (!report.ok()) {
    std::fprintf(stderr, "load run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  return std::move(*report);
}

void BM_OpenLoopLoad(benchmark::State& state, Architecture arch,
                     size_t pool_size) {
  const load::LoadOptions options = OfferedLoad(HotServiceTime(arch));
  for (auto _ : state) {
    load::LoadReport report = RunOne(arch, pool_size, options);
    state.SetIterationTime(static_cast<double>(report.makespan_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_OpenLoopLoad, wfms_pool1, Architecture::kWfms, 1)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_OpenLoopLoad, wfms_pool4, Architecture::kWfms, 4)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_OpenLoopLoad, udtf_pool1, Architecture::kUdtf, 1)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_OpenLoopLoad, udtf_pool4, Architecture::kUdtf, 4)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_OpenLoopLoad, java_pool1, Architecture::kJavaUdtf, 1)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_OpenLoopLoad, java_pool4, Architecture::kJavaUdtf, 4)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

const char* ArchTag(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "wfms";
    case Architecture::kUdtf:
      return "udtf";
    case Architecture::kJavaUdtf:
      return "java_udtf";
  }
  return "?";
}

void PrintTable() {
  std::printf(
      "\n=== Open-loop load: 120 Poisson arrivals at ~1.5x single-controller "
      "capacity ===\n");
  std::printf("%-22s %12s %10s %10s %10s %10s\n", "scenario", "thr/ksec",
              "p50 [us]", "p99 [us]", "p999 [us]", "max queue");
  PrintRule(80);
  BenchJson json("load");
  for (Architecture arch :
       {Architecture::kWfms, Architecture::kUdtf, Architecture::kJavaUdtf}) {
    const VDuration service_us = HotServiceTime(arch);
    const load::LoadOptions options = OfferedLoad(service_us);
    for (size_t pool_size : {size_t{1}, size_t{4}}) {
      load::LoadReport report = RunOne(arch, pool_size, options);
      const std::string scenario =
          std::string(ArchTag(arch)) + ".pool" + std::to_string(pool_size);
      json.Add(scenario, "throughput_per_ksec",
               report.ThroughputPerKiloSecond());
      json.Add(scenario, "p50_us", report.sojourn_us.Percentile(500));
      json.Add(scenario, "p99_us", report.sojourn_us.Percentile(990));
      json.Add(scenario, "p999_us", report.sojourn_us.Percentile(999));
      json.Add(scenario, "max_queue_depth", report.max_queue_depth);
      json.Add(scenario, "completed", report.completed);
      std::printf("%-22s %12lld %10lld %10lld %10lld %10lld\n",
                  scenario.c_str(),
                  static_cast<long long>(report.ThroughputPerKiloSecond()),
                  static_cast<long long>(report.sojourn_us.Percentile(500)),
                  static_cast<long long>(report.sojourn_us.Percentile(990)),
                  static_cast<long long>(report.sojourn_us.Percentile(999)),
                  static_cast<long long>(report.max_queue_depth));
    }
  }
  PrintRule(80);
  std::printf(
      "reading: pool4 serves the same arrival stream as pool1; the singleton "
      "saturates\n(queueing tail grows with every arrival), the pool keeps "
      "the tail near service time.\n");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
