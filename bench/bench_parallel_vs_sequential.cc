// §4 reproduction, parallel vs. sequential: "the function GetSuppQualRelia
// based on parallel activities is processed faster than the function
// GetSuppQual with a sequential processing order in the workflow
// architecture. In contrast, the UDTF approach achieves processing times
// which show a contrary result." Both functions call two local functions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace fedflow::bench {
namespace {

IntegrationServer* Server(Architecture arch) {
  static auto wfms = MustMakeServer(Architecture::kWfms);
  static auto udtf = MustMakeServer(Architecture::kUdtf);
  return arch == Architecture::kWfms ? wfms.get() : udtf.get();
}

const std::vector<Value>& SeqArgs() {
  static const std::vector<Value> args = {Value::Varchar("Stark")};
  return args;
}
const std::vector<Value>& ParArgs() {
  static const std::vector<Value> args = {Value::Int(1234)};
  return args;
}

void BM_Call(benchmark::State& state, Architecture arch, bool parallel) {
  IntegrationServer* server = Server(arch);
  const char* fn = parallel ? "GetSuppQualRelia" : "GetSuppQual";
  const auto& args = parallel ? ParArgs() : SeqArgs();
  (void)HotCall(server, fn, args);
  for (auto _ : state) {
    auto result = MustCall(server, fn, args);
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_Call, wfms_sequential, Architecture::kWfms, false)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, wfms_parallel, Architecture::kWfms, true)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, udtf_sequential, Architecture::kUdtf, false)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, udtf_parallel, Architecture::kUdtf, true)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);

void PrintTable() {
  std::printf("\n=== Parallel (GetSuppQualRelia) vs sequential (GetSuppQual), "
              "2 local functions each ===\n");
  std::printf("%-16s %20s %20s %10s\n", "architecture", "sequential [us]",
              "parallel [us]", "winner");
  PrintRule(70);
  BenchJson json("parallel_vs_sequential");
  for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf}) {
    auto seq = HotCall(Server(arch), "GetSuppQual", SeqArgs());
    auto par = HotCall(Server(arch), "GetSuppQualRelia", ParArgs());
    const char* scenario = arch == Architecture::kWfms ? "wfms" : "udtf";
    json.Add(scenario, "sequential_us", seq.elapsed_us);
    json.Add(scenario, "parallel_us", par.elapsed_us);
    std::printf("%-16s %20lld %20lld %10s\n",
                federation::ArchitectureName(arch),
                static_cast<long long>(seq.elapsed_us),
                static_cast<long long>(par.elapsed_us),
                par.elapsed_us < seq.elapsed_us ? "parallel" : "sequential");
  }
  PrintRule(70);
  std::printf("paper:    WfMS processes the parallel case faster; the UDTF "
              "approach shows the contrary\n");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
