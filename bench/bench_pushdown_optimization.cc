// Extension ablation: predicate pushdown in the FDBS (the paper's §6 lists
// query optimization as open work). A selective WHERE over a lateral chain
// of A-UDTFs prunes remote function invocations — visible directly in the
// virtual elapsed time of the UDTF architecture.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace fedflow::bench {
namespace {

constexpr char kQuery[] =
    "SELECT W.name, Q.Qual FROM watch AS W, "
    "TABLE (GetSupplierNo(W.name)) AS SN, "
    "TABLE (GetSuppQualRelia(SN.SupplierNo)) AS Q "
    "WHERE W.prio = 1";

std::unique_ptr<IntegrationServer> MakeServerWithWatchlist() {
  auto server = MustMakeServer(Architecture::kUdtf);
  (void)server->Query("CREATE TABLE watch (name VARCHAR, prio INT)");
  // 9 suppliers on the watchlist, only 2 with priority 1.
  (void)server->Query(
      "INSERT INTO watch VALUES "
      "('Acme', 0), ('Borg', 0), ('Cyberdyne', 0), ('Duff', 1), "
      "('Ecorp', 0), ('Initech', 0), ('Umbrella', 0), ('Wayne', 0), "
      "('Stark', 1)");
  return server;
}

VDuration Measure(IntegrationServer* server, bool pushdown) {
  SimClock clock;
  fdbs::ExecContext ctx;
  ctx.clock = &clock;
  ctx.predicate_pushdown = pushdown;
  auto r = server->database().Execute(kQuery, ctx);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  return clock.now();
}

void BM_WatchlistQuery(benchmark::State& state, bool pushdown) {
  auto server = MakeServerWithWatchlist();
  for (auto _ : state) {
    state.SetIterationTime(static_cast<double>(Measure(server.get(),
                                                       pushdown)) *
                           1e-6);
  }
}
BENCHMARK_CAPTURE(BM_WatchlistQuery, with_pushdown, true)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_WatchlistQuery, without_pushdown, false)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(3);

void PrintTable() {
  auto server = MakeServerWithWatchlist();
  VDuration with = Measure(server.get(), true);
  VDuration without = Measure(server.get(), false);
  std::printf("\n=== Predicate pushdown over a lateral A-UDTF chain ===\n");
  std::printf("query: quality of priority-1 watchlist suppliers "
              "(2 of 9 rows selective)\n\n");
  std::printf("%-22s %14s\n", "plan", "virtual [us]");
  PrintRule(38);
  std::printf("%-22s %14lld\n", "with pushdown",
              static_cast<long long>(with));
  std::printf("%-22s %14lld\n", "without pushdown",
              static_cast<long long>(without));
  PrintRule(38);
  std::printf("speedup: %.2fx — the WHERE conjunct on the local table is\n"
              "applied before the lateral A-UDTF calls, so only the\n"
              "selected suppliers are fetched remotely\n",
              static_cast<double>(without) / static_cast<double>(with));
  BenchJson json("pushdown_optimization");
  json.Add("watchlist_quality", "with_pushdown_us", with);
  json.Add("watchlist_quality", "without_pushdown_us", without);
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
