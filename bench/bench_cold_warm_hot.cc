// §4 reproduction: processing time of function calls in three situations —
// right after the entire system has been booted (cold), after some other
// function has been invoked (warm), and after the same function has been
// processed (hot). Paper: "the initial function calls are the slowest ...
// the repeated function call is the fastest."
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace fedflow::bench {
namespace {

struct Measurement {
  VDuration cold = 0;
  VDuration warm = 0;
  VDuration hot = 0;
};

Measurement Measure(Architecture arch, const SampleCall& call) {
  auto server = MustMakeServer(arch);
  Measurement m;
  // Cold: first call after boot.
  server->Reboot();
  auto cold = MustCall(server.get(), call.name, call.args);
  m.cold = cold.elapsed_us;
  // Warm: after booting, some OTHER function ran first.
  server->Reboot();
  const char* other = std::string(call.name) == "GibKompNr"
                          ? "GetSuppQual"
                          : "GibKompNr";
  (void)MustCall(server.get(), other,
                 other == std::string("GibKompNr")
                     ? std::vector<Value>{Value::Varchar("brakepad")}
                     : std::vector<Value>{Value::Varchar("Stark")});
  auto warm = MustCall(server.get(), call.name, call.args);
  m.warm = warm.elapsed_us;
  // Hot: the same function ran before.
  auto hot = MustCall(server.get(), call.name, call.args);
  m.hot = hot.elapsed_us;
  return m;
}

void BM_ColdCall(benchmark::State& state, Architecture arch) {
  auto server = MustMakeServer(arch);
  for (auto _ : state) {
    server->Reboot();
    auto result = MustCall(server.get(), "BuySuppComp",
                           {Value::Int(1234), Value::Varchar("brakepad")});
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_ColdCall, wfms, Architecture::kWfms)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_ColdCall, udtf, Architecture::kUdtf)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void PrintTable() {
  std::printf("\n=== Cold / warm / hot calls (virtual time, us) ===\n");
  BenchJson json("cold_warm_hot");
  for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf}) {
    std::printf("\n--- %s ---\n", federation::ArchitectureName(arch));
    std::printf("%-22s %12s %12s %12s\n", "function", "cold", "warm", "hot");
    PrintRule(62);
    bool ordering_holds = true;
    for (const SampleCall& call : Fig5Workload()) {
      Measurement m = Measure(arch, call);
      std::string scenario =
          std::string(arch == Architecture::kWfms ? "wfms/" : "udtf/") +
          call.name;
      json.Add(scenario, "cold_us", m.cold);
      json.Add(scenario, "warm_us", m.warm);
      json.Add(scenario, "hot_us", m.hot);
      std::printf("%-22s %12lld %12lld %12lld\n", call.name,
                  static_cast<long long>(m.cold),
                  static_cast<long long>(m.warm),
                  static_cast<long long>(m.hot));
      if (!(m.cold > m.warm && m.warm > m.hot)) ordering_holds = false;
    }
    PrintRule(62);
    std::printf("paper:    initial call slowest, repeated call fastest\n");
    std::printf("measured: cold > warm > hot holds for all functions: %s\n",
                ordering_holds ? "yes" : "NO");
  }
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
