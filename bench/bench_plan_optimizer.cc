// Plan-optimizer experiment: register the GetSuppQualRelia spec three times —
// hand-written (data-driven, the passthrough plan), as the naive sequential
// baseline, and as the baseline with the parallelize pass enabled — and show
// that the optimizer recovers the hand-written parallel schedule. Under the
// WfMS architecture the optimized copy must match the hand-written one in
// both modeled and executed virtual elapsed; under the UDTF architecture all
// three coincide (a single lateral SQL statement cannot parallelize, the
// paper's structural argument).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "bench/bench_util.h"
#include "plan/cost.h"
#include "plan/optimizer.h"

namespace fedflow::bench {
namespace {

struct Variant {
  const char* suffix;  ///< appended to the spec name ("" = hand-written)
  plan::PlanOptions options;
};

std::vector<Variant> Variants() {
  plan::PlanOptions seq;
  seq.sequential_baseline = true;
  plan::PlanOptions opt;
  opt.sequential_baseline = true;
  opt.parallelize = true;
  return {{"", {}}, {"Seq", seq}, {"Opt", opt}};
}

/// A sample server with the three GetSuppQualRelia variants registered.
IntegrationServer* Server(Architecture arch) {
  static auto make = [](Architecture a) {
    std::unique_ptr<IntegrationServer> server = MustMakeServer(a);
    for (const Variant& v : Variants()) {
      if (v.suffix[0] == '\0') continue;  // hand-written: already registered
      federation::FederatedFunctionSpec spec =
          federation::GetSuppQualReliaSpec();
      spec.name += v.suffix;
      Status status = server->RegisterFederatedFunction(spec, v.options);
      if (!status.ok()) {
        std::fprintf(stderr, "register %s failed: %s\n", spec.name.c_str(),
                     status.ToString().c_str());
        std::abort();
      }
    }
    return server;
  };
  static auto wfms = make(Architecture::kWfms);
  static auto udtf = make(Architecture::kUdtf);
  return arch == Architecture::kWfms ? wfms.get() : udtf.get();
}

const std::vector<Value>& Args() {
  static const std::vector<Value> args = {Value::Int(1234)};
  return args;
}

void BM_Call(benchmark::State& state, Architecture arch, const char* suffix) {
  IntegrationServer* server = Server(arch);
  std::string fn = std::string("GetSuppQualRelia") + suffix;
  (void)HotCall(server, fn, Args());
  for (auto _ : state) {
    auto result = MustCall(server, fn, Args());
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_Call, wfms_handwritten, Architecture::kWfms, "")
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, wfms_sequential, Architecture::kWfms, "Seq")
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, wfms_optimized, Architecture::kWfms, "Opt")
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, udtf_handwritten, Architecture::kUdtf, "")
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, udtf_sequential, Architecture::kUdtf, "Seq")
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK_CAPTURE(BM_Call, udtf_optimized, Architecture::kUdtf, "Opt")
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(5);

/// Registry + model for the static estimates (mirrors the sample server).
Result<appsys::AppSystemRegistry> SampleRegistry() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario)));
  FEDFLOW_RETURN_NOT_OK(
      systems.Add(std::make_shared<appsys::PdmSystem>(scenario)));
  return systems;
}

void PrintTable() {
  std::printf("\n=== Plan optimizer: sequential baseline vs auto-parallelized "
              "vs hand-written (GetSuppQualRelia) ===\n");
  std::printf("%-16s %-14s %18s %18s %18s\n", "architecture", "variant",
              "modeled wfms [us]", "modeled udtf [us]", "executed [us]");
  PrintRule(90);

  Result<appsys::AppSystemRegistry> systems = SampleRegistry();
  if (!systems.ok()) {
    std::fprintf(stderr, "registry: %s\n", systems.status().ToString().c_str());
    std::abort();
  }
  sim::LatencyModel model;

  BenchJson json("plan_optimizer");
  for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf}) {
    const char* arch_tag = arch == Architecture::kWfms ? "wfms" : "udtf";
    for (const Variant& v : Variants()) {
      federation::FederatedFunctionSpec spec =
          federation::GetSuppQualReliaSpec();
      spec.name += v.suffix;
      Result<plan::FedPlan> fed_plan =
          plan::BuildPlan(spec, *systems, model, v.options);
      if (!fed_plan.ok()) {
        std::fprintf(stderr, "plan %s: %s\n", spec.name.c_str(),
                     fed_plan.status().ToString().c_str());
        std::abort();
      }
      plan::PlanCostEstimate est = plan::EstimatePlan(*fed_plan, model);
      auto executed = HotCall(Server(arch), spec.name, Args());
      const char* variant_tag =
          v.suffix[0] == '\0'
              ? "handwritten"
              : (v.options.parallelize ? "optimized" : "sequential");
      std::string scenario = std::string(arch_tag) + "_" + variant_tag;
      json.Add(scenario, "modeled_wfms_us", est.wfms_elapsed_us);
      json.Add(scenario, "modeled_udtf_us", est.udtf_elapsed_us);
      json.Add(scenario, "executed_us", executed.elapsed_us);
      std::printf("%-16s %-14s %18lld %18lld %18lld\n",
                  federation::ArchitectureName(arch), variant_tag,
                  static_cast<long long>(est.wfms_elapsed_us),
                  static_cast<long long>(est.udtf_elapsed_us),
                  static_cast<long long>(executed.elapsed_us));
    }
  }
  PrintRule(90);
  std::printf("expected: optimized == handwritten per architecture (the "
              "parallelize pass recovers the data-driven schedule); the "
              "sequential baseline is slower only under the WfMS — lateral "
              "SQL executes sequentially either way\n");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
