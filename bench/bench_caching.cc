// The caching ablation: what the opt-in plan + result cache layer (§14)
// adds on top of the paper's cold/warm/hot effect. Uncached, a hot call
// still pays the full modeled chain every time; with caching enabled a hot
// controller with a resident entry answers at cache_hit_us, a private-store
// write (stock SetQuality) bumps the store's data version and forces the
// next call back onto the real path, and the call after that hits again.
// Plans are compiled exactly once per registered function either way — the
// plan-cache compile counter is part of the golden.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cache/plan_cache.h"
#include "cache/result_cache.h"

namespace fedflow::bench {
namespace {

constexpr char kFunction[] = "GetSuppQual";
const char* ArchTag(Architecture arch) {
  switch (arch) {
    case Architecture::kWfms:
      return "wfms";
    case Architecture::kUdtf:
      return "udtf";
    case Architecture::kJavaUdtf:
      return "java";
  }
  return "?";
}

std::vector<Value> CallArgs() { return {Value::Varchar("Stark")}; }

/// Bumps the stock store's data version through the one sanctioned data
/// access path, invalidating every cached result derived from it.
void WriteStockQuality(IntegrationServer* server) {
  auto stock = server->systems().Get("stock");
  if (!stock.ok()) std::abort();
  auto written =
      (*stock)->Call("SetQuality", {Value::Int(1234), Value::Int(99)});
  if (!written.ok()) {
    std::fprintf(stderr, "SetQuality failed: %s\n",
                 written.status().ToString().c_str());
    std::abort();
  }
}

struct Measurement {
  VDuration uncached_cold = 0;
  VDuration uncached_hot = 0;
  VDuration cached_cold = 0;
  VDuration cached_hot_hit = 0;
  VDuration after_write_miss = 0;
  VDuration rehit = 0;
  cache::PlanCache::Stats plan;
  cache::ResultCache::Stats result;
};

Measurement Measure(Architecture arch) {
  auto server = MustMakeServer(arch);
  Measurement m;
  // Uncached baseline: the paper's cold and hot calls.
  server->Reboot();
  m.uncached_cold = MustCall(server.get(), kFunction, CallArgs()).elapsed_us;
  m.uncached_hot = MustCall(server.get(), kFunction, CallArgs()).elapsed_us;

  // Cached run. The reboot flushes the result cache, so the cold call runs
  // for real (cold calls are never probed — the warm-up is the phenomenon
  // under measurement) and memoizes its result on the way out.
  server->set_caching_enabled(true);
  server->Reboot();
  m.cached_cold = MustCall(server.get(), kFunction, CallArgs()).elapsed_us;
  // Hot + resident: served straight from the cache at cache_hit_us.
  m.cached_hot_hit = MustCall(server.get(), kFunction, CallArgs()).elapsed_us;
  // A write to the stock store supersedes the entry; the next call probes,
  // misses and runs the real chain again (plus the probe it paid).
  WriteStockQuality(server.get());
  m.after_write_miss =
      MustCall(server.get(), kFunction, CallArgs()).elapsed_us;
  // ... and re-memoizes at the new data version, so the next call hits.
  m.rehit = MustCall(server.get(), kFunction, CallArgs()).elapsed_us;

  m.plan = server->plan_cache().stats();
  m.result = server->result_cache().stats();
  return m;
}

void BM_UncachedHotCall(benchmark::State& state, Architecture arch) {
  auto server = MustMakeServer(arch);
  (void)MustCall(server.get(), kFunction, CallArgs());
  for (auto _ : state) {
    auto result = MustCall(server.get(), kFunction, CallArgs());
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
  }
}
void BM_CachedHotCall(benchmark::State& state, Architecture arch) {
  auto server = MustMakeServer(arch);
  server->set_caching_enabled(true);
  (void)MustCall(server.get(), kFunction, CallArgs());
  for (auto _ : state) {
    auto result = MustCall(server.get(), kFunction, CallArgs());
    state.SetIterationTime(static_cast<double>(result.elapsed_us) * 1e-6);
  }
}
BENCHMARK_CAPTURE(BM_UncachedHotCall, wfms, Architecture::kWfms)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_CachedHotCall, wfms, Architecture::kWfms)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void PrintTable() {
  std::printf("\n=== Result caching: %s (virtual time, us) ===\n", kFunction);
  BenchJson json("caching");
  bool hit_below_uncached = true;
  for (Architecture arch : {Architecture::kWfms, Architecture::kUdtf,
                            Architecture::kJavaUdtf}) {
    Measurement m = Measure(arch);
    const std::string tag = ArchTag(arch);
    std::printf("\n--- %s ---\n", federation::ArchitectureName(arch));
    std::printf("%-28s %12s\n", "scenario", "elapsed");
    PrintRule(42);
    std::printf("%-28s %12lld\n", "uncached cold",
                static_cast<long long>(m.uncached_cold));
    std::printf("%-28s %12lld\n", "uncached hot",
                static_cast<long long>(m.uncached_hot));
    std::printf("%-28s %12lld\n", "cached cold (memoizes)",
                static_cast<long long>(m.cached_cold));
    std::printf("%-28s %12lld\n", "cached hot hit",
                static_cast<long long>(m.cached_hot_hit));
    std::printf("%-28s %12lld\n", "after-write miss",
                static_cast<long long>(m.after_write_miss));
    std::printf("%-28s %12lld\n", "re-hit",
                static_cast<long long>(m.rehit));
    PrintRule(42);
    std::printf("plan compiles=%lld  result hits=%lld misses=%lld "
                "invalidations=%lld\n",
                static_cast<long long>(m.plan.compiles),
                static_cast<long long>(m.result.hits),
                static_cast<long long>(m.result.misses),
                static_cast<long long>(m.result.invalidations));
    json.Add(tag, "uncached_cold_us", m.uncached_cold);
    json.Add(tag, "uncached_hot_us", m.uncached_hot);
    json.Add(tag, "cached_cold_us", m.cached_cold);
    json.Add(tag, "cached_hot_hit_us", m.cached_hot_hit);
    json.Add(tag, "after_write_miss_us", m.after_write_miss);
    json.Add(tag, "rehit_us", m.rehit);
    json.Add(tag, "plan_compiles", m.plan.compiles);
    json.Add(tag, "result_hits", m.result.hits);
    json.Add(tag, "result_misses", m.result.misses);
    json.Add(tag, "result_insertions", m.result.insertions);
    json.Add(tag, "result_invalidations", m.result.invalidations);
    if (m.cached_hot_hit >= m.uncached_hot) hit_below_uncached = false;
  }
  std::printf("\nhit path strictly below the uncached hot path for every "
              "architecture: %s\n",
              hit_below_uncached ? "yes" : "NO");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTable();
  return 0;
}
