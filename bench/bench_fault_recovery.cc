// Fault/recovery experiment: both couplings call GetNoSuppComp (3 local
// functions) under seeded transient failures injected into every local
// function, with retries enabled. The WfMS engine checkpoints after each
// completed activity and resumes a failed instance from the last completed
// activity, so a retry re-executes only the failed local function; the
// I-UDTF is stateless between attempts and must re-run the whole SQL
// statement. The gap shows up in both metrics reported here: redundant
// local-function invocations and total elapsed virtual time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"

namespace fedflow::bench {
namespace {

constexpr int kCallsPerRate = 20;
constexpr int kLocalFunctions = 3;
const char* const kLocalFunctionNames[] = {"GetSupplierNo", "GetCompNo",
                                           "GetNumber"};

const std::vector<Value>& Args() {
  static const std::vector<Value> args = {Value::Varchar("Stark"),
                                          Value::Varchar("brakepad")};
  return args;
}

/// Outcome of kCallsPerRate calls under one failure rate.
struct RunStats {
  VDuration elapsed_total_us = 0;
  int64_t local_attempts = 0;
  int64_t injected_failures = 0;
  int64_t redundant_invocations = 0;
  int failed_calls = 0;
};

/// `rate_pct` is the per-attempt transient failure probability of every
/// local function, in percent. The injector seed is fixed, so a given
/// (architecture, rate) cell is fully deterministic.
RunStats Measure(Architecture arch, int rate_pct) {
  auto server = MustMakeServer(arch);
  // Warm up fault-free so cold/warm boot costs don't pollute the comparison.
  (void)HotCall(server.get(), "GetNoSuppComp", Args());

  sim::RetryPolicy& retry = server->retry_policy();
  retry.max_attempts = 10;
  retry.initial_backoff_us = 1000;
  retry.backoff_multiplier = 2;
  retry.max_backoff_us = 32000;

  sim::FaultInjector& faults = server->fault_injector();
  sim::FaultProfile profile;
  profile.transient_failure_rate = static_cast<double>(rate_pct) / 100.0;
  for (const char* fn : kLocalFunctionNames) faults.SetProfile(fn, profile);
  faults.ResetCounters();

  RunStats stats;
  for (int i = 0; i < kCallsPerRate; ++i) {
    auto result = server->CallFederated("GetNoSuppComp", Args());
    if (!result.ok()) {
      ++stats.failed_calls;
      continue;
    }
    stats.elapsed_total_us += result->elapsed_us;
  }
  for (const char* fn : kLocalFunctionNames) {
    stats.local_attempts += faults.attempts(fn);
    stats.injected_failures += faults.injected_failures(fn);
  }
  // A fault-free run needs exactly 3 local invocations per call; everything
  // beyond that is redundancy caused by failures and the coupling's recovery
  // granularity (failed attempts included).
  stats.redundant_invocations =
      stats.local_attempts -
      static_cast<int64_t>(kLocalFunctions) * kCallsPerRate;
  return stats;
}

void BM_FaultedCalls(benchmark::State& state, Architecture arch,
                     int rate_pct) {
  for (auto _ : state) {
    RunStats stats = Measure(arch, rate_pct);
    state.SetIterationTime(static_cast<double>(stats.elapsed_total_us) * 1e-6);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK_CAPTURE(BM_FaultedCalls, wfms_rate10, Architecture::kWfms, 10)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_FaultedCalls, udtf_rate10, Architecture::kUdtf, 10)
    ->UseManualTime()->Unit(benchmark::kMillisecond)->Iterations(1);

void PrintTableAndEmitJson() {
  std::printf("\n=== Fault injection and recovery: GetNoSuppComp, %d hot "
              "calls per rate ===\n",
              kCallsPerRate);
  std::printf("transient failures injected into all %d local functions; "
              "retries: max %d attempts,\nexponential backoff; WfMS resumes "
              "from the last completed activity, the I-UDTF\nrestarts the "
              "whole statement\n\n",
              kLocalFunctions, 10);
  std::printf("%6s  %-14s %14s %10s %10s %11s %7s\n", "rate", "architecture",
              "elapsed [us]", "attempts", "injected", "redundant", "failed");
  PrintRule(80);
  BenchJson json("fault_recovery");
  for (int rate_pct : {0, 5, 10, 20, 30}) {
    RunStats wfms = Measure(Architecture::kWfms, rate_pct);
    RunStats udtf = Measure(Architecture::kUdtf, rate_pct);
    struct NamedStats {
      const char* arch;
      const RunStats* stats;
    };
    const NamedStats rows[] = {{"wfms", &wfms}, {"udtf", &udtf}};
    for (const NamedStats& row : rows) {
      std::printf("%5d%%  %-14s %14lld %10lld %10lld %11lld %7d\n", rate_pct,
                  row.arch,
                  static_cast<long long>(row.stats->elapsed_total_us),
                  static_cast<long long>(row.stats->local_attempts),
                  static_cast<long long>(row.stats->injected_failures),
                  static_cast<long long>(row.stats->redundant_invocations),
                  row.stats->failed_calls);
      std::string scenario =
          std::string(row.arch) + "/rate" + std::to_string(rate_pct);
      json.Add(scenario, "elapsed_total_us", row.stats->elapsed_total_us);
      json.Add(scenario, "local_attempts", row.stats->local_attempts);
      json.Add(scenario, "injected_failures", row.stats->injected_failures);
      json.Add(scenario, "redundant_invocations",
               row.stats->redundant_invocations);
      json.Add(scenario, "failed_calls", row.stats->failed_calls);
    }
  }
  PrintRule(80);
  std::printf("expected: at every nonzero rate the WfMS coupling re-executes "
              "strictly fewer local\nfunctions than the restart-everything "
              "UDTF coupling, and its elapsed-time penalty\ngrows more "
              "slowly with the failure rate\n");
  json.Write();
}

}  // namespace
}  // namespace fedflow::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fedflow::bench::PrintTableAndEmitJson();
  return 0;
}
