// The paper's motivating scenario (§1, Fig. 1): an employee in the purchasing
// department must decide whether to order a component from a known supplier.
// Without integration he would call five functions in three systems by hand;
// the federated function BuySuppComp does it in one call. This example shows
// the full WfMS path: the compiled process (as FDL text), the navigation
// audit trail, and the decision for several suppliers.
#include <cstdio>

#include "federation/sample_scenario.h"
#include "wfms/fdl.h"

using namespace fedflow;
using federation::Architecture;

int main() {
  auto server = federation::MakeSampleServer(Architecture::kWfms);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // Show the workflow process BuySuppComp was compiled into (Fig. 1's
  // precedence graph, rendered in our FDL process-definition language).
  auto process = (*server)->engine()->GetProcess("BuySuppComp");
  if (process.ok()) {
    std::printf("=== Workflow process for the federated function "
                "BuySuppComp (Fig. 1) ===\n%s\n",
                wfms::ToFdl(**process).c_str());
  }

  // The employee's decision, for each known supplier, for the brakepad.
  std::printf("=== Purchase decisions for component 'brakepad' ===\n");
  appsys::Scenario scenario = appsys::GenerateScenario({});
  for (const appsys::SupplierRecord& supplier : scenario.suppliers) {
    auto result = (*server)->Query(
        "SELECT BSC.Answer FROM TABLE (BuySuppComp(" +
        std::to_string(supplier.supplier_no) + ", 'brakepad')) AS BSC");
    if (!result.ok()) {
      std::fprintf(stderr, "  %-12s query failed: %s\n",
                   supplier.name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("  %-12s (no %d, quality %2d, reliability %2d)  ->  %s\n",
                supplier.name.c_str(), supplier.supplier_no,
                supplier.quality, supplier.reliability,
                result->num_rows() == 1
                    ? result->rows()[0][0].ToString().c_str()
                    : "(no decision)");
  }

  // One instrumented process instance: what the workflow engine actually
  // did, in virtual time (note GetQuality/GetReliability/GetCompNo running
  // as parallel forks).
  std::printf("\n=== Audit trail of one BuySuppComp process instance ===\n");
  auto run = (*server)->engine()->Run(
      "BuySuppComp", {Value::Int(1234), Value::Varchar("brakepad")},
      (*server)->program_invoker());
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", run->audit.ToString().c_str());

  // The same call through the FDBS, with the wrapper costs on top.
  auto timed = (*server)->CallFederated(
      "BuySuppComp", {Value::Int(1234), Value::Varchar("brakepad")});
  if (timed.ok()) {
    std::printf("\ndecision: %s\n",
                timed->table.rows()[0][0].ToString().c_str());
    std::printf("virtual elapsed: %lld us\nbreakdown:\n%s",
                static_cast<long long>(timed->elapsed_us),
                timed->breakdown.ToString().c_str());
  }
  return 0;
}
