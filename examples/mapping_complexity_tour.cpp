// A tour through the paper's §3 heterogeneity cases: for each case, show the
// artifact each coupling compiles the SAME federated-function spec into —
// the generated I-UDTF SQL on the UDTF side, the process definition (FDL) on
// the WfMS side — and where the UDTF side hits its expressiveness limit.
#include <cstdio>

#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "federation/classify.h"
#include "federation/sample_scenario.h"
#include "federation/udtf_coupling.h"
#include "federation/wfms_coupling.h"
#include "wfms/fdl.h"

using namespace fedflow;
using federation::ClassifySpec;
using federation::FederatedFunctionSpec;
using federation::MappingCaseName;

int main() {
  appsys::Scenario scenario = appsys::GenerateScenario({});
  appsys::AppSystemRegistry systems;
  (void)systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario));
  (void)systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario));
  (void)systems.Add(std::make_shared<appsys::PdmSystem>(scenario));
  sim::LatencyModel model;
  sim::SystemState state;
  fdbs::Database db;
  federation::Controller controller(&systems, &model);
  controller.Start();
  wfms::Engine engine;
  federation::UdtfCoupling udtf(&db, &systems, &controller, &model, &state);
  federation::WfmsCoupling wfms(&db, &engine, &systems, &controller, &model,
                                &state);

  const std::vector<FederatedFunctionSpec> specs = {
      federation::GibKompNrSpec(),          federation::GetNumberSupp1234Spec(),
      federation::GetSuppQualReliaSpec(),   federation::GetSuppQualSpec(),
      federation::GetSubCompDiscountsSpec(),federation::GetNoSuppCompSpec(),
      federation::GetSuppInfoSpec(),        federation::BuySuppCompSpec(),
      federation::AllCompNamesSpec(),
  };

  for (const FederatedFunctionSpec& spec : specs) {
    auto mapping_case = ClassifySpec(spec);
    std::printf("================================================================\n");
    std::printf("Federated function %s — %s case\n", spec.name.c_str(),
                mapping_case.ok() ? MappingCaseName(*mapping_case) : "?");
    std::printf("================================================================\n");

    std::printf("\n--- enhanced SQL UDTF architecture ---\n");
    auto sql = udtf.CompileIUdtfSql(spec);
    if (sql.ok()) {
      std::printf("%s\n", sql->c_str());
    } else {
      std::printf("(%s)\n", sql.status().ToString().c_str());
    }

    std::printf("\n--- WfMS architecture ---\n");
    auto compiled = wfms.CompileProcess(spec);
    if (compiled.ok()) {
      std::printf("%s", wfms::ToFdl(compiled->process).c_str());
      if (!compiled->helpers.empty()) {
        std::printf("-- helpers: ");
        for (size_t i = 0; i < compiled->helpers.size(); ++i) {
          std::printf("%s%s", i > 0 ? ", " : "",
                      compiled->helpers[i].first.c_str());
        }
        std::printf("\n");
      }
    } else {
      std::printf("(%s)\n", compiled.status().ToString().c_str());
    }
    std::printf("\n");
  }

  // The general case: two federated functions over shared local functions.
  std::vector<FederatedFunctionSpec> general = {
      federation::BuySuppCompSpec(), federation::GetSuppQualReliaSpec()};
  auto set_case = federation::ClassifySet(general);
  std::printf("================================================================\n");
  std::printf("Spec set {BuySuppComp, GetSuppQualRelia} classifies as: %s\n",
              set_case.ok() ? MappingCaseName(*set_case) : "?");
  std::printf("(shared local functions: stock.GetQuality, "
              "purchasing.GetReliability)\n");
  return 0;
}
