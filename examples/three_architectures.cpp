// All three integration architectures of the paper's §2 side by side — WfMS,
// enhanced SQL UDTF, enhanced Java UDTF — plus the PSM stored-procedure
// escape hatch, on the same federated function. Shows that the SAME mapping
// spec produces the same answers everywhere while the cost profile and the
// expressiveness limits differ per architecture.
#include <cstdio>

#include "federation/sample_scenario.h"
#include "appsys/pdm.h"
#include "appsys/purchasing.h"
#include "appsys/stockkeeping.h"
#include "federation/sql_source.h"
#include "federation/udtf_coupling.h"

using namespace fedflow;
using federation::Architecture;

namespace {

void ShowCall(federation::IntegrationServer* server, const char* what) {
  // Warm up, then show one hot timed call.
  (void)server->CallFederated("GetNoSuppComp", {Value::Varchar("Stark"),
                                                Value::Varchar("brakepad")});
  auto timed = server->CallFederated(
      "GetNoSuppComp", {Value::Varchar("Stark"), Value::Varchar("brakepad")});
  if (!timed.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, timed.status().ToString().c_str());
    return;
  }
  std::printf("--- %s ---\n", what);
  std::printf("result: stock-keeping number %s, elapsed %lld us (hot)\n",
              timed->table.rows()[0][0].ToString().c_str(),
              static_cast<long long>(timed->elapsed_us));
  std::printf("%s\n", timed->breakdown.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("Federated function GetNoSuppComp(SupplierName, CompName):\n"
              "GetSupplierNo + GetCompNo feeding GetNumber — the paper's\n"
              "Fig. 6 anchor — executed under all three architectures.\n\n");

  for (auto [arch, label] :
       {std::pair{Architecture::kWfms, "WfMS architecture"},
        std::pair{Architecture::kUdtf, "enhanced SQL UDTF architecture"},
        std::pair{Architecture::kJavaUdtf,
                  "enhanced Java UDTF architecture (procedural)"}}) {
    auto server = federation::MakeSampleServer(arch);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    ShowCall(server->get(), label);
  }

  // The cyclic case across the architectures that can express it.
  std::printf("=== The cyclic case (AllCompNames, do-until loop) ===\n");
  auto wfms = federation::MakeSampleServer(Architecture::kWfms);
  auto java = federation::MakeSampleServer(Architecture::kJavaUdtf);
  auto sql = federation::MakeSampleServer(Architecture::kUdtf);
  if (wfms.ok()) {
    auto r = (*wfms)->CallFederated("AllCompNames", {Value::Int(3)});
    std::printf("WfMS (block with exit condition):  %s\n",
                r.ok() ? "ok, 3 rows" : r.status().ToString().c_str());
  }
  if (java.ok()) {
    auto r = (*java)->CallFederated("AllCompNames", {Value::Int(3)});
    std::printf("Java UDTF (client-side do-until):  %s\n",
                r.ok() ? "ok, 3 rows" : r.status().ToString().c_str());
  }
  if (sql.ok()) {
    auto r = (*sql)->CallFederated("AllCompNames", {Value::Int(3)});
    std::printf("SQL UDTF:                          %s\n",
                r.ok() ? "unexpectedly ok?!"
                       : "rejected (no loop in one SQL statement)");
  }

  // PSM: the in-DBMS loop mechanism — works, but CALL-only.
  std::printf("\n=== PSM stored procedure (CALL-only) ===\n");
  if (sql.ok()) {
    // Access the coupling pieces directly to register the PSM variant.
    appsys::Scenario scenario = appsys::GenerateScenario({});
    appsys::AppSystemRegistry systems;
    (void)systems.Add(std::make_shared<appsys::StockKeepingSystem>(scenario));
    (void)systems.Add(std::make_shared<appsys::PurchasingSystem>(scenario));
    (void)systems.Add(std::make_shared<appsys::PdmSystem>(scenario));
    sim::LatencyModel model;
    sim::SystemState state;
    federation::Controller controller(&systems, &model);
    controller.Start();
    federation::UdtfCoupling udtf(&(*sql)->database(), &systems, &controller,
                                  &model, &state);
    auto psm_sql = udtf.CompilePsmSql(federation::AllCompNamesSpec());
    if (psm_sql.ok()) {
      std::printf("%s\n\n", psm_sql->c_str());
    }
    if (udtf.RegisterPsmProcedure(federation::AllCompNamesSpec()).ok()) {
      auto via_call = (*sql)->Query("CALL AllCompNames(3)");
      std::printf("CALL AllCompNames(3): %s\n",
                  via_call.ok()
                      ? (std::to_string(via_call->num_rows()) + " rows").c_str()
                      : via_call.status().ToString().c_str());
      auto in_from = (*sql)->Query(
          "SELECT * FROM TABLE (AllCompNames(3)) AS A");
      std::printf("...but in a FROM clause: %s\n",
                  in_from.ok() ? "unexpectedly ok?!"
                               : in_from.status().ToString().c_str());
    }
  }

  // Remote SQL sources: the FDBS federates SQL data next to the functions.
  std::printf("\n=== Remote SQL source next to federated functions ===\n");
  if (sql.ok()) {
    sim::LatencyModel model;
    federation::RemoteSqlSource warehouse("warehouse", &model);
    (void)warehouse.database().Execute(
        "CREATE TABLE shelf (name VARCHAR, qty INT)");
    (void)warehouse.database().Execute(
        "INSERT INTO shelf VALUES ('Stark', 4), ('Acme', 11), ('Duff', 2)");
    (void)warehouse.AttachTable(&(*sql)->database(), "shelf", "shelf");
    auto r = (*sql)->Query(
        "SELECT S.name, S.qty, Q.Qual FROM shelf AS S, "
        "TABLE (GetSuppQual(S.name)) AS Q "
        "WHERE Q.Qual >= 5 ORDER BY Q.Qual DESC");
    if (r.ok()) std::printf("%s", r->ToString().c_str());
  }
  return 0;
}
