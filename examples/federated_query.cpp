// Data + function integration (the paper's core premise): one SQL query that
// combines ordinary FDBS tables (generic query access) with federated
// functions (predefined function access), including joins, aggregation and
// ordering done by the FDBS query processor on top of function results.
#include <cstdio>

#include "federation/sample_scenario.h"

using namespace fedflow;
using federation::Architecture;

namespace {

int Fail(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  auto server = federation::MakeSampleServer(Architecture::kUdtf);
  if (!server.ok()) return Fail("server", server.status());

  // A local FDBS table: the department's own order book. This data lives in
  // the federation layer, NOT in any application system.
  for (const char* ddl : {
           "CREATE TABLE orders (supplier VARCHAR, component VARCHAR, "
           "qty INT)",
           "INSERT INTO orders VALUES "
           "('Stark', 'brakepad', 120), "
           "('Acme', 'brakepad', 40), "
           "('Acme', 'comp_3', 75), "
           "('Duff', 'comp_5', 10), "
           "('Stark', 'comp_9', 300)",
       }) {
    auto st = (*server)->Query(ddl);
    if (!st.ok()) return Fail("ddl", st.status());
  }

  // 1. Join the local table with a federated function: quality rating per
  //    open order, fetched through GetSuppQual (purchasing + stock systems).
  std::printf("=== Open orders with federated supplier quality ===\n");
  auto q1 = (*server)->Query(
      "SELECT O.supplier, O.component, O.qty, GSQ.Qual "
      "FROM orders AS O, TABLE (GetSuppQual(O.supplier)) AS GSQ "
      "ORDER BY GSQ.Qual DESC, O.supplier");
  if (!q1.ok()) return Fail("q1", q1.status());
  std::printf("%s\n", q1->ToString().c_str());

  // 2. Aggregate over function results: total quantity on order per quality
  //    rating, only for ratings the purchasing guideline accepts (>= 5).
  std::printf("=== Quantity on order per quality rating (rating >= 5) ===\n");
  auto q2 = (*server)->Query(
      "SELECT GSQ.Qual, SUM(O.qty) AS total_qty, COUNT(*) AS orders "
      "FROM orders AS O, TABLE (GetSuppQual(O.supplier)) AS GSQ "
      "WHERE GSQ.Qual >= 5 "
      "GROUP BY GSQ.Qual ORDER BY GSQ.Qual DESC");
  if (!q2.ok()) return Fail("q2", q2.status());
  std::printf("%s\n", q2->ToString().c_str());

  // 3. A purchase decision for every order row — the federated function in
  //    the FROM clause consumes columns of the local table laterally.
  std::printf("=== Decisions for every open order ===\n");
  auto q3 = (*server)->Query(
      "SELECT O.supplier, O.component, BSC.Answer "
      "FROM orders AS O, TABLE (GetSupplierNo(O.supplier)) AS SN, "
      "TABLE (BuySuppComp(SN.SupplierNo, O.component)) AS BSC "
      "ORDER BY O.supplier, O.component");
  if (!q3.ok()) return Fail("q3", q3.status());
  std::printf("%s\n", q3->ToString().c_str());

  // 4. Table-valued federated function with a lateral join: which
  //    sub-components of component 'comp_2' could we buy at >= 5% discount?
  std::printf("=== Discounted sub-components of comp_2 ===\n");
  auto q4 = (*server)->Query(
      "SELECT GSD.SubCompNo, GSD.SupplierNo "
      "FROM TABLE (GetCompNo('comp_2')) AS CN, "
      "TABLE (GetSubCompDiscounts(CN.No, 5)) AS GSD "
      "ORDER BY GSD.SubCompNo, GSD.SupplierNo LIMIT 10");
  if (!q4.ok()) return Fail("q4", q4.status());
  std::printf("%s", q4->ToString().c_str());
  return 0;
}
