// Quickstart: build an integration server, register a federated function,
// and query it with SQL — the 60-second tour of fedflow's public API.
#include <cstdio>

#include "federation/integration_server.h"
#include "federation/spec.h"

using namespace fedflow;
using federation::Architecture;
using federation::FederatedFunctionSpec;
using federation::IntegrationServer;
using federation::SpecArg;

int main() {
  // 1. Generate the sample enterprise scenario (three application systems:
  //    stock-keeping, purchasing, product data management) and build an
  //    integration server over it. Pick the WfMS architecture: federated
  //    functions run as workflow processes behind one SQL/MED-style wrapper.
  appsys::Scenario scenario = appsys::GenerateScenario({});
  auto server = IntegrationServer::Create(Architecture::kWfms, scenario);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // 2. Describe a federated function as a mapping graph: which local
  //    functions to call, how parameters flow, and what to return.
  //    GetSuppQual(SupplierName) = GetQuality(GetSupplierNo(SupplierName)).
  FederatedFunctionSpec spec;
  spec.name = "GetSuppQual";
  spec.params = {Column{"SupplierName", DataType::kVarchar}};
  spec.calls = {
      {"GSN", "purchasing", "GetSupplierNo", {SpecArg::Param("SupplierName")}},
      {"GQ", "stock", "GetQuality", {SpecArg::NodeColumn("GSN", "SupplierNo")}},
  };
  spec.outputs = {{"Qual", "GQ", "Qual", DataType::kNull}};

  Status st = (*server)->RegisterFederatedFunction(spec);
  if (!st.ok()) {
    std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Query it like any table function.
  auto result = (*server)->Query(
      "SELECT GSQ.Qual FROM TABLE (GetSuppQual('Stark')) AS GSQ");
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Quality rating of supplier 'Stark':\n%s",
              result->ToString().c_str());

  // 4. The same call, timed on the virtual clock, with the cost breakdown
  //    the performance experiments are built on.
  auto timed = (*server)->CallFederated("GetSuppQual",
                                        {Value::Varchar("Stark")});
  if (timed.ok()) {
    std::printf("\nVirtual elapsed time: %lld us\n%s",
                static_cast<long long>(timed->elapsed_us),
                timed->breakdown.ToString().c_str());
  }
  return 0;
}
